"""Ablation — exhaustive O(n²) rerooting vs the O(n) DP (paper §VIII).

The paper used a naive exhaustive search "for expedience" and notes a
more efficient algorithm could be employed; its Discussion argues the
rerooting cost is trivial relative to an inference. This ablation
quantifies both claims with our implementations:

* the DP returns rootings with the same operation-set count as the
  exhaustive optimum, at a small fraction of the cost;
* even the exhaustive search costs far less than a handful of likelihood
  evaluations it saves.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import emit

from repro.bench import format_table
from repro.core import optimal_reroot_exhaustive, optimal_reroot_fast
from repro.trees import random_attachment_tree


def test_fast_vs_exhaustive(benchmark, results_dir, full_scale):
    sizes = (32, 64, 128, 256) if full_scale else (32, 64, 128)
    rows = []
    for n in sizes:
        tree = random_attachment_tree(n, 1)

        start = time.perf_counter()
        exhaustive = optimal_reroot_exhaustive(tree)
        t_exhaustive = time.perf_counter() - start

        start = time.perf_counter()
        fast = optimal_reroot_fast(tree)
        t_fast = time.perf_counter() - start

        assert fast.operation_sets == exhaustive.operation_sets
        rows.append(
            {
                "taxa": n,
                "sets (both)": fast.operation_sets,
                "exhaustive ms": f"{t_exhaustive * 1e3:.2f}",
                "fast ms": f"{t_fast * 1e3:.2f}",
                "speedup": f"{t_exhaustive / t_fast:.1f}x",
            }
        )
    emit(
        results_dir,
        "ablation_reroot_algo.md",
        format_table(rows, title="Ablation: exhaustive vs O(n) optimal rerooting"),
    )

    # The DP scales: it must beat exhaustive clearly at the largest size,
    # and the gap must widen with n (quadratic vs linear).
    speedups = [float(r["speedup"][:-1]) for r in rows]
    assert speedups[-1] > 5.0
    assert speedups[-1] > speedups[0]

    tree = random_attachment_tree(sizes[-1], 1)
    result = benchmark(optimal_reroot_fast, tree)
    assert result.operation_sets <= result.original_operation_sets
