"""Supplementary — device-memory budget across problem sizes.

The paper's device (Table I) pairs its 3,584 cores with 16 GB of HBM2.
Partials buffers dominate the budget at ``(n−1) · C · P · S`` floats,
so tree size, pattern count, state count and precision together decide
the largest problem a card holds — the practical boundary of the
strong-scaling story in §I. This benchmark tabulates the engine's real
buffer footprints (exact byte counts from live instances) across the
paper's problem grid.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import emit

from repro.bench import format_table
from repro.core import create_instance
from repro.data import random_patterns
from repro.models import GY94, JC69, Poisson, discrete_gamma
from repro.trees import balanced_tree

GP100_MEMORY_BYTES = 16 * 1024**3


def footprint(n_taxa, sites, model, categories=1, dtype=np.float64):
    tree = balanced_tree(n_taxa)
    patterns = random_patterns(tree.tip_names(), sites, seed=1, alphabet=model.alphabet)
    rates = discrete_gamma(0.5, categories) if categories > 1 else None
    instance = create_instance(tree, model, patterns, rates=rates, dtype=dtype)
    return instance.memory_footprint()


def test_memory_budget(benchmark, results_dir, full_scale):
    cases = [
        ("DNA, 512 patterns", 256, 512, JC69(), 1),
        ("DNA, 512 patterns, G4", 256, 512, JC69(), 4),
        ("DNA, 4096 patterns", 256, 4096, JC69(), 1),
        ("protein, 512 patterns", 256, 512, Poisson(), 1),
        ("codon, 512 patterns", 64, 512, GY94(), 1),
    ]
    if full_scale:
        cases.append(("DNA, paper max tree", 4096, 512, JC69(), 1))

    rows = []
    for label, n, sites, model, categories in cases:
        double = footprint(n, sites, model, categories)
        single = footprint(n, sites, model, categories, dtype=np.float32)
        rows.append(
            {
                "workload": label,
                "taxa": n,
                "partials MB (double)": f"{double['partials'] / 1e6:.1f}",
                "total MB (double)": f"{double['total'] / 1e6:.1f}",
                "total MB (single)": f"{single['total'] / 1e6:.1f}",
                "% of GP100 16GB": f"{100 * double['total'] / GP100_MEMORY_BYTES:.2f}",
            }
        )
    emit(
        results_dir,
        "memory_budget.md",
        format_table(rows, title="Supplementary: engine memory budget"),
    )

    # Structural claims: categories multiply partials; codon states
    # dominate despite fewer taxa; single precision ~halves partials.
    base = footprint(256, 512, JC69(), 1)
    g4 = footprint(256, 512, JC69(), 4)
    assert g4["partials"] == 4 * base["partials"]
    codon = footprint(64, 512, GY94(), 1)
    assert codon["partials"] > base["partials"]  # 61 states vs 4
    single = footprint(256, 512, JC69(), 1, dtype=np.float32)
    assert single["partials"] * 2 == base["partials"]
    # Everything in the paper's grid fits the GP100 comfortably.
    assert all(
        float(r["% of GP100 16GB"]) < 50.0 for r in rows
    )

    benchmark(footprint, 64, 512, JC69(), 1)
