"""Ablation — multi-operation kernel vs CUDA-streams scheduling (§IV-B).

The paper's concurrency can be exploited through a single multi-operation
kernel launch per set, or by fanning each set's operations into CUDA
streams. Its reference [2] found the multi-op kernel superior; this
ablation reproduces that comparison under the device model: streams are
host-issue-bound, so the multi-op kernel wins everywhere and its
advantage grows with set size.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench import format_table
from repro.core import make_plan, optimal_reroot_fast
from repro.gpu import GP100, WorkloadDims, streams_time_set_sizes, time_set_sizes
from repro.trees import balanced_tree, pectinate_tree, random_attachment_tree

DIMS = WorkloadDims(patterns=512, states=4)


def test_multiop_vs_streams(benchmark, results_dir):
    cases = [
        ("balanced 64", balanced_tree(64)),
        ("balanced 256", balanced_tree(256)),
        ("random 256", random_attachment_tree(256, 1)),
        ("random 256 rerooted", optimal_reroot_fast(random_attachment_tree(256, 1)).tree),
        ("pectinate 64 rerooted", optimal_reroot_fast(pectinate_tree(64)).tree),
    ]
    rows = []
    for label, tree in cases:
        sizes = make_plan(tree).set_sizes
        multi = time_set_sizes(GP100, DIMS, sizes)
        serial = time_set_sizes(GP100, DIMS, [1] * sum(sizes))
        rows_for_streams = {}
        for n_streams in (2, 4, 8, 16):
            stream = streams_time_set_sizes(GP100, DIMS, sizes, n_streams)
            rows_for_streams[n_streams] = stream.seconds
        best_stream = min(rows_for_streams.values())
        rows.append(
            {
                "case": label,
                "serial us": f"{serial.seconds * 1e6:.1f}",
                "multi-op us": f"{multi.seconds * 1e6:.1f}",
                "streams (best) us": f"{best_stream * 1e6:.1f}",
                "multi-op vs streams": f"{best_stream / multi.seconds:.2f}x",
            }
        )
        # [2]'s finding: the multi-op kernel is at least as good, and both
        # beat serial whenever there is any concurrency.
        assert multi.seconds <= best_stream + 1e-15
        if max(sizes) > 1:
            assert best_stream < serial.seconds

    emit(
        results_dir,
        "ablation_streams.md",
        format_table(
            rows, title="Ablation: multi-operation kernel vs streams (512 patterns)"
        ),
    )

    tree = balanced_tree(256)
    sizes = make_plan(tree).set_sizes
    benchmark(streams_time_set_sizes, GP100, DIMS, sizes, 8)
