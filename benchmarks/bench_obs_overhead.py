"""Cost of the observability seams on the path everyone runs: disabled.

Every hot site in the likelihood stack asks ``get_recorder()`` and
branches on ``enabled`` (or enters a shared null context manager). With
the default null recorder that is the *entire* cost — no allocation, no
locking — and it must stay within a few percent of an engine with no
hooks at all, or the instrumentation does not belong in the kernel path.

Measured claims, on the Fig. 5 throughput workload (256-OTU random
tree, 512 patterns, concurrent plan):

* the null-recorder path costs **<3%** over a baseline that drives the
  same kernels through uninstrumented call sites,
* an *enabled* recorder (full tracing + metrics + profiling) is priced
  alongside, not hidden in the bound,
* instrumented and baseline paths compute the identical log-likelihood.

The baseline replicates the two per-launch seams with their
observability lines removed (the pre-instrumentation call path); the
phase timers *inside* the kernel body run in both arms, so the
comparison isolates exactly the cost the hooks added per launch.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.bench import format_table
from repro.beagle.operations import operations_independent
from repro.core import create_instance, execute_plan, make_plan
from repro.core.planner import _execute_plan_body
from repro.data import random_patterns
from repro.models import JC69
from repro.obs import NULL_RECORDER, Recorder, get_recorder, recording
from repro.trees.generate import random_attachment_tree

N_TIPS = 256  # Fig. 5 workload: 100 random 256-OTU trees, 512 patterns
SITES = 512
MODEL = JC69()
REPEATS = 9
OVERHEAD_BOUND = 0.03  # the headline guarantee: <3% with the null recorder


def setup_case():
    tree = random_attachment_tree(N_TIPS, 1, branch_length=0.1)
    patterns = random_patterns(sorted(tree.tip_names()), SITES, seed=1)
    instance = create_instance(tree, MODEL, patterns)
    plan = make_plan(tree, "concurrent")
    execute_plan(instance, plan)  # warm-up; validates plan
    return instance, plan


def run_baseline(instance, plan):
    """``execute_plan`` with the observability seams removed.

    Mirrors :func:`repro.core.planner.execute_plan` and
    :meth:`repro.beagle.instance.BeagleInstance.update_partials_set`
    line for line, minus their ``get_recorder()`` lookups and branches
    — the call path as it was before instrumentation.
    """
    instance.invalidate_partials()
    for op_set in plan.operation_sets:
        ops = list(op_set)
        if not ops:
            continue
        if not operations_independent(ops):
            raise ValueError("operation set contains internal dependencies")
        instance._run_operation_set(ops, len(ops))
    return instance.calculate_root_log_likelihood(plan.root_buffer)


def run_null(instance, plan):
    return _execute_plan_body(instance, plan, update_matrices=False)


def measure(fn, instance, plan, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(instance, plan)
        best = min(best, time.perf_counter() - start)
    return best


def test_null_recorder_overhead_under_three_percent(benchmark, results_dir):
    instance, plan = setup_case()
    assert get_recorder() is NULL_RECORDER  # measuring the default path

    # Identical results on all three paths, to the bit.
    ll_baseline = run_baseline(instance, plan)
    assert execute_plan(instance, plan, update_matrices=False) == ll_baseline
    with recording():
        assert (
            execute_plan(instance, plan, update_matrices=False) == ll_baseline
        )

    t_baseline = measure(run_baseline, instance, plan)
    t_null = measure(run_null, instance, plan)
    recorder = Recorder()
    with recording(recorder):
        t_enabled = measure(
            lambda i, p: execute_plan(i, p, update_matrices=False),
            instance,
            plan,
        )

    overhead_null = t_null / t_baseline - 1.0
    overhead_enabled = t_enabled / t_baseline - 1.0
    rows = [
        {"path": "uninstrumented baseline", "ms": t_baseline * 1e3,
         "overhead": "—"},
        {"path": "null recorder (default)", "ms": t_null * 1e3,
         "overhead": f"{overhead_null * 100:+.2f}%"},
        {"path": "enabled recorder (trace+metrics+profile)",
         "ms": t_enabled * 1e3,
         "overhead": f"{overhead_enabled * 100:+.2f}%"},
    ]
    emit(
        results_dir,
        "obs_overhead.md",
        format_table(
            rows,
            title=(
                f"Observability seams, Fig. 5 workload: random "
                f"{N_TIPS}-OTU tree, {SITES} patterns, "
                f"{plan.n_launches} launches/evaluation"
            ),
        ),
    )
    assert overhead_null < OVERHEAD_BOUND

    benchmark(run_null, instance, plan)


def test_instrumented_results_are_bit_identical(results_dir):
    instance, plan = setup_case()
    ll = execute_plan(instance, plan)
    with recording() as obs:
        assert execute_plan(instance, plan) == ll
    assert obs.metrics.counter("repro_kernel_launches_total").value > 0
