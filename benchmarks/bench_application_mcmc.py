"""Application-level effect (paper §VIII).

The paper argues kernel-level gains reach full inferences because >0.9 of
run time is the partials function, and reports a 1.41× MrBayes speedup on
a P5000 from node concurrency alone. This benchmark runs the library's
Metropolis sampler three ways on the same data and seed —

* serial evaluation (the prevailing baseline),
* concurrent evaluation,
* concurrent evaluation with a concurrency-rerooted starting tree —

and compares total kernel launches and modelled device seconds. The
chains are identical (same proposals, same acceptances), so the entire
difference is scheduling.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench import format_table
from repro.data import simulate_alignment
from repro.gpu import QUADRO_P5000
from repro.inference import TreeLikelihood, run_mcmc
from repro.models import HKY85
from repro.trees import pectinate_tree


def test_mcmc_scheduling_modes(benchmark, results_dir, full_scale):
    n_taxa = 64 if full_scale else 32
    iterations = 200 if full_scale else 60
    model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
    tree = pectinate_tree(n_taxa, branch_length=0.15)
    aln = simulate_alignment(tree, model, 128, seed=81)

    def chain(mode, reroot):
        evaluator = TreeLikelihood(tree, model, aln, mode=mode, reroot=reroot)
        return run_mcmc(
            evaluator, iterations, seed=82, device=QUADRO_P5000
        )

    serial = chain("serial", "none")
    concurrent = chain("concurrent", "none")
    rerooted = chain("concurrent", "fast")

    # Serial vs concurrent run the *same* chain: scheduling cannot change
    # the statistics. (The rerooted chain starts from a differently rooted
    # — likelihood-identical — tree, so its proposal sequence differs; it
    # samples the same posterior but is not step-identical.)
    assert serial.log_likelihoods == pytest.approx(concurrent.log_likelihoods)
    assert serial.accepted == concurrent.accepted

    rows = []
    for label, result in [
        ("serial", serial),
        ("concurrent", concurrent),
        ("concurrent + rerooted start", rerooted),
    ]:
        rows.append(
            {
                "configuration": label,
                "kernel launches": result.kernel_launches,
                "device seconds (model)": f"{result.device_seconds:.4f}",
                "speedup vs serial": f"{serial.device_seconds / result.device_seconds:.2f}x",
                "best logL": f"{result.best_log_likelihood:.2f}",
            }
        )
    emit(
        results_dir,
        "application_mcmc.md",
        format_table(
            rows,
            title=f"Application-level MCMC ({n_taxa} taxa, {iterations} iterations)",
        ),
    )

    # Scheduling gains reach the application level.
    assert concurrent.kernel_launches <= serial.kernel_launches
    assert rerooted.kernel_launches < serial.kernel_launches
    assert rerooted.device_seconds < concurrent.device_seconds < serial.device_seconds
    # The §VIII anecdote band: an appreciable (>1.2x) application speedup.
    assert serial.device_seconds / rerooted.device_seconds > 1.2

    # Kernel under measurement: one full (short) chain with rerooting.
    def short_chain():
        evaluator = TreeLikelihood(tree, model, aln, reroot="fast")
        return run_mcmc(evaluator, 10, seed=83, device=QUADRO_P5000)

    result = benchmark.pedantic(short_chain, rounds=1, iterations=1)
    assert result.proposed == 10
