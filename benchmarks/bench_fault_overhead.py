"""Cost of resilience on the path that matters: the fault-free one.

``ResilientInstance`` wraps every kernel launch in the retry pipeline
and (optionally) verifies destination partials after each launch. Runs
are overwhelmingly fault-free, so the wrapper earns its keep only if
that healthy path stays within a few percent of the bare engine.

Measured claims:

* with verification off (retry/degradation/escalation machinery still
  armed) the wrapper costs **<5%** over a bare ``BeagleInstance``,
* per-launch destination verification is the one knowingly priced
  feature — its cost is reported alongside, not hidden in the bound,
* the wrapped engine computes the identical log-likelihood.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.bench import format_table
from repro.core import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.exec import ResilientInstance, RetryPolicy
from repro.models import JC69
from repro.trees import balanced_tree

# 128 tips keeps the double-precision likelihood comfortably above the
# underflow threshold: the run is genuinely fault-free, so nothing in
# the retry/rescue machinery fires and the wrapper's own cost is what
# gets measured. (At 256 tips the root likelihood sinks close enough to
# the threshold that the engine *correctly* escalates to a rescaling
# plan — real work, not overhead.)
N_TIPS = 128
SITES = 256
MODEL = JC69()
REPEATS = 9
OVERHEAD_BOUND = 0.05  # the headline guarantee: <5% on the fault-free path


def setup_case():
    tree = balanced_tree(N_TIPS, branch_length=0.1)
    patterns = random_patterns(sorted(tree.tip_names()), SITES, seed=1)
    instance = create_instance(tree, MODEL, patterns)
    plan = make_plan(tree, "concurrent")
    execute_plan(instance, plan)  # warm-up; validates plan
    return instance, plan


def measure_bare(instance, plan, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        execute_plan(instance, plan, update_matrices=False)
        best = min(best, time.perf_counter() - start)
    return best


def measure_resilient(engine, plan, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        engine.execute(plan, update_matrices=False)
        best = min(best, time.perf_counter() - start)
    return best


def test_fault_free_overhead_under_five_percent(benchmark, results_dir):
    instance, plan = setup_case()

    wrapped = ResilientInstance(instance, RetryPolicy(verify=False))
    verified = ResilientInstance(instance, RetryPolicy())

    ll_bare = execute_plan(instance, plan)
    assert wrapped.execute(plan) == ll_bare  # identical result, to the bit
    assert verified.execute(plan) == ll_bare
    assert wrapped.fault_stats.detected == 0  # genuinely fault-free case
    assert verified.fault_stats.rescued == 0

    t_bare = measure_bare(instance, plan)
    t_wrapped = measure_resilient(wrapped, plan)
    t_verified = measure_resilient(verified, plan)

    overhead = t_wrapped / t_bare - 1.0
    overhead_verified = t_verified / t_bare - 1.0
    rows = [
        {"engine": "bare BeagleInstance", "ms": t_bare * 1e3, "overhead": "—"},
        {
            "engine": "ResilientInstance (verify off)",
            "ms": t_wrapped * 1e3,
            "overhead": f"{overhead * 100:+.2f}%",
        },
        {
            "engine": "ResilientInstance (verify on)",
            "ms": t_verified * 1e3,
            "overhead": f"{overhead_verified * 100:+.2f}%",
        },
    ]
    emit(
        results_dir,
        "fault_overhead.md",
        format_table(
            rows,
            title=(
                f"Resilience wrapper, fault-free path: balanced "
                f"{N_TIPS}-OTU tree, {SITES} patterns"
            ),
        ),
    )
    assert overhead < OVERHEAD_BOUND

    benchmark(wrapped.execute, plan, update_matrices=False)


def test_wrapped_result_is_bit_identical(results_dir):
    instance, plan = setup_case()
    engine = ResilientInstance(instance)
    assert engine.execute(plan) == execute_plan(instance, plan)
    assert engine.fault_stats.errors == 0
