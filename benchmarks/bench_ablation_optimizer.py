"""Ablation — Brent vs Newton branch-length optimisation.

The Newton optimiser exists because of the paper's central trick:
rerooting the evaluation onto the focal branch (free for reversible
models) is what makes the analytic first and second derivatives
computable from two half-tree partials. This ablation compares the two
optimisers on the same refit problem: identical optima, with Newton
spending far fewer likelihood-kernel passes per branch.
"""

from __future__ import annotations

import time

import pytest
from conftest import emit

from repro.bench import format_table
from repro.data import compress, simulate_alignment
from repro.inference import (
    TreeLikelihood,
    newton_optimize_branch_lengths,
    optimize_branch_lengths,
)
from repro.models import HKY85
from repro.trees import yule_tree


def test_brent_vs_newton(benchmark, results_dir):
    model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
    truth = yule_tree(10, 51, random_lengths=True)
    for edge in truth.edges():
        edge.length = max(edge.length, 0.05)
    patterns = compress(simulate_alignment(truth, model, 300, seed=131))
    start = truth.copy()
    for edge in start.edges():
        edge.length = 0.3

    def run(optimizer):
        evaluator = TreeLikelihood(start, model, patterns)
        t0 = time.perf_counter()
        result = optimizer(evaluator, max_sweeps=3)
        return result, time.perf_counter() - t0

    brent, t_brent = run(optimize_branch_lengths)
    newton, t_newton = run(newton_optimize_branch_lengths)

    rows = [
        {
            "optimizer": "Brent (bounded scalar)",
            "final logL": f"{brent.log_likelihood:.3f}",
            "evaluations": brent.evaluations,
            "wall s": f"{t_brent:.2f}",
        },
        {
            "optimizer": "Newton (analytic derivatives)",
            "final logL": f"{newton.log_likelihood:.3f}",
            "evaluations": newton.evaluations,
            "wall s": f"{t_newton:.2f}",
        },
    ]
    emit(
        results_dir,
        "ablation_optimizer.md",
        format_table(
            rows, title="Ablation: branch-length optimisation (10 taxa, 300 sites)"
        ),
    )

    # Same optimum (coordinate ascent on the same surface) ...
    assert newton.log_likelihood == pytest.approx(brent.log_likelihood, abs=0.1)
    # ... with far fewer likelihood evaluations.
    assert newton.evaluations < brent.evaluations / 3

    benchmark.pedantic(
        lambda: newton_optimize_branch_lengths(
            TreeLikelihood(start, model, patterns), max_sweeps=1
        ),
        rounds=1,
        iterations=1,
    )
