"""Figure 6 — throughput vs tree size across topology types.

Paper setup: 512 patterns; tree sizes 16 … 4,096 OTUs; balanced,
pectinate and 1,000 random topologies, the latter two with and without
rerooting.

Shape claims checked:

* pectinate throughput is flat in n (fully serial — this line equals the
  no-subtree-concurrency baseline for any topology, per the paper's note),
* rerooted pectinate sits just under 2× above it, with the best-case
  speedup in the paper's 1.9x band for n ≥ ~256,
* balanced throughput grows with n and flattens (device saturation),
* random trees sit between pectinate and balanced, improve with
  rerooting, and their distribution skews toward balanced as n grows.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.bench import Series, ascii_plot, format_table, run_case, sweep_random_trees
from repro.core import optimal_reroot_fast
from repro.gpu import simulate_tree
from repro.trees import pectinate_tree


def test_fig6_scaling(benchmark, results_dir, full_scale):
    sizes = (16, 64, 256, 1024, 4096) if full_scale else (16, 64, 256, 1024)
    n_random = 50 if full_scale else 12
    rows = []
    by_size = {}
    for n in sizes:
        balanced = run_case("balanced", n, 512)
        pectinate = run_case("pectinate", n, 512)
        pect_reroot = run_case("pectinate", n, 512, reroot=True)
        sample = sweep_random_trees(n, n_random, 512)
        sample_reroot = sweep_random_trees(n, n_random, 512, reroot=True)
        random_g = np.array([c.gflops for c in sample])
        random_rg = np.array([c.gflops for c in sample_reroot])
        by_size[n] = (balanced, pectinate, pect_reroot, random_g, random_rg)
        rows.append(
            {
                "otus": n,
                "balanced": f"{balanced.gflops:.2f}",
                "pectinate": f"{pectinate.gflops:.2f}",
                "pectinate rerooted": f"{pect_reroot.gflops:.2f}",
                "random (median)": f"{float(np.median(random_g)):.2f}",
                "random rerooted (median)": f"{float(np.median(random_rg)):.2f}",
            }
        )
    text = format_table(
        rows, title="Figure 6: throughput (GFLOPS) vs tree size, 512 patterns"
    )
    sizes_list = list(sizes)
    text += "\n```\n" + ascii_plot(
        [
            Series(sizes_list, [by_size[n][0].gflops for n in sizes], "B", "balanced"),
            Series(sizes_list, [float(np.median(by_size[n][3])) for n in sizes], "r", "random (median)"),
            Series(sizes_list, [float(np.median(by_size[n][4])) for n in sizes], "R", "random rerooted"),
            Series(sizes_list, [by_size[n][2].gflops for n in sizes], "P", "pectinate rerooted"),
            Series(sizes_list, [by_size[n][1].gflops for n in sizes], "p", "pectinate"),
        ],
        xlabel="tips (log scale)",
        ylabel="modelled GFLOPS (log scale)",
        title="Figure 6 (reproduced)",
        logx=True,
        logy=True,
    ) + "\n```\n"
    emit(results_dir, "fig6_scaling.md", text)

    # --- Shape assertions --------------------------------------------
    pect_line = [by_size[n][1].gflops for n in sizes]
    assert max(pect_line) / min(pect_line) < 1.05  # flat

    bal_line = [by_size[n][0].gflops for n in sizes]
    assert all(a < b for a, b in zip(bal_line, bal_line[1:]))  # growing
    # flattening growth (saturation)
    growth = [b / a for a, b in zip(bal_line, bal_line[1:])]
    assert growth[-1] < growth[0]

    for n in sizes:
        balanced, pectinate, pect_reroot, random_g, random_rg = by_size[n]
        # ordering: pectinate <= random <= balanced-ish ceiling
        assert pectinate.gflops <= np.median(random_g) + 1e-9
        assert np.all(random_rg >= random_g - 1e-9)
        # rerooted pectinate ~2x pectinate
        ratio = pect_reroot.gflops / pectinate.gflops
        assert 1.5 < ratio < 2.0
        if n >= 256:
            assert ratio > 1.8  # the paper's 1.93x band at large n

    # Random distribution skews toward balanced with size: the median
    # random/balanced throughput ratio increases with n.
    ratios = [float(np.median(by_size[n][3]) / by_size[n][0].gflops) for n in sizes]
    assert ratios[-1] > ratios[0]

    # Kernel under measurement: simulated evaluation at the largest size.
    big = optimal_reroot_fast(pectinate_tree(sizes[-1])).tree

    def evaluate():
        return simulate_tree(big).seconds

    seconds = benchmark(evaluate)
    assert seconds > 0
