"""Serving throughput — cross-request coalescing vs singleton dispatch.

Two views of the same trade-off:

* **measured** — a real :class:`~repro.serve.LikelihoodServer` over an
  inline pool serves a multi-tenant backlog with coalescing on and off;
  every served value is gated bit-identical to the serial evaluation, so
  the speedup is not bought with accuracy.
* **device model** — :meth:`SimulatedDevice.time_coalesced` prices the
  same lockstep launch schedule at thousands of tenants, where the
  per-launch overhead the coalescer amortises dominates: aggregate
  requests/s rises monotonically with width while per-request latency
  (the p99 proxy: every member waits for the shared launch) rises too.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import format_table
from repro.core.planner import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.exec import LikelihoodPool
from repro.gpu import SimulatedDevice, WorkloadDims
from repro.models import JC69
from repro.serve import (
    AdmissionConfig,
    CoalescePolicy,
    FairnessConfig,
    LikelihoodServer,
    RequestDims,
)
from repro.trees import balanced_tree

from conftest import FULL, emit


def _case():
    tree = balanced_tree(16)
    patterns = random_patterns(
        tree.tip_names(), 64, rng=np.random.default_rng(23)
    )
    model = JC69()
    plan = make_plan(tree, "concurrent")

    def make_case():
        return create_instance(tree, model, patterns), plan

    reference = execute_plan(*make_case())
    dims = RequestDims(state_count=4, pattern_count=64)
    set_sizes = tuple(plan.set_sizes)
    return make_case, reference, dims, set_sizes


def _serve(make_case, reference, dims, set_sizes, *, n_tenants, n_requests,
           width):
    pool = LikelihoodPool(4, executor="inline")
    server = LikelihoodServer(
        pool,
        # Headroom keeps queue pressure below the brownout thresholds:
        # this benchmark measures throughput, not overload shedding.
        admission=AdmissionConfig(max_queued=4 * n_requests),
        fairness=FairnessConfig(),
        coalesce=CoalescePolicy(max_width=width, enabled=width > 1),
        jitter_seed=0,
    )
    t0 = time.perf_counter()
    for i in range(n_requests):
        server.submit(
            f"tenant-{i % n_tenants}", make_case,
            dims=dims, set_sizes=set_sizes,
        )
    outcomes = server.drain()
    wall = time.perf_counter() - t0
    assert all(o.ok and o.value == reference for o in outcomes)
    assert server.ledger.balances() and server.ledger.drained()
    waits = sorted(o.wait_s for o in outcomes)
    p50 = waits[len(waits) // 2]
    p99 = waits[min(len(waits) - 1, int(len(waits) * 0.99))]
    return {
        "throughput": n_requests / wall,
        "p50_ms": p50 * 1e3,
        "p99_ms": p99 * 1e3,
        "launches": server.ledger.coalesced_launches or n_requests,
    }


def test_coalescing_throughput_and_latency(results_dir):
    make_case, reference, dims, set_sizes = _case()
    n_requests = 512 if FULL else 128
    rows = []
    for n_tenants in (8, 64, n_requests):
        for width in (1, 8):
            result = _serve(
                make_case, reference, dims, set_sizes,
                n_tenants=n_tenants, n_requests=n_requests, width=width,
            )
            rows.append(
                {
                    "tenants": n_tenants,
                    "coalescing": f"width {width}" if width > 1 else "off",
                    "req/s": f"{result['throughput']:.0f}",
                    "p50 ms": f"{result['p50_ms']:.1f}",
                    "p99 ms": f"{result['p99_ms']:.1f}",
                }
            )
    measured = format_table(
        rows,
        title=(
            f"Measured: inline pool, 16 taxa / 64 patterns, "
            f"{n_requests} requests (every value gated bit-identical)"
        ),
    )

    device = SimulatedDevice()
    wdims = WorkloadDims(patterns=512, states=4, categories=4)
    set_shape = [8, 4, 2, 1]
    model_rows = []
    for width, req_s, per_req_s in device.coalescing_curve(
        set_shape, wdims, [1, 2, 4, 8, 16, 32]
    ):
        model_rows.append(
            {
                "width": width,
                "tenants served": 4096,
                "agg req/s": f"{req_s:.0f}",
                "per-request µs (p99 proxy)": f"{per_req_s * 1e6:.0f}",
            }
        )
    modelled = format_table(
        model_rows,
        title=(
            "Device model (NVIDIA Quadro GP100): 4096 single-request "
            "tenants, 512 patterns × 4 categories"
        ),
    )
    emit(results_dir, "serve_throughput.md", measured + "\n" + modelled)

    # The headline claim: at every tenant count the coalesced
    # configuration moves at least as many aggregate requests per
    # second through the device model, and pays for it in per-request
    # latency.
    model_tp = [float(r["agg req/s"]) for r in model_rows]
    model_lat = [
        float(r["per-request µs (p99 proxy)"]) for r in model_rows
    ]
    assert model_tp == sorted(model_tp)
    assert model_lat == sorted(model_lat)
