"""Figure 5 — throughput vs number of operation sets, 256 OTUs, 512 patterns.

Paper setup: the same 100 random 256-OTU trees as Figure 4, with 512 site
patterns; throughput of the partials kernel with the original rooting and
with optimal rerooting.

Shape claims checked:

* throughput increases as the number of operation sets decreases,
* rerooted trees dominate their originals,
* the mean throughput improvement is in the vicinity of the paper's
  1.26× (we assert the 1.1–1.6 band).
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.bench import Series, ascii_plot, format_table
from repro.core import make_plan, optimal_reroot_fast
from repro.gpu import GP100, SimulatedDevice, WorkloadDims
from repro.trees import random_attachment_tree

N_TAXA = 256
DIMS = WorkloadDims(patterns=512, states=4)


def collect(n_trees: int):
    device = SimulatedDevice(GP100)
    rows = []
    for seed in range(1, n_trees + 1):
        tree = random_attachment_tree(N_TAXA, seed)
        rerooted = optimal_reroot_fast(tree).tree
        original = device.time_tree(tree, DIMS)
        improved = device.time_tree(rerooted, DIMS)
        rows.append(
            {
                "seed": seed,
                "sets_original": original.n_launches,
                "gflops_original": original.gflops,
                "sets_rerooted": improved.n_launches,
                "gflops_rerooted": improved.gflops,
            }
        )
    return rows


def test_fig5_throughput(benchmark, results_dir, full_scale):
    n_trees = 100 if full_scale else 40
    rows = collect(n_trees)

    g_orig = np.array([r["gflops_original"] for r in rows])
    g_new = np.array([r["gflops_rerooted"] for r in rows])
    sets_orig = np.array([r["sets_original"] for r in rows])

    # Rerooting never hurts throughput.
    assert np.all(g_new >= g_orig - 1e-9)
    # Monotone trend: fewer sets <-> higher throughput (rank correlation).
    order = np.argsort(sets_orig)
    top = g_orig[order[: len(rows) // 4]]
    bottom = g_orig[order[-len(rows) // 4 :]]
    assert top.mean() > bottom.mean()
    # Mean improvement in the paper's vicinity (1.26x on the GP100).
    mean_improvement = float(np.mean(g_new / g_orig))
    assert 1.1 < mean_improvement < 1.6

    summary = [
        {"statistic": "trees", "value": n_trees},
        {"statistic": "patterns", "value": DIMS.patterns},
        {"statistic": "mean improvement", "value": f"{mean_improvement:.2f}x"},
        {"statistic": "max improvement", "value": f"{float(np.max(g_new / g_orig)):.2f}x"},
        {
            "statistic": "gflops original (mean)",
            "value": f"{float(g_orig.mean()):.2f}",
        },
        {
            "statistic": "gflops rerooted (mean)",
            "value": f"{float(g_new.mean()):.2f}",
        },
    ]
    text = format_table(summary, title="Figure 5: throughput vs operation sets")
    text += "\n" + format_table(rows[:20], title="First 20 trees (series data)")
    # Paper plots the x axis decreasing left-to-right; we negate sets so
    # "fewer sets" reads rightward, as in the original figure.
    text += "\n```\n" + ascii_plot(
        [
            Series([-r["sets_original"] for r in rows], g_orig.tolist(), "o", "original rooting"),
            Series([-r["sets_rerooted"] for r in rows], g_new.tolist(), "#", "optimal rerooting"),
        ],
        xlabel="operation sets (decreasing ->)",
        ylabel="modelled GFLOPS",
        title="Figure 5 (reproduced)",
    ) + "\n```\n"
    emit(results_dir, "fig5_throughput.md", text)

    # Kernel under measurement: the device-model evaluation of one plan.
    tree = random_attachment_tree(N_TAXA, 1)
    plan = make_plan(tree)
    device = SimulatedDevice(GP100)

    timing = benchmark(device.time_plan, plan, DIMS)
    assert timing.gflops > 0
