"""Ablation — greedy reverse-level-order batching vs optimal level batching.

BEAGLE's greedy algorithm (reproduced here) cuts a set whenever the next
submitted operation depends on a member; the optimal (ASAP/height)
grouping computes each node as early as possible. This ablation asks how
much the greedy scheduler gives up in practice — the answer, over the
paper's random-tree ensemble, is "almost nothing", which justifies the
paper's reliance on the greedy count as *the* per-tree concurrency
measure.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.bench import format_table
from repro.core import count_operation_sets, level_schedule, min_operation_sets
from repro.trees import balanced_tree, pectinate_tree, random_attachment_tree, yule_tree


def test_greedy_vs_level_schedule(benchmark, results_dir, full_scale):
    n_trees = 200 if full_scale else 60
    n_taxa = 128
    greedy_total = 0
    optimal_total = 0
    worst_gap = 0
    gaps = []
    for seed in range(n_trees):
        tree = random_attachment_tree(n_taxa, seed)
        greedy = count_operation_sets(tree)
        optimal = min_operation_sets(tree)
        assert greedy >= optimal
        gaps.append(greedy - optimal)
        greedy_total += greedy
        optimal_total += optimal
        worst_gap = max(worst_gap, greedy - optimal)

    rows = [
        {"statistic": "trees", "value": n_trees},
        {"statistic": "taxa", "value": n_taxa},
        {"statistic": "greedy sets (mean)", "value": f"{greedy_total / n_trees:.2f}"},
        {"statistic": "optimal sets (mean)", "value": f"{optimal_total / n_trees:.2f}"},
        {"statistic": "worst gap", "value": worst_gap},
        {"statistic": "trees with gap 0", "value": int(sum(g == 0 for g in gaps))},
        {
            "statistic": "mean overhead",
            "value": f"{(greedy_total / optimal_total - 1) * 100:.2f}%",
        },
    ]
    emit(
        results_dir,
        "ablation_schedule.md",
        format_table(rows, title="Ablation: greedy (BEAGLE) vs optimal batching"),
    )

    # The greedy scheduler is near-optimal on this ensemble.
    assert greedy_total / optimal_total < 1.05
    # Exact equality on the canonical families.
    for make in (balanced_tree, pectinate_tree):
        t = make(64)
        assert count_operation_sets(t) == min_operation_sets(t)
    t = yule_tree(64, 1)
    assert count_operation_sets(t) >= min_operation_sets(t)

    tree = random_attachment_tree(n_taxa, 1)
    benchmark(level_schedule, tree)
