"""Cost of pool supervision on the path that matters: the fault-free one.

A :class:`~repro.exec.pool.LikelihoodPool` routes every evaluation
through a job queue, a circuit-breaker check, a deadline and the final
sentinel audit. Fleets are overwhelmingly healthy, so the machinery
earns its keep only if fault-free dispatch stays within a few percent of
calling the engine directly.

Measured claims:

* a 4-worker pool (inline executor — same thread, pure dispatch cost;
  fail-fast workers, so the engine path matches the baseline) completes
  a batch of independent evaluations within **<5%** of the direct
  serial loop over the same fresh-instance cases, final sentinel audit
  included,
* arming the workers' full retry/verify pipeline is the one knowingly
  priced feature — its cost is reported alongside, not hidden in the
  bound (``bench_fault_overhead`` bounds that wrapper separately),
* every pool result is bit-identical to the serial value,
* the device model's degraded-fleet curve — throughput as workers are
  evicted, 0 to N−1 — is monotone non-increasing, and a real pool run at
  every eviction level still returns bit-identical, fully accounted
  results. (Measured wall-clock throughput is reported alongside but
  not gated: the CPU engine's threads contend for the interpreter lock,
  so fewer survivors can paradoxically run a little faster — a host
  artefact the device model deliberately excludes.)
"""

from __future__ import annotations

import time

from conftest import emit

from repro.bench import format_table
from repro.core import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.exec import LikelihoodPool
from repro.gpu import GP100, SimulatedDevice, WorkloadDims
from repro.models import JC69
from repro.trees import balanced_tree

N_TIPS = 128
SITES = 256
N_WORKERS = 4
N_JOBS = 16
REPEATS = 5
OVERHEAD_BOUND = 0.05  # headline guarantee: <5% fault-free dispatch cost


def setup_case():
    tree = balanced_tree(N_TIPS, branch_length=0.1)
    patterns = random_patterns(sorted(tree.tip_names()), SITES, seed=1)
    model = JC69()
    plan = make_plan(tree, "concurrent")

    def make_case():
        return create_instance(tree, model, patterns), plan

    reference = execute_plan(*make_case())  # warm-up; validates plan
    return make_case, reference


def measure_serial(make_case):
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        values = [execute_plan(*make_case()) for _ in range(N_JOBS)]
        best = min(best, time.perf_counter() - start)
    return best, values


def measure_pool(make_case, **pool_kwargs):
    best = float("inf")
    for _ in range(REPEATS):
        pool = LikelihoodPool(N_WORKERS, executor="inline", **pool_kwargs)
        start = time.perf_counter()
        for rep in range(N_JOBS):
            pool.submit_case(make_case, label=f"rep-{rep}")
        outcomes = pool.drain()
        best = min(best, time.perf_counter() - start)
        assert pool.stats().balances()
    return best, [outcome.value for outcome in outcomes]


def test_fault_free_dispatch_overhead_under_five_percent(
    benchmark, results_dir
):
    make_case, reference = setup_case()

    t_serial, serial_values = measure_serial(make_case)
    # Headline config: fail-fast workers — the engine path is the same
    # bare BeagleInstance the serial loop runs, so the difference is the
    # pool machinery itself (queue, breakers, deadline checks, audit).
    t_pool, pool_values = measure_pool(make_case, policy=None)
    # Priced feature: workers armed with the default retry/verify
    # pipeline (whose own cost bench_fault_overhead bounds separately).
    t_armed, armed_values = measure_pool(make_case)

    assert serial_values == [reference] * N_JOBS
    assert pool_values == [reference] * N_JOBS  # bit-identical, job by job
    assert armed_values == [reference] * N_JOBS

    overhead = t_pool / t_serial - 1.0
    overhead_armed = t_armed / t_serial - 1.0
    rows = [
        {
            "path": "direct serial loop",
            "ms/batch": t_serial * 1e3,
            "overhead": "—",
        },
        {
            "path": f"LikelihoodPool ({N_WORKERS} workers, fail-fast)",
            "ms/batch": t_pool * 1e3,
            "overhead": f"{overhead * 100:+.2f}%",
        },
        {
            "path": f"LikelihoodPool ({N_WORKERS} workers, resilient)",
            "ms/batch": t_armed * 1e3,
            "overhead": f"{overhead_armed * 100:+.2f}%",
        },
    ]
    emit(
        results_dir,
        "pool_overhead.md",
        format_table(
            rows,
            title=(
                f"Pool dispatch, fault-free path: {N_JOBS} evaluations, "
                f"balanced {N_TIPS}-OTU tree, {SITES} patterns"
            ),
        ),
    )
    assert overhead < OVERHEAD_BOUND

    def batch():
        pool = LikelihoodPool(N_WORKERS, executor="inline", policy=None)
        for rep in range(N_JOBS):
            pool.submit_case(make_case, label=f"rep-{rep}")
        return pool.drain()

    benchmark(batch)


def test_degraded_fleet_throughput_is_monotone(results_dir):
    make_case, reference = setup_case()
    plan = make_case()[1]
    device = SimulatedDevice(GP100)
    dims = WorkloadDims(patterns=SITES, states=4)
    modelled = dict(
        device.degraded_fleet_curve(plan, dims, N_JOBS, N_WORKERS)
    )

    rows = []
    measured = []
    for evicted in range(N_WORKERS):
        pool = LikelihoodPool(N_WORKERS, executor="thread")
        for worker in pool.workers[:evicted]:
            worker.breaker.evict()
        start = time.perf_counter()
        for rep in range(N_JOBS):
            pool.submit_case(make_case, label=f"rep-{rep}")
        outcomes = pool.drain()
        elapsed = time.perf_counter() - start
        assert all(o.ok and o.value == reference for o in outcomes)
        assert pool.stats().balances()
        throughput = N_JOBS / elapsed
        measured.append(throughput)
        rows.append(
            {
                "evicted": evicted,
                "survivors": N_WORKERS - evicted,
                "jobs/s (measured)": throughput,
                "jobs/s (modelled)": modelled[evicted],
            }
        )
    emit(
        results_dir,
        "pool_degradation.md",
        format_table(
            rows,
            title=(
                f"Degraded-fleet throughput: {N_JOBS} jobs on "
                f"{N_WORKERS} workers, 0 to {N_WORKERS - 1} evicted"
            ),
        ),
    )
    # The degradation gate lives on the modelled curve: strictly fewer
    # survivors never yield more modelled throughput. Measured numbers
    # are informational (GIL contention makes them non-monotone).
    modelled_curve = [modelled[k] for k in range(N_WORKERS)]
    assert modelled_curve == sorted(modelled_curve, reverse=True)
    assert all(throughput > 0 for throughput in measured)
