"""Extension — incremental updates and rerooting (paper §VIII, factor 2).

Inference programs recompute only the partials invalidated by a move: the
path from the changed branch to the root. The paper asks whether its
concurrency gains apply in that regime; this benchmark quantifies two
answers with the library's dirty-path machinery:

1. **Rerooting shortens the updates themselves.** The expected dirty-path
   length over a uniformly chosen branch is O(n) for a pectinate rooting
   but halves (and better) after optimal rerooting, so a rerooted
   starting tree pays off on *every* branch-length iteration, not only on
   full traversals.
2. **Concurrent paths batch.** Multi-branch moves (e.g. adaptive-MCMC
   style updates of many parameters at once, §VIII) touch several paths
   whose union still groups into few operation sets.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import emit

from repro.bench import format_table
from repro.core import (
    IncrementalLikelihood,
    dirty_nodes,
    incremental_operation_sets,
    optimal_reroot_fast,
)
from repro.data import compress, random_patterns, simulate_alignment
from repro.models import JC69
from repro.trees import pectinate_tree, random_attachment_tree


def mean_update_stats(tree):
    costs = [len(dirty_nodes(tree, [e])) for e in tree.edges()]
    return float(np.mean(costs)), int(np.max(costs))


def test_incremental_updates(benchmark, results_dir, full_scale):
    sizes = (64, 256, 1024) if full_scale else (64, 256)
    rows = []
    for n in sizes:
        for label, tree in [
            ("pectinate", pectinate_tree(n)),
            ("random", random_attachment_tree(n, 1)),
        ]:
            rerooted = optimal_reroot_fast(tree).tree
            mean_before, max_before = mean_update_stats(tree)
            mean_after, max_after = mean_update_stats(rerooted)
            rows.append(
                {
                    "taxa": n,
                    "topology": label,
                    "mean path before": f"{mean_before:.1f}",
                    "mean path after": f"{mean_after:.1f}",
                    "max before": max_before,
                    "max after": max_after,
                    "mean reduction": f"{mean_before / mean_after:.2f}x",
                }
            )
            assert mean_after <= mean_before + 1e-9
            if label == "pectinate":
                assert mean_before / mean_after > 1.8  # ~2x like full traversals

    # Multi-branch moves batch across disjoint paths.
    tree = optimal_reroot_fast(pectinate_tree(64)).tree
    tree.assign_indices()
    tips = tree.tips()
    changed = [tips[0], tips[-1]]
    sets = incremental_operation_sets(tree, changed)
    n_ops = sum(len(s) for s in sets)
    assert len(sets) < n_ops  # batching happened
    rows.append(
        {
            "taxa": 64,
            "topology": "rerooted pectinate, 2-branch move",
            "mean path before": n_ops,
            "mean path after": len(sets),
            "max before": "",
            "max after": "",
            "mean reduction": "ops vs launches",
        }
    )

    emit(
        results_dir,
        "incremental_updates.md",
        format_table(
            rows, title="Extension (§VIII): dirty-path updates and rerooting"
        ),
    )

    # Kernel under measurement: one real incremental branch update on a
    # 256-tip tree (engine-computed, validated against a fresh instance).
    big = optimal_reroot_fast(random_attachment_tree(256, 1)).tree
    patterns = random_patterns(sorted(t.name for t in big.tips()), 64, seed=9)
    inc = IncrementalLikelihood(big, JC69(), patterns)
    inc.full_log_likelihood()
    edge = big.edges()[10]

    def update():
        return inc.set_branch_length(edge, 0.3)

    value = benchmark(update)
    fresh = IncrementalLikelihood(big, JC69(), patterns)
    assert value == pytest.approx(fresh.full_log_likelihood(), abs=1e-8)
