"""Incremental (dirty-path) MCMC vs full-traversal MCMC.

A Metropolis sampler that only recomputes the dirty root-ward path of
each proposal — plus a transition-matrix cache and rejection by
snapshot-restore — should evaluate a small fraction of the operations a
rebuild-everything sampler pays, while walking a bit-identical chain.
This benchmark runs both samplers on the same data and seed and records
operation counts, kernel launches, modelled device seconds and measured
wall-clock throughput.

Acceptance targets (256-tip tree, single-edge branch-length proposals):
the incremental sampler executes at least 5x fewer partial-likelihood
operations per iteration and at least 2x the wall-clock throughput.

Run directly for the CI perf-smoke variant::

    PYTHONPATH=src python benchmarks/bench_incremental_mcmc.py --quick \
        --metrics metrics.prom
"""

from __future__ import annotations

import argparse
import time

import numpy as np
import pytest
from conftest import emit

from repro.bench import format_table
from repro.data import compress, simulate_alignment
from repro.inference import TreeLikelihood, run_mcmc
from repro.models import HKY85, discrete_gamma
from repro.obs import recording
from repro.trees import pectinate_tree, yule_tree

MODEL = HKY85(2.0, np.array([0.3, 0.2, 0.2, 0.3]))


def _chain_pair(tree, patterns, rates, iterations, seed):
    """Run the full-traversal and incremental samplers on the same case.

    Returns ``(full_result, incremental_result, full_wall, inc_wall)``;
    the two chains consume identical RNG draws, so their traces must be
    bit-identical and any difference in cost is pure evaluation strategy.
    """
    full_ev = TreeLikelihood(tree.copy(), MODEL, patterns, rates=rates)
    inc_ev = TreeLikelihood(
        tree.copy(), MODEL, patterns, rates=rates, matrix_cache=True
    )
    start = time.perf_counter()
    full = run_mcmc(
        full_ev, iterations, seed=seed, nni_probability=0.0, device=None
    )
    full_wall = time.perf_counter() - start
    start = time.perf_counter()
    incremental = run_mcmc(
        inc_ev,
        iterations,
        seed=seed,
        nni_probability=0.0,
        device=None,
        incremental=True,
    )
    inc_wall = time.perf_counter() - start
    return full, incremental, full_wall, inc_wall, inc_ev


def test_incremental_mcmc_speedup(benchmark, results_dir, full_scale):
    n_taxa = 256
    n_sites = 512
    iterations = 200 if full_scale else 60
    seed = 41
    rng = np.random.default_rng(7)
    # Constant starting lengths (the usual "fixed starting tree" setup):
    # the warm-up full evaluation then exercises the matrix cache, and
    # the sampler diversifies lengths from there.
    tree = yule_tree(n_taxa, rng)
    rates = discrete_gamma(0.5, 4)
    patterns = compress(simulate_alignment(tree, MODEL, n_sites, seed=11))

    full, incremental, full_wall, inc_wall, inc_ev = _chain_pair(
        tree, patterns, rates, iterations, seed
    )

    # Same chain, evaluated two ways.
    assert full.log_likelihoods == incremental.log_likelihoods
    assert full.accepted == incremental.accepted

    ops_ratio = full.operations / incremental.operations
    wall_ratio = full_wall / inc_wall
    cache = inc_ev.matrix_cache.stats()

    rows = []
    for label, result, wall in [
        ("full traversal", full, full_wall),
        ("incremental", incremental, inc_wall),
    ]:
        rows.append(
            {
                "configuration": label,
                "operations": result.operations,
                "ops/iteration": f"{result.operations / iterations:.1f}",
                "kernel launches": result.kernel_launches,
                "wall seconds": f"{wall:.3f}",
                "iterations/s": f"{iterations / wall:.1f}",
            }
        )
    rows.append(
        {
            "configuration": "ratio (full / incremental)",
            "operations": f"{ops_ratio:.1f}x",
            "ops/iteration": "",
            "kernel launches": (
                f"{full.kernel_launches / incremental.kernel_launches:.1f}x"
            ),
            "wall seconds": f"{wall_ratio:.1f}x",
            "iterations/s": "",
        }
    )
    emit(
        results_dir,
        "incremental_mcmc.md",
        format_table(
            rows,
            title=(
                f"Incremental vs full-traversal MCMC ({n_taxa} taxa, "
                f"{patterns.n_patterns} patterns, 4 rate categories, "
                f"{iterations} iterations; matrix cache: "
                f"{cache['hits']} hits / {cache['misses']} misses)"
            ),
        ),
    )

    # Acceptance targets: >=5x fewer partial-likelihood operations and
    # >=2x wall-clock throughput on single-edge branch-length proposals.
    assert ops_ratio >= 5.0, f"only {ops_ratio:.1f}x fewer operations"
    assert wall_ratio >= 2.0, f"only {wall_ratio:.1f}x wall-clock speedup"
    assert cache["hits"] > 0

    # Kernel under measurement: a short incremental chain.
    def short_chain():
        ev = TreeLikelihood(
            tree.copy(), MODEL, patterns, rates=rates, matrix_cache=True
        )
        return run_mcmc(
            ev, 10, seed=43, nni_probability=0.0, device=None,
            incremental=True,
        )

    result = benchmark.pedantic(short_chain, rounds=1, iterations=1)
    assert result.proposed == 10


def main(argv=None) -> int:
    """CI perf-smoke entry point (no pytest-benchmark needed)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="64-tip pectinate chain, fewer iterations (CI smoke)",
    )
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument("--seed", type=int, default=41)
    parser.add_argument(
        "--metrics",
        type=str,
        default=None,
        help="write a Prometheus metrics dump of the incremental run here",
    )
    args = parser.parse_args(argv)

    if args.quick:
        tree = pectinate_tree(64, branch_length=0.15)
        n_sites = 128
        iterations = args.iterations or 40
    else:
        tree = yule_tree(256, np.random.default_rng(7))
        n_sites = 512
        iterations = args.iterations or 60
    rates = discrete_gamma(0.5, 4)
    patterns = compress(simulate_alignment(tree, MODEL, n_sites, seed=11))

    with recording() as rec:
        full, incremental, full_wall, inc_wall, inc_ev = _chain_pair(
            tree, patterns, rates, iterations, args.seed
        )
    if args.metrics:
        rec.metrics.write_prometheus(args.metrics)

    assert full.log_likelihoods == incremental.log_likelihoods, (
        "incremental chain diverged from the full-traversal chain"
    )
    assert incremental.operations < full.operations, (
        f"incremental MCMC evaluated {incremental.operations} operations, "
        f"full traversal {full.operations}"
    )
    print(
        f"full traversal: {full.operations} ops, "
        f"{full.kernel_launches} launches, {full_wall:.3f}s"
    )
    print(
        f"incremental:    {incremental.operations} ops, "
        f"{incremental.kernel_launches} launches, {inc_wall:.3f}s"
    )
    print(
        f"ratios: {full.operations / incremental.operations:.1f}x ops, "
        f"{full_wall / inc_wall:.1f}x wall"
    )
    print(f"matrix cache: {inc_ev.matrix_cache.stats()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
