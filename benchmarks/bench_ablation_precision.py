"""Ablation — single vs double precision and the manual-scaling rescue.

The paper runs the GPU in single precision and enables ``--manualscale``
because "single-precision floating-point format for trees with large
numbers of taxa" underflows (§VI-F). This ablation reproduces the
failure mode on the CPU engine and measures what each configuration
costs: float32 halves memory traffic but loses the deep-tree likelihood
entirely unless per-node rescaling is on.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import emit

from repro.bench import format_table
from repro.core import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.models import HKY85
from repro.trees import pectinate_tree


def test_precision_ablation(benchmark, results_dir):
    model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
    tree = pectinate_tree(400, branch_length=0.6)
    patterns = random_patterns(tree.tip_names(), 64, seed=121)

    def run(dtype, scaling):
        inst = create_instance(
            tree, model, patterns, scaling=scaling, dtype=dtype
        )
        plan = make_plan(tree, scaling=scaling)
        ll = execute_plan(inst, plan)
        start = time.perf_counter()
        for _ in range(3):
            execute_plan(inst, plan, update_matrices=False)
        elapsed = (time.perf_counter() - start) / 3
        return ll, elapsed

    ll_d, t_d = run(np.float64, False)
    ll_ds, t_ds = run(np.float64, True)
    ll_s, t_s = run(np.float32, False)
    ll_ss, t_ss = run(np.float32, True)

    rows = [
        {"configuration": "double", "logL": f"{ll_d:.3f}", "ms": f"{t_d*1e3:.2f}"},
        {"configuration": "double + manualscale", "logL": f"{ll_ds:.3f}", "ms": f"{t_ds*1e3:.2f}"},
        {"configuration": "single", "logL": str(ll_s), "ms": f"{t_s*1e3:.2f}"},
        {"configuration": "single + manualscale", "logL": f"{ll_ss:.3f}", "ms": f"{t_ss*1e3:.2f}"},
    ]
    emit(
        results_dir,
        "ablation_precision.md",
        format_table(
            rows,
            title="Ablation: precision and rescaling (pectinate 400 OTUs, 64 patterns)",
        ),
    )

    # The paper's §VI-F story, as assertions:
    assert np.isfinite(ll_d)
    assert ll_s == -np.inf  # single precision underflows on deep trees
    assert np.isfinite(ll_ss)  # manual scaling rescues it
    assert ll_ss == pytest.approx(ll_ds, rel=1e-4)
    assert ll_ds == pytest.approx(ll_d, abs=1e-6)

    inst = create_instance(tree, model, patterns, scaling=True, dtype=np.float32)
    plan = make_plan(tree, scaling=True)
    benchmark(execute_plan, inst, plan, update_matrices=False)
