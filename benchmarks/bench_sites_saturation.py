"""Supplementary — concurrency gains vs problem size (paper §VI rationale).

The paper fixes ``--sites 512`` "to avoid saturating the GPU when
computing the partial likelihood at a single node, thus allowing gains
from concurrent computation of multiple nodes", citing its reference [3]
performance curve. This benchmark regenerates that rationale: as the
pattern count grows, a single operation fills the device by itself, so
the concurrent-over-serial speedup (and hence the value of rerooting)
decays toward 1.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench import Series, ascii_plot, format_table
from repro.core import optimal_reroot_fast
from repro.gpu import GP100, WorkloadDims, simulated_speedup
from repro.trees import balanced_tree, pectinate_tree


SITES = (64, 256, 1024, 4096, 16384, 65536)


def test_sites_saturation(benchmark, results_dir):
    balanced = balanced_tree(64)
    rerooted = optimal_reroot_fast(pectinate_tree(64)).tree
    rows = []
    bal_speedups = []
    reroot_speedups = []
    for sites in SITES:
        s_bal = simulated_speedup(balanced, patterns=sites)
        s_reroot = simulated_speedup(rerooted, patterns=sites)
        bal_speedups.append(s_bal)
        reroot_speedups.append(s_reroot)
        rows.append(
            {
                "site patterns": sites,
                "threads per op": sites * 4,
                "balanced speedup": f"{s_bal:.2f}x",
                "rerooted pectinate speedup": f"{s_reroot:.2f}x",
            }
        )
    text = format_table(
        rows,
        title="Supplementary: concurrency speedup vs pattern count (64 OTUs)",
    )
    text += "\n```\n" + ascii_plot(
        [
            Series(list(SITES), bal_speedups, "B", "balanced"),
            Series(list(SITES), reroot_speedups, "P", "pectinate rerooted"),
        ],
        xlabel="site patterns (log scale)",
        ylabel="concurrent/serial speedup",
        title="Device saturation vs problem size",
        logx=True,
    ) + "\n```\n"
    emit(results_dir, "sites_saturation.md", text)

    # The paper's rationale, as assertions:
    # 1. speedups decay monotonically with the pattern count;
    assert all(b >= a - 1e-9 for a, b in zip(bal_speedups[::-1], bal_speedups[-2::-1]))
    assert all(b >= a - 1e-9 for a, b in zip(reroot_speedups[::-1], reroot_speedups[-2::-1]))
    # 2. at 512-ish patterns there is still substantial headroom;
    assert simulated_speedup(balanced, patterns=512) > 3.0
    # 3. at huge pattern counts one node saturates the device: gains die.
    assert bal_speedups[-1] < 1.5
    assert reroot_speedups[-1] < 1.2

    benchmark(simulated_speedup, balanced, patterns=512)
