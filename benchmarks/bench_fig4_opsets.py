"""Figure 4 — kernel launches before vs after optimal rerooting.

Paper setup: 100 randomly generated 256-OTU trees; for each, the number of
required operation sets (GPU kernel launches) with the arbitrary original
rooting and with optimal rerooting.

Shape claims checked:

* rerooting never increases the launch count,
* the launch count is reduced by up to ~half for the least balanced trees,
* typically at least one tree in a large sample is already optimal
  (paper: a 26-set tree gained nothing).
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.bench import Series, ascii_plot, format_table, summarize_interval
from repro.core import count_operation_sets, optimal_reroot_fast
from repro.trees import random_attachment_tree


N_TREES = 100
N_TAXA = 256


def collect(n_trees: int = N_TREES, n_taxa: int = N_TAXA):
    pairs = []
    for seed in range(1, n_trees + 1):
        tree = random_attachment_tree(n_taxa, seed)
        before = count_operation_sets(tree)
        result = optimal_reroot_fast(tree)
        pairs.append((seed, before, result.operation_sets))
    return pairs


def test_fig4_launch_reduction(benchmark, results_dir, full_scale):
    n_trees = N_TREES if full_scale else 40
    pairs = collect(n_trees=n_trees)
    before = np.array([b for _, b, _ in pairs])
    after = np.array([a for _, _, a in pairs])

    # Shape claims.
    assert np.all(after <= before)
    assert np.min(after / before) < 0.65  # strong reductions exist
    assert np.any(after == before) or np.min(before) > np.min(after)

    ratio = after / before
    rows = [
        {"statistic": "trees", "value": len(pairs)},
        {"statistic": "taxa per tree", "value": N_TAXA},
        {"statistic": "launches before (range)", "value": summarize_interval(before.tolist())},
        {"statistic": "launches after (range)", "value": summarize_interval(after.tolist())},
        {"statistic": "mean reduction factor", "value": f"{float(np.mean(before / after)):.2f}"},
        {"statistic": "max reduction factor", "value": f"{float(np.max(before / after)):.2f}"},
        {"statistic": "trees already optimal", "value": int(np.sum(after == before))},
    ]
    text = format_table(
        rows, title="Figure 4: kernel launches for random 256-OTU trees"
    )
    scatter = [
        {"seed": s, "launches_original": b, "launches_rerooted": a}
        for s, b, a in pairs[:20]
    ]
    text += "\n" + format_table(scatter, title="First 20 trees (scatter data)")
    # The paper's Figure 4 scatter: rerooted vs original launches, with
    # the no-change diagonal drawn as dots.
    diag = list(range(int(before.min()), int(before.max()) + 1, 2))
    text += "\n```\n" + ascii_plot(
        [
            Series(diag, diag, ".", "no change"),
            Series(before.tolist(), after.tolist(), "o", "tree"),
        ],
        xlabel="launches with original rooting",
        ylabel="launches after optimal rerooting",
        title="Figure 4 (reproduced)",
    ) + "\n```\n"
    emit(results_dir, "fig4_opsets.md", text)

    # Kernel under measurement: one tree's full reroot-and-count pipeline.
    tree = random_attachment_tree(N_TAXA, 1)

    def reroot_and_count():
        return optimal_reroot_fast(tree).operation_sets

    result = benchmark(reroot_and_count)
    assert result <= count_operation_sets(tree)
