"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*.py`` file regenerates one table or figure of the paper and
measures the computational kernel behind it with pytest-benchmark. Result
tables are written to ``bench_results/`` (markdown) and echoed to stdout
so ``pytest benchmarks/ --benchmark-only -s`` shows them inline.

Scale: by default the sweeps run at a reduced size so the whole suite
finishes in well under a minute. Set ``REPRO_FULL=1`` to reproduce the
paper's full sample sizes (1,000 random trees, 4,096-OTU trees).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"

#: Full-scale reproduction toggle (paper sample sizes).
FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return FULL


def emit(results_dir: Path, name: str, text: str) -> None:
    """Write a result artefact and echo it."""
    (results_dir / name).write_text(text)
    print()
    print(text)
