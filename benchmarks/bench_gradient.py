"""One-sweep all-branch gradients vs n-fold per-edge rerooting.

The pre-order upper-partials engine computes every branch's
``(logL, d/dt, d²/dt²)`` from one post-order plus one pre-order sweep —
``3n − 5`` partial updates — where the per-edge path reroots above each
of the ``2n − 3`` canonical edges and pays a full ``n − 1``-operation
traversal every time. This benchmark measures both paths on the same
trees (bit-identical derivatives at float64), records the modelled GP100
economics, and times gradient-based ML branch-length fitting against the
per-branch Newton baseline.

Acceptance targets: the one-sweep path evaluates ``3n − 5`` operations
against the per-edge ``(2n − 3)(n − 1)``, its wall-clock speedup grows
with the taxon count, and gradient Newton reaches at least the
per-branch optimum's log-likelihood.

Run directly for the CI perf-smoke variant::

    PYTHONPATH=src python benchmarks/bench_gradient.py --quick \
        --metrics metrics.prom
"""

from __future__ import annotations

import argparse
import time

import numpy as np
import pytest
from conftest import emit

from repro.bench import format_table
from repro.core import make_gradient_plan
from repro.data import compress, simulate_alignment
from repro.gpu import GP100, SimulatedDevice, WorkloadDims
from repro.inference import (
    DerivativeSession,
    TreeLikelihood,
    all_branch_derivatives,
    canonical_edges,
    edge_log_likelihood_derivatives,
    gradient_optimize_branch_lengths,
    newton_optimize_branch_lengths,
)
from repro.models import HKY85, discrete_gamma
from repro.obs import recording
from repro.trees import yule_tree

MODEL = HKY85(2.0, np.array([0.3, 0.2, 0.2, 0.3]))


def _case(n_taxa: int, n_sites: int, seed: int):
    """A simulated (tree, patterns) pair for one sweep size."""
    tree = yule_tree(n_taxa, np.random.default_rng(seed))
    patterns = compress(simulate_alignment(tree, MODEL, n_sites, seed=seed))
    return tree, patterns


def _measure_pair(tree, patterns, rates):
    """Wall-clock both gradient paths on one tree; verify bit-parity.

    Returns ``(sweep_seconds, per_edge_seconds, n_edges)``; raises if
    any edge's triple differs between the two paths (both are float64
    on the reference backend, so equality is exact).
    """
    start = time.perf_counter()
    grad = all_branch_derivatives(tree, MODEL, patterns, rates=rates)
    sweep_seconds = time.perf_counter() - start

    session = DerivativeSession(MODEL, patterns, rates=rates)
    start = time.perf_counter()
    per_edge = [
        edge_log_likelihood_derivatives(
            tree, MODEL, patterns, edge, rates=rates, session=session
        )
        for edge in canonical_edges(tree)
    ]
    per_edge_seconds = time.perf_counter() - start

    for got, want in zip(grad.derivatives, per_edge):
        assert (got.log_likelihood, got.first, got.second) == (
            want.log_likelihood,
            want.first,
            want.second,
        ), "one-sweep gradient diverged from the per-edge oracle"
    return sweep_seconds, per_edge_seconds, len(per_edge)


def _sweep_rows(taxa_counts, n_sites, rates, device, dims):
    """Measured + modelled comparison rows, one per taxon count."""
    rows = []
    wall_speedups = []
    modelled_speedups = []
    for n in taxa_counts:
        tree, patterns = _case(n, n_sites, seed=100 + n)
        sweep_s, edge_s, n_edges = _measure_pair(tree, patterns, rates)
        gplan = make_gradient_plan(tree)
        timing = device.time_gradient(tree, dims, plan=gplan)
        wall_speedups.append(edge_s / sweep_s)
        modelled_speedups.append(timing.speedup)
        rows.append(
            {
                "taxa": n,
                "edges": n_edges,
                "sweep ops": gplan.n_operations,
                "per-edge ops": timing.per_edge.n_operations,
                "sweep wall (ms)": f"{sweep_s * 1e3:.1f}",
                "per-edge wall (ms)": f"{edge_s * 1e3:.1f}",
                "wall speedup": f"{edge_s / sweep_s:.1f}x",
                "modelled speedup": f"{timing.speedup:.1f}x",
            }
        )
        assert gplan.n_operations == 3 * n - 5
        assert timing.per_edge.n_operations == (2 * n - 3) * (n - 1)
    return rows, wall_speedups, modelled_speedups


def _ml_rows(n_taxa, n_sites, rates):
    """Gradient Newton vs per-branch Newton on a perturbed tree."""
    tree, patterns = _case(n_taxa, n_sites, seed=5)
    # Mild multiplicative noise keeps every optimiser in the basin of
    # the simulation optimum; a violent random restart would let the
    # coordinate-wise and joint-step paths land in different local
    # optima, which is a statement about multimodality, not speed.
    rng = np.random.default_rng(17)
    for edge in tree.edges():
        edge.length = float(edge.length * rng.lognormal(0.0, 0.4) + 1e-4)
    rows = []
    results = {}
    for label, fit in [
        (
            "per-branch Newton",
            lambda ev: newton_optimize_branch_lengths(ev, max_sweeps=3),
        ),
        (
            "gradient Newton (one sweep/iter)",
            lambda ev: gradient_optimize_branch_lengths(ev, method="newton"),
        ),
        (
            "gradient L-BFGS-B",
            lambda ev: gradient_optimize_branch_lengths(ev, method="lbfgs"),
        ),
    ]:
        evaluator = TreeLikelihood(
            tree.copy(), MODEL, patterns, rates=rates
        )
        start = time.perf_counter()
        result = fit(evaluator)
        wall = time.perf_counter() - start
        results[label] = result
        rows.append(
            {
                "optimizer": label,
                "final logL": f"{result.log_likelihood:.3f}",
                "improvement": f"{result.improvement:+.3f}",
                "wall (s)": f"{wall:.3f}",
            }
        )
    return rows, results


def test_gradient_speedup(benchmark, results_dir, full_scale):
    taxa_counts = (64, 128, 256) if full_scale else (16, 32, 64)
    n_sites = 256 if full_scale else 128
    rates = discrete_gamma(0.5, 4)
    device = SimulatedDevice(GP100)
    dims = WorkloadDims(patterns=n_sites, states=4, categories=4)

    rows, wall_speedups, modelled_speedups = _sweep_rows(
        taxa_counts, n_sites, rates, device, dims
    )
    ml_rows, ml_results = _ml_rows(taxa_counts[0], n_sites, rates)

    text = format_table(
        rows,
        title=(
            f"One-sweep all-branch gradient vs per-edge rerooting "
            f"({n_sites} sites, 4 rate categories, float64, exact parity)"
        ),
    )
    text += "\n" + format_table(
        ml_rows,
        title=(
            f"ML branch-length fitting, {taxa_counts[0]} taxa "
            f"(same perturbed start)"
        ),
    )
    emit(results_dir, "gradient.md", text)

    # The gap must grow with n: linear work against quadratic work.
    assert modelled_speedups == sorted(modelled_speedups)
    assert wall_speedups[-1] > wall_speedups[0]
    assert wall_speedups[-1] > 2.0
    # Gradient Newton must reach the per-branch optimum (same basin).
    assert (
        ml_results["gradient Newton (one sweep/iter)"].log_likelihood
        >= ml_results["per-branch Newton"].log_likelihood - 0.05
    )

    # Kernel under measurement: one full gradient sweep.
    tree, patterns = _case(taxa_counts[0], n_sites, seed=100 + taxa_counts[0])
    result = benchmark.pedantic(
        lambda: all_branch_derivatives(tree, MODEL, patterns, rates=rates),
        rounds=3,
        iterations=1,
    )
    assert len(result.edges) == 2 * taxa_counts[0] - 3


def main(argv=None) -> int:
    """CI perf-smoke entry point (no pytest-benchmark needed)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="16-64 taxa, 128 sites (CI smoke)",
    )
    parser.add_argument(
        "--metrics",
        type=str,
        default=None,
        help="write a Prometheus metrics dump of the gradient runs here",
    )
    args = parser.parse_args(argv)

    taxa_counts = (16, 32, 64) if args.quick else (64, 128, 256)
    n_sites = 128 if args.quick else 256
    rates = discrete_gamma(0.5, 4)
    device = SimulatedDevice(GP100)
    dims = WorkloadDims(patterns=n_sites, states=4, categories=4)

    with recording() as rec:
        rows, wall_speedups, modelled_speedups = _sweep_rows(
            taxa_counts, n_sites, rates, device, dims
        )
    if args.metrics:
        rec.metrics.write_prometheus(args.metrics)

    for row in rows:
        print(
            f"{row['taxa']:4d} taxa: sweep {row['sweep ops']} ops "
            f"{row['sweep wall (ms)']} ms | per-edge {row['per-edge ops']} "
            f"ops {row['per-edge wall (ms)']} ms | wall "
            f"{row['wall speedup']}, modelled {row['modelled speedup']}"
        )
    assert modelled_speedups == sorted(modelled_speedups), (
        "modelled one-sweep speedup must grow with the taxon count"
    )
    assert wall_speedups[-1] > wall_speedups[0], (
        "measured one-sweep speedup must grow with the taxon count"
    )
    print(
        f"speedup growth: wall {wall_speedups[0]:.1f}x -> "
        f"{wall_speedups[-1]:.1f}x, modelled {modelled_speedups[0]:.1f}x "
        f"-> {modelled_speedups[-1]:.1f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
