"""Backend matrix: one acceptance run per registered kernel backend.

The pluggable-backend layer is only worth its indirection if (a) every
registered backend honours its parity class on the acceptance
configuration, and (b) at least one non-reference backend is measurably
faster. This benchmark runs the 256-taxon / 1024-pattern configuration
through every registered backend, asserts the parity gate, asserts the
blocked backend's >= 1.2x speedup over the reference, and calibrates a
:class:`~repro.gpu.device.DeviceSpec` from each backend's measured
launch timings so the GPU simulator can price schedules off real
numbers (``repro.gpu.calibrate.fit_device_spec``).

Results land in ``bench_results/backend_matrix.md``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import emit

from repro.beagle import acquire, available_resources, parity_report
from repro.bench import format_table
from repro.bench.harness import build_tree
from repro.core import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.gpu import WorkloadDims, fit_device_spec, launch_time
from repro.models import random_gtr

TAXA = 256
SITES = 1024  # the acceptance configuration
SEED = 1


def acceptance_case():
    # Balanced topology: the widest operation sets (128 ops at the first
    # level), i.e. the regime where batched launches — and therefore
    # cache blocking along the batch axis — actually matter. Narrow-set
    # topologies execute near-identically on every CPU backend.
    rng = np.random.default_rng(SEED)
    tree = build_tree("balanced", TAXA, SEED)
    model = random_gtr(rng)
    patterns = random_patterns(tree.tip_names(), SITES, rng=rng)
    return tree, model, patterns


def measure_interleaved(cases, plan, rounds=9):
    """Best-of timing per backend, alternating backends each round so
    thermal/scheduler drift hits every backend equally."""
    best = {name: float("inf") for name in cases}
    for _ in range(rounds):
        for name, instance in cases.items():
            start = time.perf_counter()
            execute_plan(instance, plan, update_matrices=False)
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def test_backend_matrix(benchmark, results_dir):
    tree, model, patterns = acceptance_case()
    plan = make_plan(tree, "concurrent")
    names = available_resources()
    assert names[0] == "reference" and "blocked" in names

    loglik, cases = {}, {}
    for name in names:
        instance = cases[name] = create_instance(
            tree, model, patterns, backend=name
        )
        loglik[name] = execute_plan(instance, plan)  # warm-up; validates
    timings = measure_interleaved(cases, plan)

    rows = []
    reports = {}
    for name in names:
        backend = acquire(name)
        report = reports[name] = parity_report(name)
        rows.append(
            {
                "backend": name,
                "parity claim": backend.info.parity,
                "parity gate": "OK" if report.ok else "VIOLATED",
                "max |dlogL|": f"{report.max_delta:.1e}",
                "ms/eval": f"{timings[name] * 1e3:.2f}",
                "speedup": f"{timings['reference'] / timings[name]:.2f}x",
            }
        )
        assert report.ok, report.format()
        # Same-dtype NumPy variants must also match on the acceptance
        # config itself, not just the parity battery's smaller cases.
        if backend.info.parity == "bit-identical":
            assert loglik[name] == loglik["reference"]

    speedup = timings["reference"] / timings["blocked"]
    assert speedup >= 1.2, f"blocked speedup {speedup:.2f}x below the 1.2x gate"

    # Calibrate a DeviceSpec per backend from measured per-set timings:
    # the launch-cost line t = a + b*k fitted over single-launch probes.
    dims = WorkloadDims(SITES, model.n_states, 1)
    calib_rows = []
    for name in names:
        instance = create_instance(tree, model, patterns, backend=name)
        execute_plan(instance, plan)  # warm buffers and matrices
        samples = []
        for op_set in plan.operation_sets:
            k = len(op_set)
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                instance.update_partials_set(op_set)
                best = min(best, time.perf_counter() - start)
            samples.append((k, best))
        spec = fit_device_spec(f"measured:{name}", dims, samples)
        widest = max(k for k, _ in samples)
        modelled = launch_time(spec, dims, widest).seconds
        measured = min(t for k, t in samples if k == widest)
        calib_rows.append(
            {
                "backend": name,
                "launch overhead (us)": f"{spec.launch_overhead_s * 1e6:.1f}",
                "per-op slope (us)": f"{spec.wave_time_s * 1e6:.2f}",
                f"model@k={widest} (us)": f"{modelled * 1e6:.1f}",
                f"measured@k={widest} (us)": f"{measured * 1e6:.1f}",
            }
        )
        # The calibrated spec must price the measured points sanely.
        assert modelled == pytest.approx(measured, rel=0.5)

    text = format_table(
        rows,
        title=f"Backend matrix: balanced {TAXA}-OTU tree, {SITES} patterns",
    )
    text += "\n" + format_table(
        calib_rows, title="Calibrated DeviceSpec per backend (t = a + b*k fit)"
    )
    emit(results_dir, "backend_matrix.md", text)

    instance = create_instance(tree, model, patterns, backend="blocked")
    execute_plan(instance, plan)
    benchmark(execute_plan, instance, plan, update_matrices=False)
