"""What concurrency checking costs: static proofs and the sanitizer.

Static verification is advertised as cheap enough to run on every plan
(``make_plan(verify=True)``, CI lint gates); the shadow-state sanitizer
is advertised as *free when off* and affordable when on. Both claims
are priced here.

Measured claims:

* statically verifying a plan — full dataflow walk plus the intra-set
  WAW/WAR/RAW race proofs plus a 4-stream schedule check — costs a
  bounded, small multiple of one engine evaluation (documented in the
  emitted table; sanity-gated well below 50 ms/plan),
* sanitizer **off** adds ≈ 0% to a worker's evaluation path: the only
  default-path cost is one ``detector is None`` test, and nothing is
  wrapped (gated < 5%),
* sanitizer **on** stays under **2×** a bare evaluation while recording
  every partials/matrix/scale access of the run.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.analysis import verify_plan, verify_races
from repro.analysis.sanitizer import RaceDetector
from repro.bench import format_table
from repro.core import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.exec.supervisor import PoolWorker
from repro.models import JC69
from repro.trees import balanced_tree, pectinate_tree

N_TIPS = 64
SITES = 256
N_EVALS = 8
REPEATS = 5
SANITIZER_ON_BOUND = 2.0  # headline guarantee: sanitized eval < 2x bare
SANITIZER_OFF_BOUND = 0.05  # off is a single None-check: ~0%
STATIC_SANITY_BOUND_S = 0.05  # 50 ms/plan — far above observed cost


def setup_case():
    tree = balanced_tree(N_TIPS, branch_length=0.1)
    patterns = random_patterns(sorted(tree.tip_names()), SITES, seed=1)
    model = JC69()
    plan = make_plan(tree, "concurrent")

    def make_case():
        return create_instance(tree, model, patterns), plan

    reference = execute_plan(*make_case())  # warm-up; validates plan
    return make_case, plan, reference


def best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_static_verification_cost_per_plan(results_dir):
    make_case, plan, _ = setup_case()
    plans = {
        f"balanced-{N_TIPS} concurrent": plan,
        f"balanced-{N_TIPS} level (scaled)": make_plan(
            balanced_tree(N_TIPS, branch_length=0.1), "level", scaling=True
        ),
        f"pectinate-{N_TIPS} concurrent": make_plan(
            pectinate_tree(N_TIPS, branch_length=0.1), "concurrent"
        ),
    }

    def one_eval():
        execute_plan(*make_case())

    t_eval = best_of(one_eval)

    rows = []
    for label, p in plans.items():
        def check(p=p):
            report = verify_plan(p)
            report.extend(verify_races(p, n_streams=4))
            assert report.clean

        t_static = best_of(check)
        rows.append(
            {
                "plan": label,
                "verify ms": t_static * 1e3,
                "vs one evaluation": f"{t_static / t_eval:.2f}x",
            }
        )
        assert t_static < STATIC_SANITY_BOUND_S

    emit(
        results_dir,
        "analysis_overhead_static.md",
        format_table(
            rows,
            title=(
                f"Static verification (dataflow + race proofs + 4-stream "
                f"check) vs one evaluation ({SITES} patterns, "
                f"{t_eval * 1e3:.2f} ms)"
            ),
        ),
    )


def test_sanitizer_overhead_bounds(benchmark, results_dir):
    make_case, _, reference = setup_case()

    def run_worker(detector):
        worker = PoolWorker(0, policy=None, detector=detector)
        values = [
            worker.execute_stack(*make_case()) for _ in range(N_EVALS)
        ]
        assert values == [reference] * N_EVALS

    def run_bare():
        values = [execute_plan(*make_case()) for _ in range(N_EVALS)]
        assert values == [reference] * N_EVALS

    t_bare = best_of(run_bare)
    t_off = best_of(lambda: run_worker(None))
    # One detector across the batch, epoch-advanced per evaluation, as
    # the pool does per drain: accesses accumulate but never pair
    # (single thread), which is the steady-state recording cost.
    detector = RaceDetector()

    def run_on():
        worker = PoolWorker(0, policy=None, detector=detector)
        for _ in range(N_EVALS):
            detector.advance_epoch()
            assert worker.execute_stack(*make_case()) == reference

    t_on = best_of(run_on)
    assert detector.clean
    assert detector.accesses_recorded > 0

    overhead_off = t_off / t_bare - 1.0
    overhead_on = t_on / t_bare - 1.0
    rows = [
        {
            "path": "bare engine",
            "ms/batch": t_bare * 1e3,
            "overhead": "—",
        },
        {
            "path": "worker stack, sanitizer off",
            "ms/batch": t_off * 1e3,
            "overhead": f"{overhead_off * 100:+.2f}%",
        },
        {
            "path": "worker stack, sanitizer on",
            "ms/batch": t_on * 1e3,
            "overhead": f"{overhead_on * 100:+.2f}%",
        },
    ]
    emit(
        results_dir,
        "analysis_overhead.md",
        format_table(
            rows,
            title=(
                f"Sanitizer cost: {N_EVALS} evaluations, balanced "
                f"{N_TIPS}-OTU tree, {SITES} patterns (bounds: off "
                f"< {SANITIZER_OFF_BOUND:.0%}, on < "
                f"{SANITIZER_ON_BOUND:.0f}x)"
            ),
        ),
    )
    assert overhead_off < SANITIZER_OFF_BOUND
    assert t_on / t_bare < SANITIZER_ON_BOUND

    benchmark(lambda: run_worker(None))
