"""Measured CPU analogue of the paper's GPU result.

The paper's speedups come from replacing many kernel launches with few
multi-operation launches. On this library's NumPy engine the per-call
Python/dispatch overhead plays the role of launch overhead, so the same
economics hold *for real* where sets are large enough to amortise the
batched path's fixed cost. These benchmarks measure actual wall-clock,
with real likelihood computation and matching results.

Measured claims:

* batched evaluation of a balanced tree beats serial evaluation,
* rerooting a random tree yields a measurable real CPU speedup,
* rerooting a pectinate tree at least breaks even on CPU (its rerooted
  sets hold only 2 operations — below the batched implementation-class
  threshold — so the gain appears on launch-overhead-dominated devices
  like the GPU model, not on the CPU engine; see EXPERIMENTS.md),
* serial and batched modes compute identical log-likelihoods.
"""

from __future__ import annotations

import time

import pytest
from conftest import emit

from repro.bench import format_table
from repro.core import create_instance, execute_plan, make_plan, optimal_reroot_fast
from repro.data import random_patterns
from repro.models import JC69
from repro.trees import balanced_tree, pectinate_tree, random_attachment_tree

SITES = 64  # small pattern count: the under-saturated regime the paper targets
MODEL = JC69()


def setup_case(tree, mode, patterns=None):
    if patterns is None:
        # Sorted taxon order: identical data regardless of the rooting's
        # left-to-right tip order.
        patterns = random_patterns(sorted(tree.tip_names()), SITES, seed=1)
    instance = create_instance(tree, MODEL, patterns)
    plan = make_plan(tree, mode)
    execute_plan(instance, plan)  # warm-up; validates plan
    return instance, plan


def measure(instance, plan, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        execute_plan(instance, plan, update_matrices=False)
        best = min(best, time.perf_counter() - start)
    return best


def test_balanced_batched_vs_serial(benchmark, results_dir):
    tree = balanced_tree(256, branch_length=0.1)
    inst_serial, plan_serial = setup_case(tree, "serial")
    inst_batched, plan_batched = setup_case(tree, "concurrent")

    ll_serial = execute_plan(inst_serial, plan_serial)
    ll_batched = execute_plan(inst_batched, plan_batched)
    assert ll_serial == pytest.approx(ll_batched, abs=1e-8)

    t_serial = measure(inst_serial, plan_serial)
    t_batched = measure(inst_batched, plan_batched)
    speedup = t_serial / t_batched
    rows = [
        {"mode": "serial", "launches": plan_serial.n_launches, "ms": t_serial * 1e3},
        {"mode": "batched", "launches": plan_batched.n_launches, "ms": t_batched * 1e3},
        {"mode": "speedup", "launches": "", "ms": f"{speedup:.2f}x"},
    ]
    emit(
        results_dir,
        "kernel_batching_balanced.md",
        format_table(rows, title="Measured CPU: balanced 256-OTU tree, 64 patterns"),
    )
    assert speedup > 1.25  # real measured win

    benchmark(execute_plan, inst_batched, plan_batched, update_matrices=False)


def test_random_tree_rerooting_measured(benchmark, results_dir):
    """Rerooted random trees form larger independent sets, so the CPU
    engine shows a genuine measured rerooting win."""
    tree = random_attachment_tree(256, 1, branch_length=0.1)
    rerooted = optimal_reroot_fast(tree).tree

    inst_serial, plan_serial = setup_case(tree, "serial")
    inst_orig, plan_orig = setup_case(tree, "concurrent")
    inst_reroot, plan_reroot = setup_case(rerooted, "concurrent")

    ll_serial = execute_plan(inst_serial, plan_serial)
    ll_reroot = execute_plan(inst_reroot, plan_reroot)
    assert ll_serial == pytest.approx(ll_reroot, abs=1e-6)

    t_serial = measure(inst_serial, plan_serial)
    t_orig = measure(inst_orig, plan_orig)
    t_reroot = measure(inst_reroot, plan_reroot)
    rows = [
        {"configuration": "serial", "launches": plan_serial.n_launches, "ms": t_serial * 1e3},
        {"configuration": "concurrent", "launches": plan_orig.n_launches, "ms": t_orig * 1e3},
        {"configuration": "concurrent rerooted", "launches": plan_reroot.n_launches, "ms": t_reroot * 1e3},
        {"configuration": "speedup vs serial", "launches": "", "ms": f"{t_serial / t_reroot:.2f}x"},
    ]
    emit(
        results_dir,
        "kernel_batching_random.md",
        format_table(rows, title="Measured CPU: rerooting a random 256-OTU tree"),
    )
    assert plan_reroot.n_launches < plan_orig.n_launches < plan_serial.n_launches
    assert t_reroot < t_serial  # concurrency + rerooting beat serial for real
    assert t_reroot <= t_orig * 1.05  # rerooting never hurts

    benchmark(execute_plan, inst_reroot, plan_reroot, update_matrices=False)


def test_pectinate_rerooting_measured(benchmark, results_dir):
    tree = pectinate_tree(256, branch_length=0.1)
    rerooted = optimal_reroot_fast(tree).tree

    inst_orig, plan_orig = setup_case(tree, "concurrent")
    inst_reroot, plan_reroot = setup_case(rerooted, "concurrent")

    ll_orig = execute_plan(inst_orig, plan_orig)
    ll_reroot = execute_plan(inst_reroot, plan_reroot)
    assert ll_orig == pytest.approx(ll_reroot, abs=1e-6)

    t_orig = measure(inst_orig, plan_orig)
    t_reroot = measure(inst_reroot, plan_reroot)
    speedup = t_orig / t_reroot
    rows = [
        {"tree": "pectinate", "launches": plan_orig.n_launches, "ms": t_orig * 1e3},
        {"tree": "rerooted", "launches": plan_reroot.n_launches, "ms": t_reroot * 1e3},
        {"tree": "speedup", "launches": "", "ms": f"{speedup:.2f}x"},
    ]
    emit(
        results_dir,
        "kernel_batching_reroot.md",
        format_table(
            rows, title="Measured CPU: rerooting a pectinate 256-OTU tree"
        ),
    )
    # Launches halve; on the CPU engine (dispatch cost ≈ per-op cost for
    # 2-op sets) the wall-clock at least breaks even. The full GPU-style
    # win for this case is shown by the device model (Table III bench).
    assert plan_reroot.n_launches == 128
    assert speedup > 0.85

    benchmark(execute_plan, inst_reroot, plan_reroot, update_matrices=False)
