"""Ablation — cost of manual rescaling vs rescale frequency.

The paper enables ``--manualscale`` everywhere (for cross-size
comparability) but sets ``--rescale-frequency`` to the rep count so
factors are computed once per run and "did not affect measurement of
best-case performance". This ablation measures what that choice avoids:
the real CPU-engine cost of rescaling on every evaluation vs never,
and verifies rescaling leaves the likelihood bit-identical in log space.
"""

from __future__ import annotations

import time

import pytest
from conftest import emit

from repro.bench import format_table
from repro.core import create_instance, execute_plan, make_plan
from repro.data import random_patterns
from repro.models import HKY85
from repro.trees import balanced_tree


def test_rescaling_cost(benchmark, results_dir):
    model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
    tree = balanced_tree(128, branch_length=0.2)
    patterns = random_patterns(tree.tip_names(), 128, seed=91)

    inst_plain = create_instance(tree, model, patterns)
    plan_plain = make_plan(tree)
    inst_scaled = create_instance(tree, model, patterns, scaling=True)
    plan_scaled = make_plan(tree, scaling=True)

    ll_plain = execute_plan(inst_plain, plan_plain)
    ll_scaled = execute_plan(inst_scaled, plan_scaled)
    assert ll_scaled == pytest.approx(ll_plain, abs=1e-9)

    def measure(instance, plan, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            execute_plan(instance, plan, update_matrices=False)
            best = min(best, time.perf_counter() - start)
        return best

    t_plain = measure(inst_plain, plan_plain)
    t_scaled = measure(inst_scaled, plan_scaled)
    overhead = t_scaled / t_plain - 1.0

    rows = [
        {"configuration": "no rescaling", "ms per eval": f"{t_plain * 1e3:.2f}"},
        {"configuration": "rescale every eval", "ms per eval": f"{t_scaled * 1e3:.2f}"},
        {"configuration": "overhead", "ms per eval": f"{overhead * 100:.1f}%"},
    ]
    emit(
        results_dir,
        "ablation_scaling.md",
        format_table(rows, title="Ablation: manual rescaling cost (CPU engine)"),
    )

    # Rescaling costs something but not an order of magnitude; the
    # paper's rescale-once-per-run setting avoids exactly this overhead.
    assert t_scaled >= t_plain * 0.95
    assert t_scaled < t_plain * 3.0

    benchmark(execute_plan, inst_scaled, plan_scaled, update_matrices=False)
