"""Sharded likelihood: throughput scaling and fault-free overhead.

The sharding layer buys fault isolation (retry, speculation, resume) and
data-parallel fan-out by splitting the site-pattern axis. Both come with
a price tag that must stay honest:

Measured claims:

* the sharding machinery itself — shard planning, pool dispatch, the
  deterministic reduction tree — costs **<5%** on the fault-free path
  (one full-width shard through an inline pool vs the direct
  single-instance evaluation, generous pattern count so per-shard
  fixed costs are amortised),
* splitting into k > 1 shards duplicates the per-shard fixed work
  (transition matrices, plan execution) — that cost is *reported*
  per shard count, not hidden in the bound,
* every sharded value, at every shard/worker count, is bit-identical
  to the single-instance reference under the same reduction,
* the device model's shard-scaling curve (one worker per shard) is
  monotone non-decreasing in patterns/second.

Results land in ``bench_results/shard_scaling.md`` and
``bench_results/shard_overhead.md``.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.bench import format_table
from repro.core import make_plan
from repro.data import random_patterns
from repro.exec import LikelihoodPool, ShardedLikelihood
from repro.exec.sharding import deterministic_sum, reference_terms
from repro.gpu import GP100, SimulatedDevice, WorkloadDims
from repro.models import JC69
from repro.trees import balanced_tree

N_TIPS = 32
SITES = 4096
REPEATS = 3
OVERHEAD_BOUND = 0.05  # headline guarantee: <5% sharding machinery cost


def setup_problem():
    tree = balanced_tree(N_TIPS, branch_length=0.1)
    patterns = random_patterns(sorted(tree.tip_names()), SITES, seed=1)
    model = JC69()
    return tree, model, patterns


def best_of(fn, repeats=REPEATS):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_sharding_machinery_overhead_under_five_percent(results_dir):
    tree, model, patterns = setup_problem()
    reference = deterministic_sum(reference_terms(tree, model, patterns))

    t_direct, _ = best_of(
        lambda: deterministic_sum(reference_terms(tree, model, patterns))
    )
    # One full-width shard through an inline pool with fail-fast
    # workers: the engine path is identical to the direct evaluation
    # (the armed retry/verify pipeline is priced separately by
    # bench_fault_overhead), so the difference is the sharding
    # machinery itself (planning, dispatch, reduction).
    one_shard = ShardedLikelihood(
        tree, model, patterns, n_shards=1,
        pool=LikelihoodPool(1, executor="inline", policy=None, deadline_s=None),
    )
    t_sharded, value = best_of(one_shard.log_likelihood)
    assert value == reference

    overhead = t_sharded / t_direct - 1.0
    rows = [
        {
            "path": "direct single instance",
            "ms/eval": f"{t_direct * 1e3:.2f}",
            "overhead": "—",
        },
        {
            "path": "1 shard via inline pool",
            "ms/eval": f"{t_sharded * 1e3:.2f}",
            "overhead": f"{overhead * 100:+.2f}%",
        },
    ]
    # Priced feature: k-way splits duplicate per-shard fixed work
    # (transition matrices, plan execution). Reported, not gated.
    for k in (2, 4, 8):
        engine = ShardedLikelihood(
            tree, model, patterns, n_shards=k,
            pool=LikelihoodPool(1, executor="inline", policy=None, deadline_s=None),
        )
        t_k, value_k = best_of(engine.log_likelihood)
        assert value_k == reference
        rows.append(
            {
                "path": f"{engine.n_shards} shards via inline pool",
                "ms/eval": f"{t_k * 1e3:.2f}",
                "overhead": f"{(t_k / t_direct - 1.0) * 100:+.2f}%",
            }
        )
    emit(
        results_dir,
        "shard_overhead.md",
        format_table(
            rows,
            title=(
                f"Sharding overhead, fault-free path: balanced "
                f"{N_TIPS}-OTU tree, {SITES} patterns"
            ),
        ),
    )
    assert overhead < OVERHEAD_BOUND


def test_throughput_vs_shard_and_worker_count(results_dir):
    tree, model, patterns = setup_problem()
    reference = deterministic_sum(reference_terms(tree, model, patterns))

    rows = []
    for n_shards, n_workers in [(1, 1), (2, 2), (4, 2), (4, 4), (8, 4)]:
        pool = LikelihoodPool(n_workers, executor="thread", deadline_s=None)
        engine = ShardedLikelihood(
            tree, model, patterns, n_shards=n_shards, pool=pool
        )
        t_eval, value = best_of(engine.log_likelihood)
        assert value == reference  # bit-identical at every fan-out
        assert engine.ledger.balances()
        rows.append(
            {
                "shards": engine.n_shards,
                "workers": n_workers,
                "ms/eval": f"{t_eval * 1e3:.2f}",
                "kpatterns/s": f"{SITES / t_eval / 1e3:.1f}",
            }
        )
    emit(
        results_dir,
        "shard_scaling.md",
        format_table(
            rows,
            title=(
                f"Sharded throughput (threaded pool): balanced "
                f"{N_TIPS}-OTU tree, {SITES} patterns, all values "
                f"bit-identical to the single-instance reference"
            ),
        ),
    )


def test_device_model_scaling_curve_is_monotone(results_dir):
    tree, _, _ = setup_problem()
    plan = make_plan(tree, "concurrent")
    dims = WorkloadDims(patterns=SITES, states=4)
    device = SimulatedDevice(GP100)
    curve = device.shard_scaling_curve(plan, dims, [1, 2, 4, 8, 16, 32])
    rows = [
        {
            "shards": n,
            "Mpatterns/s": f"{rate / 1e6:.1f}",
        }
        for n, rate in curve
    ]
    emit(
        results_dir,
        "shard_scaling_model.md",
        format_table(
            rows,
            title=(
                f"Device-model shard scaling ({GP100.name}, one worker "
                f"per shard): {SITES} patterns"
            ),
        ),
    )
    rates = [rate for _, rate in curve]
    assert all(b >= a * 0.999 for a, b in zip(rates, rates[1:]))
