"""Tables I & II — system specification and test-program parameters.

Table I lists the paper's benchmark system; our stand-in is the GP100
``DeviceSpec`` (plus the analytical-model calibration constants, which
have no counterpart on real hardware). Table II lists the
``synthetictest`` options; we verify our CLI exposes every one and emit
the two tables as artefacts.
"""

from __future__ import annotations

from conftest import emit

from repro.bench import format_table
from repro.bench.synthetictest import build_parser
from repro.gpu import GP100, WorkloadDims, launch_time


TABLE2_OPTIONS = [
    ("--rsrc", "selects the hardware resource"),
    ("--taxa", "sets the number of taxa or OTUs"),
    ("--sites", "sets the number of site patterns"),
    ("--reps", "sets the number of calculation repetitions"),
    ("--full-timing", "enables detailed timing output"),
    ("--manualscale", "enables application-managed rescaling"),
    ("--rescale-frequency", "sets rescaling-factor recomputation frequency"),
    ("--pectinate", "sets tree topology type to pectinate"),
    ("--randomtree", "sets tree topology type to arbitrary"),
    ("--reroot", "enables optimal rerooting of tree"),
    ("--seed", "sets the random seed"),
]


def test_table1_device_spec(benchmark, results_dir):
    rows = [
        {"field": "GPU", "value": GP100.name},
        {"field": "CUDA cores", "value": GP100.cuda_cores},
        {"field": "memory bandwidth (GB/s)", "value": GP100.memory_bandwidth_gbs},
        {"field": "threads/core (model)", "value": GP100.threads_per_core},
        {"field": "launch overhead (us, model)", "value": GP100.launch_overhead_s * 1e6},
        {"field": "wave time (us, model)", "value": GP100.wave_time_s * 1e6},
        {"field": "per-op overhead (us, model)", "value": GP100.per_op_overhead_s * 1e6},
    ]
    text = format_table(rows, title="Table I: simulated system specification")
    emit(results_dir, "table1_device.md", text)

    assert GP100.cuda_cores == 3584  # Table I
    assert GP100.memory_bandwidth_gbs == 720.0

    dims = WorkloadDims(512, 4)
    timing = benchmark(launch_time, GP100, dims, 16)
    assert timing.n_waves >= 1


def test_table2_cli_options(benchmark, results_dir):
    parser = build_parser()
    known = {
        option
        for action in parser._actions
        for option in action.option_strings
    }
    rows = []
    for option, description in TABLE2_OPTIONS:
        assert option in known, f"missing synthetictest option {option}"
        rows.append({"option": option, "description": description, "present": True})
    text = format_table(rows, title="Table II: synthetictest options coverage")
    emit(results_dir, "table2_cli.md", text)

    benchmark(build_parser)
