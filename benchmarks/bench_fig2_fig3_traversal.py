"""Figures 2 & 3 — traversal orders and operation sets on 8-OTU trees.

Paper claims reproduced exactly:

* Fig. 2: the balanced 8-OTU tree needs ``n − 1 = 7`` serial subtree
  calculations in post-order, but only ``ceil(log2 8) = 3`` concurrent
  operation sets in reverse level-order.
* Fig. 3: the pectinate 8-OTU tree needs 7 sets however traversed — until
  it is optimally rerooted, after which ``ceil(8/2) = 4`` sets suffice.

The benchmark measures the schedule-construction kernel itself
(reverse level-order + greedy set building).
"""

from __future__ import annotations

from conftest import emit

from repro.bench import format_table
from repro.core import (
    build_operation_sets,
    count_operation_sets,
    make_plan,
    optimal_reroot_exhaustive,
    reverse_levelorder_operations,
    set_index_by_node,
)
from repro.trees import balanced_tree, pectinate_tree, render_schedule


def collect_rows():
    balanced = balanced_tree(8, names=list("abcdefgh"))
    pectinate = pectinate_tree(8, names=list("abcdefgh"))
    rerooted = optimal_reroot_exhaustive(pectinate).tree
    rows = []
    for label, tree in [
        ("Fig2 balanced", balanced),
        ("Fig3 pectinate", pectinate),
        ("Fig3 pectinate rerooted", rerooted),
    ]:
        rows.append(
            {
                "case": label,
                "serial operations": tree.n_tips - 1,
                "operation sets": count_operation_sets(tree),
                "set sizes": "+".join(map(str, make_plan(tree).set_sizes)),
            }
        )
    return rows, balanced, pectinate, rerooted


def test_fig2_fig3_tables(benchmark, results_dir):
    rows, balanced, pectinate, rerooted = collect_rows()

    # Paper's exact numbers.
    assert rows[0]["operation sets"] == 3
    assert rows[1]["operation sets"] == 7
    assert rows[2]["operation sets"] == 4

    text = format_table(rows, title="Figures 2-3: operation sets for 8-OTU trees")
    text += "\nFig. 2 (balanced, sets annotated):\n"
    text += render_schedule(balanced, set_index_by_node(balanced)) + "\n"
    text += "\nFig. 3 upper (pectinate):\n"
    text += render_schedule(pectinate, set_index_by_node(pectinate)) + "\n"
    text += "\nFig. 3 lower (optimally rerooted):\n"
    text += render_schedule(rerooted, set_index_by_node(rerooted)) + "\n"
    emit(results_dir, "fig2_fig3_traversal.md", text)

    # Kernel under measurement: schedule construction for the rerooted tree.
    def build():
        ops = reverse_levelorder_operations(rerooted)
        return build_operation_sets(ops)

    sets = benchmark(build)
    assert len(sets) == 4
