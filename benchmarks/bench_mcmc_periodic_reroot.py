"""Extension — periodic rerooting during the search (paper §VIII, factor 3).

The paper conjectures that "further balanced rerootings, later in the
search process, might result in further performance gains, and this
remains an issue to be studied". This benchmark studies it: the same
pectinate-start MCMC chain is run with rerooting never / every 50 / every
10 iterations, and the total launch count and modelled device time are
compared. Because topology moves drift the working tree away from any
fixed rooting, periodic rerooting keeps the launch economics near
optimal at negligible host cost (the O(n) DP per rerooting).
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench import format_table
from repro.data import simulate_alignment
from repro.inference import TreeLikelihood, run_mcmc
from repro.models import HKY85
from repro.trees import pectinate_tree


def test_periodic_rerooting(benchmark, results_dir, full_scale):
    n_taxa = 48 if full_scale else 32
    iterations = 300 if full_scale else 120
    model = HKY85(2.0, [0.3, 0.2, 0.2, 0.3])
    tree = pectinate_tree(n_taxa, branch_length=0.15)
    aln = simulate_alignment(tree, model, 96, seed=111)

    def chain(reroot_every):
        ev = TreeLikelihood(tree, model, aln)
        return run_mcmc(
            ev, iterations, seed=112, reroot_every=reroot_every,
            nni_probability=0.5,
        )

    never = chain(0)
    sparse = chain(50)
    frequent = chain(10)

    rows = []
    for label, result in [
        ("never", never),
        ("every 50 iterations", sparse),
        ("every 10 iterations", frequent),
    ]:
        rows.append(
            {
                "rerooting": label,
                "rerootings applied": result.rerootings,
                "kernel launches": result.kernel_launches,
                "device seconds": f"{result.device_seconds:.4f}",
                "speedup vs never": f"{never.device_seconds / result.device_seconds:.2f}x",
            }
        )
    emit(
        results_dir,
        "mcmc_periodic_reroot.md",
        format_table(
            rows,
            title=f"Extension (§VIII): periodic rerooting during MCMC "
            f"({n_taxa} taxa, {iterations} iterations, pectinate start)",
        ),
    )

    # Both cadences rebalance at least once. (How *many* times is not
    # monotone in the cadence: a frequently-checked chain stays balanced
    # after its first rebalance, while a rarely-checked one drifts further
    # between checks and may need several.)
    assert sparse.rerootings >= 1
    assert frequent.rerootings >= 1
    assert frequent.kernel_launches < never.kernel_launches
    assert frequent.device_seconds < never.device_seconds
    # More frequent rerooting keeps the tree better balanced overall.
    assert frequent.device_seconds <= sparse.device_seconds * 1.05

    def short_chain():
        ev = TreeLikelihood(tree, model, aln)
        return run_mcmc(ev, 10, seed=113, reroot_every=5)

    result = benchmark.pedantic(short_chain, rounds=1, iterations=1)
    assert result.proposed == 10
