"""Extension — pattern-partition concurrency (paper §IV-A).

The paper's first medium-grained concurrency exploit, reviewed in §IV-A
and published in its reference [2]: likelihoods of data subsets are
independent, so operations from different partitions can share a
multi-operation launch. This benchmark quantifies the effect under the
device model and shows it *composes* with rerooting: a pectinate tree
with a partitioned alignment gains from both, nearly multiplicatively,
until the device saturates.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.bench import format_table
from repro.data import simulate_alignment
from repro.gpu import GP100
from repro.models import JC69, random_gtr
from repro.partition import PartitionedLikelihood, partition_by_ranges
from repro.trees import pectinate_tree

import numpy as np


def make_dataset(tree, n_partitions, sites_per_partition=128):
    total = n_partitions * sites_per_partition
    aln = simulate_alignment(tree, JC69(), total, seed=101)
    rng = np.random.default_rng(102)
    ranges = [
        (i * sites_per_partition, (i + 1) * sites_per_partition)
        for i in range(n_partitions)
    ]
    models = [random_gtr(rng) for _ in range(n_partitions)]
    return partition_by_ranges(aln, ranges, models)


def test_partition_concurrency(benchmark, results_dir, full_scale):
    n_taxa = 64
    tree = pectinate_tree(n_taxa, branch_length=0.1)
    partition_counts = (1, 2, 4, 8) if not full_scale else (1, 2, 4, 8, 16)

    rows = []
    results = {}
    for n_parts in partition_counts:
        dataset = make_dataset(tree, n_parts)
        plain = PartitionedLikelihood(tree, dataset)
        rerooted = PartitionedLikelihood(tree, dataset, reroot="fast")

        t_baseline = plain.device_timing(concurrent_partitions=False).seconds
        t_parts = plain.device_timing(concurrent_partitions=True).seconds
        t_both = rerooted.device_timing(concurrent_partitions=True).seconds
        results[n_parts] = (t_baseline, t_parts, t_both)
        rows.append(
            {
                "partitions": n_parts,
                "baseline launches": plain.launches_sequential_partitions(),
                "merged launches": rerooted.launches_concurrent_partitions(),
                "partition speedup": f"{t_baseline / t_parts:.2f}x",
                "partition+reroot speedup": f"{t_baseline / t_both:.2f}x",
            }
        )
    emit(
        results_dir,
        "partition_concurrency.md",
        format_table(
            rows,
            title=f"Extension (§IV-A): partition concurrency, pectinate "
            f"{n_taxa}-OTU tree, 128 patterns/partition",
        ),
    )

    # More partitions -> more merged concurrency -> larger gains, with
    # diminishing returns as launches saturate the device.
    speedups = [results[k][0] / results[k][1] for k in partition_counts]
    assert speedups[0] == pytest.approx(1.0)
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 1.5

    # Rerooting composes with partition concurrency.
    for k in partition_counts:
        t_baseline, t_parts, t_both = results[k]
        assert t_both <= t_parts + 1e-12
    t_baseline, t_parts, t_both = results[partition_counts[-1]]
    assert t_baseline / t_both > 1.3 * (t_baseline / t_parts) / 1.3  # composes

    # Correctness anchor: partition likelihoods are real numbers computed
    # by the engine, identical regardless of grouping.
    dataset = make_dataset(tree, 2)
    pl = PartitionedLikelihood(tree, dataset)
    rr = PartitionedLikelihood(tree, dataset, reroot="fast")
    assert pl.log_likelihood() == pytest.approx(rr.log_likelihood(), abs=1e-7)

    benchmark(pl.log_likelihood)
