"""Table III — proportion of theoretical speedup realised, 64 OTUs, 512 patterns.

Paper rows: balanced / pectinate / pectinate rerooted / random (100
trees) / random rerooted. Columns: theoretical expectation, measured
GP100 speedup, realised fraction.

Shape claims checked:

* no modelled speedup exceeds its theoretical bound,
* the balanced tree realises much less than half of its 10.5× bound
  (device saturation; paper: 0.38),
* the rerooted pectinate tree approaches but does not reach 2×,
* random intervals are ordered correctly and shift upward with rerooting.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.bench import format_table, run_case, summarize_interval, sweep_random_trees
from repro.core import speedup_balanced, speedup_pectinate_rerooted

N = 64
SITES = 512


def test_table3(benchmark, results_dir, full_scale):
    n_random = 100 if full_scale else 30

    balanced = run_case("balanced", N, SITES)
    pectinate = run_case("pectinate", N, SITES)
    pect_rerooted = run_case("pectinate", N, SITES, reroot=True)
    random_plain = sweep_random_trees(N, n_random, SITES)
    random_reroot = sweep_random_trees(N, n_random, SITES, reroot=True)

    def interval(cases, attr):
        return [getattr(c, attr) for c in cases]

    rows = [
        {
            "topology type": "balanced",
            "theoretical": f"{balanced.theoretical_speedup:.2f}",
            "GP100 model": f"{balanced.model_speedup:.2f}",
            "realized": f"{balanced.model_speedup / balanced.theoretical_speedup:.2f}",
        },
        {
            "topology type": "pectinate",
            "theoretical": "1.00",
            "GP100 model": f"{pectinate.model_speedup:.2f}",
            "realized": "na",
        },
        {
            "topology type": "pectinate rerooted",
            "theoretical": f"{pect_rerooted.theoretical_speedup:.2f}",
            "GP100 model": f"{pect_rerooted.model_speedup:.2f}",
            "realized": f"{pect_rerooted.model_speedup / pect_rerooted.theoretical_speedup:.2f}",
        },
        {
            "topology type": "random",
            "theoretical": summarize_interval(interval(random_plain, "theoretical_speedup")),
            "GP100 model": summarize_interval(interval(random_plain, "model_speedup")),
            "realized": summarize_interval(
                [c.model_speedup / c.theoretical_speedup for c in random_plain]
            ),
        },
        {
            "topology type": "random rerooted",
            "theoretical": summarize_interval(interval(random_reroot, "theoretical_speedup")),
            "GP100 model": summarize_interval(interval(random_reroot, "model_speedup")),
            "realized": summarize_interval(
                [c.model_speedup / c.theoretical_speedup for c in random_reroot]
            ),
        },
    ]
    text = format_table(
        rows,
        title=f"Table III: proportion of theoretical speedup realised "
        f"({N} OTUs, {SITES} patterns)",
    )
    emit(results_dir, "table3_speedup.md", text)

    # --- Shape assertions --------------------------------------------
    assert balanced.theoretical_speedup == speedup_balanced(N)
    assert pect_rerooted.theoretical_speedup == speedup_pectinate_rerooted(N)
    for case in [balanced, pectinate, pect_rerooted, *random_plain, *random_reroot]:
        assert case.model_speedup <= case.theoretical_speedup + 1e-9
    assert balanced.model_speedup / balanced.theoretical_speedup < 0.5
    assert 1.4 < pect_rerooted.model_speedup < 2.0
    assert pectinate.model_speedup == 1.0
    r_plain = np.array([c.model_speedup for c in random_plain])
    r_reroot = np.array([c.model_speedup for c in random_reroot])
    assert r_reroot.min() >= r_plain.min()
    assert r_reroot.mean() > r_plain.mean()

    # Kernel under measurement: one full Table-III case evaluation.
    result = benchmark(run_case, "pectinate", N, SITES, reroot=True)
    assert result.operation_sets == 32
