"""Resilient execution: fault injection, recovery policies, checkpoints.

The paper's speedups only matter if long runs finish. This subpackage
adds the dynamic-robustness layer around the likelihood engine:

* :mod:`repro.exec.errors` — the typed failure hierarchy
  (:class:`ExecutionError` → :class:`DeviceFault` /
  :class:`AllocationError` / :class:`NumericalError`).
* :mod:`repro.exec.faults` — deterministic, seed-driven
  :class:`FaultInjector` over the engine's launch surface, with five
  fault classes (kernel-launch failure, transient device error,
  allocation failure, NaN poisoning, silent underflow).
* :mod:`repro.exec.resilient` — :class:`ResilientInstance`, the
  retry/degrade/rescale facade, with :class:`RetryPolicy` and
  :class:`FaultStats`.
* :mod:`repro.exec.checkpoint` — :class:`MCMCCheckpoint`, bit-identical
  checkpoint/resume for :func:`repro.inference.mcmc.run_mcmc`.
"""

from .checkpoint import CheckpointError, MCMCCheckpoint
from .errors import (
    AllocationError,
    DeviceFault,
    ExecutionError,
    KernelLaunchError,
    NumericalError,
    TransientDeviceError,
)
from .faults import FAULT_CLASSES, FaultInjector, FaultSchedule, FaultSpec
from .resilient import FaultStats, ResilientInstance, RetryPolicy

__all__ = [
    "ExecutionError",
    "DeviceFault",
    "KernelLaunchError",
    "TransientDeviceError",
    "AllocationError",
    "NumericalError",
    "FAULT_CLASSES",
    "FaultSpec",
    "FaultSchedule",
    "FaultInjector",
    "RetryPolicy",
    "FaultStats",
    "ResilientInstance",
    "CheckpointError",
    "MCMCCheckpoint",
]
