"""Resilient execution: fault injection, recovery policies, checkpoints,
and the supervised likelihood pool.

The paper's speedups only matter if long runs finish. This subpackage
adds the dynamic-robustness layer around the likelihood engine:

* :mod:`repro.exec.errors` — the typed failure hierarchy
  (:class:`ExecutionError` → :class:`DeviceFault` /
  :class:`AllocationError` / :class:`NumericalError` /
  :class:`DeadlineExceeded` / :class:`PoolSaturatedError` /
  :class:`NoHealthyWorkersError`).
* :mod:`repro.exec.faults` — deterministic, seed-driven
  :class:`FaultInjector` over the engine's launch surface, with five
  fault classes (kernel-launch failure, transient device error,
  allocation failure, NaN poisoning, silent underflow), plus the
  silently-corrupting :class:`BiasInjector`.
* :mod:`repro.exec.resilient` — :class:`ResilientInstance`, the
  retry/degrade/rescale facade, with :class:`RetryPolicy` and
  :class:`FaultStats`.
* :mod:`repro.exec.health` — :class:`Deadline` budgets,
  :class:`CircuitBreaker` state machines, and the known-answer
  :class:`Sentinel` health probe.
* :mod:`repro.exec.supervisor` — :class:`PoolWorker` engine slots and
  the :class:`Supervisor` that probes and evicts them.
* :mod:`repro.exec.pool` — :class:`LikelihoodPool`, dispatching
  independent jobs (bootstrap replicates, partitions, candidate trees)
  across supervised workers with deadlines, failover, and a balanced
  fault ledger.
* :mod:`repro.exec.checkpoint` — :class:`MCMCCheckpoint`, bit-identical
  checkpoint/resume for :func:`repro.inference.mcmc.run_mcmc`.
"""

from .checkpoint import CheckpointError, MCMCCheckpoint, ShardCheckpoint
from .errors import (
    AllocationError,
    DeadlineExceeded,
    DeviceFault,
    ExecutionError,
    KernelLaunchError,
    NoHealthyWorkersError,
    NumericalError,
    PoolSaturatedError,
    TransientDeviceError,
)
from .faults import (
    FAULT_CLASSES,
    SHARD_FAULT_CLASSES,
    BiasInjector,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    ShardFaultSchedule,
    ShardFaultSpec,
)
from .health import CircuitBreaker, Deadline, DeadlineGuard, Sentinel
from .pool import JobContext, JobOutcome, LikelihoodPool, PoolStats
from .resilient import FaultStats, ResilientInstance, RetryPolicy
from .sharding import (
    MIN_SHARD_WIDTH,
    Shard,
    ShardAborted,
    ShardedLikelihood,
    ShardFailure,
    ShardLedger,
    deterministic_sum,
    plan_shards,
)
from .supervisor import PoolWorker, Supervisor

__all__ = [
    "ExecutionError",
    "DeviceFault",
    "KernelLaunchError",
    "TransientDeviceError",
    "AllocationError",
    "NumericalError",
    "DeadlineExceeded",
    "PoolSaturatedError",
    "NoHealthyWorkersError",
    "FAULT_CLASSES",
    "FaultSpec",
    "FaultSchedule",
    "FaultInjector",
    "BiasInjector",
    "RetryPolicy",
    "FaultStats",
    "ResilientInstance",
    "Deadline",
    "DeadlineGuard",
    "CircuitBreaker",
    "Sentinel",
    "PoolWorker",
    "Supervisor",
    "JobContext",
    "JobOutcome",
    "PoolStats",
    "LikelihoodPool",
    "CheckpointError",
    "MCMCCheckpoint",
    "ShardCheckpoint",
    "SHARD_FAULT_CLASSES",
    "ShardFaultSpec",
    "ShardFaultSchedule",
    "MIN_SHARD_WIDTH",
    "Shard",
    "ShardLedger",
    "ShardAborted",
    "ShardFailure",
    "ShardedLikelihood",
    "deterministic_sum",
    "plan_shards",
]
