"""Supervised multi-instance likelihood pool.

:class:`LikelihoodPool` owns N :class:`~repro.exec.supervisor.PoolWorker`
slots and dispatches *independent* likelihood jobs — bootstrap
replicates, partitions, candidate trees — through a bounded work queue.
Each worker wraps its jobs in the full resilient stack
(``ResilientInstance(DeadlineGuard(FaultInjector(BiasInjector(engine))))``),
carries a per-worker circuit breaker, and is health-checked against a
known-answer :class:`~repro.exec.health.Sentinel`.

Dispatch semantics
------------------
* A job's deadline starts at :meth:`LikelihoodPool.submit` — queue wait
  counts against the budget. A budget that expires while the job is
  still queued **sheds** the job; one that expires mid-execution
  **surfaces** the typed :class:`~repro.exec.errors.DeadlineExceeded`
  (the budget is spent; rerouting cannot help).
* A job that fails on a worker with a typed
  :class:`~repro.exec.errors.ExecutionError` is **rerouted** to a worker
  that has not yet failed it; when none remains, the error **surfaces**.
  A worker accumulating ``failure_threshold`` consecutive failures trips
  its breaker (open → cooldown → one half-open probe → closed or
  permanently evicted).
* Admission control: :meth:`submit` raises
  :class:`~repro.exec.errors.PoolSaturatedError` once ``max_pending``
  jobs are queued, rather than buffering without bound.
* After a drain, every worker holding completions not vouched for by a
  sentinel probe is audited; a failing probe evicts the worker and its
  completed jobs are **rescued** — re-executed on healthy workers with a
  fresh budget — so silently-corrupting workers cannot leak wrong
  results into the final answer. Workers already evicted mid-drain get
  no fresh probe; their unvouched completions are rescued
  unconditionally.

Every job submitted is accounted for in exactly one of ``completed``,
``shed`` or ``surfaced`` — no outcome is silently dropped — and job
*values* are bit-identical to serial fault-free evaluation regardless of
worker failure order, because recovery recomputes wholesale and rescue
re-runs land on clean workers.

Ledger identities (checked by :meth:`PoolStats.imbalances`)::

    offered  == completed + shed + surfaced
    failures == rerouted + surfaced_failures
    errors   == failures + probe_errors      (worker-stack errors)

The third identity assumes jobs evaluate through their
:class:`JobContext` (as every built-in wiring does); a job function that
raises a typed error without touching its worker cannot be attributed to
a worker stack.

Executors
---------
``executor="thread"`` runs one OS thread per worker (likelihood kernels
release no GIL here, but the pool models the concurrency structure of a
multi-device deployment and exercises real interleavings).
``executor="inline"`` dispatches round-robin on the calling thread — a
deterministic scheduler for replayable chaos tests and for measuring
pure dispatch overhead.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..obs import get_recorder
from .errors import (
    DeadlineExceeded,
    ExecutionError,
    NoHealthyWorkersError,
    PoolSaturatedError,
)
from .faults import FaultSpec
from .health import Deadline, Sentinel
from .resilient import FaultStats, RetryPolicy
from .supervisor import MakeCase, PoolWorker, Supervisor

__all__ = [
    "Job",
    "JobContext",
    "JobOutcome",
    "PoolStats",
    "LikelihoodPool",
]

Clock = Callable[[], float]
JobFn = Callable[["JobContext"], Any]

#: Outcome statuses.
OK = "ok"
SHED = "shed"
SURFACED = "surfaced"

_UNSET = object()


@dataclass
class JobContext:
    """What a running job sees: its worker and its deadline.

    Job functions take one ``JobContext`` and return their value
    (typically a log-likelihood). Evaluations must go through
    :meth:`execute` or :meth:`evaluate` so they run inside the worker's
    resilient stack and count in its ledger.
    """

    worker: PoolWorker
    deadline: Optional[Deadline] = None

    @property
    def worker_id(self) -> int:
        """Id of the worker running the job."""
        return self.worker.id

    def execute(self, instance, plan) -> float:
        """Run ``(instance, plan)`` through the worker's full stack."""
        return self.worker.execute_stack(instance, plan, self.deadline)

    def evaluate(self, make_case: MakeCase) -> float:
        """Build a fresh case via ``make_case`` and execute it."""
        return self.worker.execute(make_case, self.deadline)

    def check_deadline(self) -> None:
        """Cooperative deadline check for job-side work between launches."""
        if self.deadline is not None:
            self.deadline.check("job")


@dataclass
class Job:
    """One unit of pool work (internal bookkeeping)."""

    index: int
    fn: JobFn
    label: str
    budget_s: Optional[float] = None
    deadline: Optional[Deadline] = None
    tried: Set[int] = field(default_factory=set)
    attempts: int = 0
    last_error: Optional[BaseException] = None


@dataclass(frozen=True)
class JobOutcome:
    """Terminal state of one job.

    ``status`` is ``"ok"`` (``value`` holds the result), ``"shed"`` (the
    deadline expired while the job was still queued) or ``"surfaced"``
    (``error`` holds the typed failure). ``cause`` refines non-ok
    outcomes: ``"expired"``, ``"failure"``, ``"unplaced"`` or
    ``"fatal"``.
    """

    index: int
    label: str
    status: str
    value: Any = None
    error: Optional[BaseException] = None
    worker_id: Optional[int] = None
    attempts: int = 0
    cause: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Did the job complete successfully?"""
        return self.status == OK


@dataclass
class PoolStats:
    """Aggregate pool ledger: job accounting plus merged worker faults.

    Attributes
    ----------
    offered:
        Every :meth:`LikelihoodPool.submit` call, accepted or not.
    rejected:
        Submissions refused by admission control (part of ``shed``).
    completed / shed / surfaced:
        Terminal outcome counts; ``shed`` includes both rejected
        submissions and queue-expired deadlines.
    surfaced_failures:
        The subset of ``surfaced`` caused by a worker failure (the rest
        were unplaceable or fatal).
    failures:
        Job attempts that raised a typed error on a worker.
    rerouted / rescued:
        Failover re-dispatches and post-audit re-executions.
    probes / probe_failures / probe_errors:
        Sentinel health-check traffic.
    evicted:
        Ids of permanently evicted workers.
    faults:
        Per-worker :class:`~repro.exec.resilient.FaultStats` merged,
        with the pool-level ``rerouted``/``shed``/``surfaced`` counters
        folded in.
    """

    workers: int = 0
    offered: int = 0
    rejected: int = 0
    completed: int = 0
    shed: int = 0
    surfaced: int = 0
    surfaced_failures: int = 0
    failures: int = 0
    rerouted: int = 0
    rescued: int = 0
    probes: int = 0
    probe_failures: int = 0
    probe_errors: int = 0
    evicted: Tuple[int, ...] = ()
    faults: FaultStats = field(default_factory=FaultStats)

    def imbalances(self) -> List[str]:
        """Violated ledger identities (empty means the ledger closes)."""
        problems: List[str] = []
        if self.offered != self.completed + self.shed + self.surfaced:
            problems.append(
                f"offered={self.offered} != completed={self.completed} "
                f"+ shed={self.shed} + surfaced={self.surfaced}"
            )
        if self.failures != self.rerouted + self.surfaced_failures:
            problems.append(
                f"failures={self.failures} != rerouted={self.rerouted} "
                f"+ surfaced_failures={self.surfaced_failures}"
            )
        if self.faults.errors != self.failures + self.probe_errors:
            problems.append(
                f"worker errors={self.faults.errors} != "
                f"failures={self.failures} + probe_errors={self.probe_errors}"
            )
        return problems

    def balances(self) -> bool:
        """Does every ledger identity close?"""
        return not self.imbalances()

    def explain(self) -> str:
        """Account for every ledger identity with its current numbers.

        One line per identity, each marked ``ok`` or ``VIOLATED``, with
        the invariant it protects spelled out. The observability export
        (:func:`repro.obs.record_pool_stats`) asserts the same
        identities as the ``repro_pool_ledger_imbalances`` gauge, so a
        drifting ledger is visible both here and on a dashboard.
        """
        checks = [
            (
                "offered == completed + shed + surfaced",
                self.offered,
                self.completed + self.shed + self.surfaced,
                "every submitted job reaches exactly one terminal outcome",
            ),
            (
                "failures == rerouted + surfaced_failures",
                self.failures,
                self.rerouted + self.surfaced_failures,
                "every worker failure is rerouted or surfaced, never lost",
            ),
            (
                "worker errors == failures + probe_errors",
                self.faults.errors,
                self.failures + self.probe_errors,
                "every worker-stack error is attributed to a job or a probe",
            ),
        ]
        lines = []
        for identity, lhs, rhs, meaning in checks:
            mark = "ok" if lhs == rhs else "VIOLATED"
            lines.append(f"[{mark}] {identity} ({lhs} vs {rhs}): {meaning}")
        return "\n".join(lines)

    def format(self) -> str:
        """One-line summary for logs and ``synthetictest`` output."""
        return (
            f"pool: workers={self.workers} evicted={list(self.evicted)} "
            f"offered={self.offered} completed={self.completed} "
            f"shed={self.shed} surfaced={self.surfaced} "
            f"rerouted={self.rerouted} rescued={self.rescued} "
            f"probes={self.probes} probe_failures={self.probe_failures} | "
            + self.faults.format()
        )


class LikelihoodPool:
    """N supervised likelihood workers behind a bounded work queue.

    Parameters
    ----------
    n_workers:
        Worker slots.
    policy:
        Recovery policy installed on every worker's resilient facade;
        ``None`` runs bare (fail-fast) workers.
    worker_fault_specs:
        Optional per-worker seeded chaos streams (shorter sequences are
        padded with ``None`` = healthy).
    worker_bias:
        Optional ``{worker_id: factor}`` silent-corruption map.
    deadline_s:
        Default per-job wall-clock budget (``None`` = unbounded);
        overridable per :meth:`submit`.
    max_pending:
        Admission-control bound on queued jobs (``None`` = unbounded).
    health_check_every:
        Periodic sentinel cadence, in completed jobs per worker
        (``0`` = only half-open probes and the final audit).
    failure_threshold, cooldown_s:
        Circuit-breaker configuration, per worker.
    executor:
        ``"thread"`` (one thread per worker) or ``"inline"``
        (deterministic round-robin on the calling thread).
    audit:
        Run the final sentinel audit after each drain, rescuing jobs
        completed by workers that fail it.
    sentinel:
        Known-answer probe; built with defaults if omitted.
    sanitize:
        Enable the shadow-state buffer sanitizer
        (:class:`~repro.analysis.sanitizer.RaceDetector`). Every worker
        wraps its engine instances in a
        :class:`~repro.analysis.sanitizer.SanitizedInstance`, so
        unsynchronized cross-thread buffer accesses under the threaded
        executor are detected and reported as offender pairs. Each
        :meth:`drain` is a synchronization barrier (the detector's epoch
        advances), so accesses in different drains never pair. Off by
        default: when off, nothing wraps the engine and overhead is
        zero.
    clock, sleep:
        Injectable time sources for replayable tests.
    """

    def __init__(
        self,
        n_workers: int = 4,
        *,
        policy: Optional[RetryPolicy] = RetryPolicy(),
        worker_fault_specs: Optional[Sequence[Optional[FaultSpec]]] = None,
        worker_bias: Optional[Mapping[int, float]] = None,
        deadline_s: Optional[float] = None,
        max_pending: Optional[int] = 1024,
        health_check_every: int = 0,
        failure_threshold: int = 3,
        cooldown_s: float = 0.05,
        executor: str = "thread",
        audit: bool = True,
        sentinel: Optional[Sentinel] = None,
        sanitize: bool = False,
        clock: Clock = time.monotonic,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("a pool needs at least one worker")
        if executor not in ("thread", "inline"):
            raise ValueError(f"unknown executor {executor!r}")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be positive (or None)")
        specs: List[Optional[FaultSpec]] = list(worker_fault_specs or [])
        if len(specs) > n_workers:
            raise ValueError(
                f"{len(specs)} fault specs for {n_workers} workers"
            )
        specs += [None] * (n_workers - len(specs))
        bias = dict(worker_bias or {})
        unknown = set(bias) - set(range(n_workers))
        if unknown:
            raise ValueError(f"bias for unknown workers: {sorted(unknown)}")

        self.deadline_s = deadline_s
        self.max_pending = max_pending
        self.executor = executor
        self.audit = audit
        self._clock = clock
        self._sleep = sleep or time.sleep
        self.detector = None
        if sanitize:
            from ..analysis.sanitizer import RaceDetector

            self.detector = RaceDetector()
        self.workers = [
            PoolWorker(
                i,
                policy=policy,
                fault_spec=specs[i],
                bias=bias.get(i),
                failure_threshold=failure_threshold,
                cooldown_s=cooldown_s,
                clock=clock,
                sleep=sleep,
                detector=self.detector,
            )
            for i in range(n_workers)
        ]
        self.supervisor = Supervisor(
            self.workers,
            sentinel=sentinel,
            health_check_every=health_check_every,
        )
        self._lock = threading.Lock()
        self._pending: List[Job] = []
        self._next_index = 0
        self._rr = 0
        self._fatal: Optional[BaseException] = None
        # Cumulative ledger counters (across drains).
        self._offered = 0
        self._rejected = 0
        self._completed = 0
        self._shed_expired = 0
        self._surfaced = 0
        self._surfaced_failures = 0
        self._failures = 0
        self._rerouted = 0
        self._rescued = 0

    # -- submission ----------------------------------------------------
    @property
    def pending(self) -> int:
        """Jobs queued and not yet drained."""
        return len(self._pending)

    def submit(
        self,
        fn: JobFn,
        *,
        label: Optional[str] = None,
        deadline_s=_UNSET,
    ) -> int:
        """Queue one job; returns its index. Raises
        :class:`~repro.exec.errors.PoolSaturatedError` when the queue is
        full. The job's deadline starts *now* — queue wait counts."""
        self._offered += 1
        if (
            self.max_pending is not None
            and len(self._pending) >= self.max_pending
        ):
            self._rejected += 1
            get_recorder().count("repro_pool_shed_total")
            raise PoolSaturatedError(
                f"pool queue full ({self.max_pending} pending); "
                "job rejected by admission control",
                capacity=self.max_pending,
                pending=len(self._pending),
            )
        budget = self.deadline_s if deadline_s is _UNSET else deadline_s
        index = self._next_index
        self._next_index += 1
        self._pending.append(
            Job(
                index=index,
                fn=fn,
                label=label or f"job-{index}",
                budget_s=budget,
                deadline=(
                    Deadline(budget, clock=self._clock)
                    if budget is not None
                    else None
                ),
            )
        )
        return index

    def submit_case(
        self,
        make_case: MakeCase,
        *,
        label: Optional[str] = None,
        deadline_s=_UNSET,
    ) -> int:
        """Queue a job that evaluates one ``(instance, plan)`` case."""
        return self.submit(
            lambda ctx: ctx.evaluate(make_case),
            label=label,
            deadline_s=deadline_s,
        )

    # -- draining ------------------------------------------------------
    def drain(self) -> List[JobOutcome]:
        """Run every queued job to a terminal outcome; returns outcomes
        in submission order. Never drops a job: each outcome is
        ``ok``, ``shed`` or ``surfaced``."""
        jobs = self._pending
        self._pending = []
        if not jobs:
            return []
        if self.detector is not None:
            # Each drain is a synchronization barrier for the sanitizer:
            # accesses from different drains are ordered and never race.
            self.detector.advance_epoch()
        outcomes: Dict[int, JobOutcome] = {}
        by_index = {job.index: job for job in jobs}
        if self.executor == "inline":
            self._drain_inline(deque(jobs), outcomes)
        else:
            self._drain_threaded(jobs, outcomes)
        if self.audit:
            self._final_audit(by_index, outcomes)
        missing = [job.index for job in jobs if job.index not in outcomes]
        if missing:  # pragma: no cover - accounting invariant
            raise RuntimeError(f"jobs dropped without outcome: {missing}")
        ordered = [outcomes[job.index] for job in jobs]
        self._tally(ordered)
        if self._fatal is not None:
            fatal = self._fatal
            self._fatal = None
            raise fatal
        return ordered

    def map(
        self,
        fns: Sequence[JobFn],
        *,
        labels: Optional[Sequence[str]] = None,
    ) -> List[Any]:
        """Submit ``fns``, drain, and return their values in order.

        Batches larger than ``max_pending`` are submitted and drained
        incrementally, so admission control bounds *queued* work without
        capping batch size. Raises the first non-ok outcome's error
        (jobs already completed are not lost — their workers' ledgers
        retain the accounting).
        """
        by_index: Dict[int, JobOutcome] = {}
        submitted: List[int] = []
        pos = 0
        n = len(fns)
        while pos < n:
            room = (
                n - pos
                if self.max_pending is None
                else self.max_pending - len(self._pending)
            )
            if room <= 0:
                for outcome in self.drain():
                    by_index[outcome.index] = outcome
                continue
            for k in range(min(room, n - pos)):
                submitted.append(
                    self.submit(
                        fns[pos + k],
                        label=labels[pos + k] if labels else None,
                    )
                )
            pos += min(room, n - pos)
        for outcome in self.drain():
            by_index[outcome.index] = outcome
        ordered = [by_index[index] for index in submitted]
        for outcome in ordered:
            if not outcome.ok:
                assert outcome.error is not None
                raise outcome.error
        return [outcome.value for outcome in ordered]

    def map_cases(
        self,
        make_cases: Sequence[MakeCase],
        *,
        labels: Optional[Sequence[str]] = None,
    ) -> List[float]:
        """:meth:`map` over ``(instance, plan)`` case factories."""  # noqa: E501
        return self.map(
            [self._case_fn(mc) for mc in make_cases], labels=labels
        )

    @staticmethod
    def _case_fn(make_case: MakeCase) -> JobFn:
        return lambda ctx: ctx.evaluate(make_case)

    # -- inline executor -----------------------------------------------
    def _drain_inline(
        self, pending: Deque[Job], outcomes: Dict[int, JobOutcome]
    ) -> None:
        while pending:
            job = pending.popleft()
            if job.deadline is not None and job.deadline.expired:
                self._shed(job, outcomes)
                continue
            worker = self._select_inline(job)
            if worker is None:
                if self._eligible(job):
                    # Someone may still recover: wait out the shortest
                    # cooldown and try again.
                    self._sleep(max(self._shortest_cooldown(), 1e-4))
                    pending.appendleft(job)
                    continue
                self._surface_unplaced(job, outcomes)
                continue
            status, payload = self._attempt(job, worker)
            if status == OK:
                self._complete(job, worker, payload, outcomes)
            elif status == "fatal":
                self._surface_fatal(job, outcomes, payload)
            elif self._after_failure(job, worker, payload, outcomes):
                pending.append(job)

    def _select_inline(self, job: Job) -> Optional[PoolWorker]:
        """Round-robin over acquirable workers the job has not tried."""
        n = len(self.workers)
        for k in range(n):
            worker = self.workers[(self._rr + k) % n]
            if worker.breaker.evicted or worker.id in job.tried:
                continue
            if self.supervisor.acquire(worker):
                self._rr = (self._rr + k + 1) % n
                return worker
        return None

    def _shortest_cooldown(self) -> float:
        waits = [
            w.breaker.cooldown_remaining() for w in self.supervisor.alive()
        ]
        positive = [t for t in waits if t > 0.0]
        return min(positive) if positive else 1e-4

    # -- threaded executor ---------------------------------------------
    def _drain_threaded(
        self, jobs: List[Job], outcomes: Dict[int, JobOutcome]
    ) -> None:
        alive = self.supervisor.alive()
        if not alive:
            for job in jobs:
                self._surface_unplaced(job, outcomes)
            return
        work: "queue_module.Queue[Job]" = queue_module.Queue()
        for job in jobs:
            work.put(job)
        state = {"remaining": len(jobs)}
        threads = [
            threading.Thread(
                target=self._thread_loop,
                args=(worker, work, outcomes, state),
                name=f"pool-worker-{worker.id}",
                daemon=True,
            )
            for worker in alive
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Workers can all evict mid-drain; whatever is left in the queue
        # (or was requeued after the last worker exited) surfaces.
        while True:
            try:
                job = work.get_nowait()
            except queue_module.Empty:
                break
            if job.index not in outcomes:
                self._surface_unplaced(job, outcomes)

    def _thread_loop(
        self,
        worker: PoolWorker,
        work: "queue_module.Queue[Job]",
        outcomes: Dict[int, JobOutcome],
        state: Dict[str, int],
    ) -> None:
        while True:
            with self._lock:
                if state["remaining"] <= 0 or worker.breaker.evicted:
                    return
                decision = self.supervisor.admission(worker)
                cooling = worker.breaker.cooldown_remaining()
            if decision == Supervisor.PROBE:
                # The sentinel runs through the worker's full stack and
                # can sleep through retry backoff — evaluate it outside
                # the pool lock (only this thread drives this worker),
                # then record the verdict under it.
                healthy, errors_delta = self.supervisor.run_probe(worker)
                with self._lock:
                    admit = self.supervisor.record_probe(
                        worker, healthy, errors_delta
                    )
            else:
                admit = decision == Supervisor.ADMIT
            if not admit:
                if worker.breaker.evicted:
                    return
                self._sleep(min(max(cooling, 1e-4), 0.01))
                continue
            try:
                job = work.get(timeout=0.005)
            except queue_module.Empty:
                continue
            if worker.id in job.tried:
                # This worker already failed this job; hand it back and
                # yield so a different worker picks it up.
                with self._lock:
                    if self._eligible(job):
                        work.put(job)
                    else:
                        self._surface_unplaced(job, outcomes)
                        state["remaining"] -= 1
                self._sleep(1e-4)
                continue
            if job.deadline is not None and job.deadline.expired:
                with self._lock:
                    self._shed(job, outcomes)
                    state["remaining"] -= 1
                continue
            status, payload = self._attempt(job, worker)
            with self._lock:
                if status == OK:
                    self._complete(job, worker, payload, outcomes)
                    state["remaining"] -= 1
                elif status == "fatal":
                    self._surface_fatal(job, outcomes, payload)
                    state["remaining"] -= 1
                elif self._after_failure(job, worker, payload, outcomes):
                    work.put(job)
                else:
                    state["remaining"] -= 1

    # -- shared dispatch mechanics -------------------------------------
    def _attempt(self, job: Job, worker: PoolWorker):
        """Run the job on the worker (no locks held). Returns a
        ``(status, payload)`` pair; ``payload`` is the value or error."""
        job.attempts += 1
        context = JobContext(worker=worker, deadline=job.deadline)
        obs = get_recorder()
        if not obs.enabled:
            try:
                return OK, job.fn(context)
            except ExecutionError as exc:
                job.last_error = exc
                return "error", exc
            except Exception as exc:  # noqa: BLE001 - programmer error
                job.last_error = exc
                return "fatal", exc
        with obs.span(
            "pool.job",
            category="pool",
            label=job.label,
            worker=worker.id,
            attempt=job.attempts,
        ) as span:
            try:
                value = job.fn(context)
            except ExecutionError as exc:
                job.last_error = exc
                span.set_attribute("outcome", "error")
                return "error", exc
            except Exception as exc:  # noqa: BLE001 - programmer error
                job.last_error = exc
                span.set_attribute("outcome", "fatal")
                return "fatal", exc
            span.set_attribute("outcome", OK)
            return OK, value

    def _complete(
        self,
        job: Job,
        worker: PoolWorker,
        value: float,
        outcomes: Dict[int, JobOutcome],
    ) -> None:
        self.supervisor.record_success(worker, job.index)
        get_recorder().count("repro_pool_jobs_completed_total")
        outcomes[job.index] = JobOutcome(
            index=job.index,
            label=job.label,
            status=OK,
            value=value,
            worker_id=worker.id,
            attempts=job.attempts,
        )

    def _after_failure(
        self,
        job: Job,
        worker: PoolWorker,
        exc: ExecutionError,
        outcomes: Dict[int, JobOutcome],
    ) -> bool:
        """Failure bookkeeping; True when the job should be requeued."""
        self.supervisor.record_failure(worker)
        self._failures += 1
        job.tried.add(worker.id)
        if isinstance(exc, DeadlineExceeded):
            # The budget is spent; a reroute would start from zero time.
            get_recorder().count("repro_pool_deadline_exceeded_total")
            self._surface_failure(job, outcomes, exc)
            return False
        if self._eligible(job):
            self._rerouted += 1
            get_recorder().count("repro_pool_reroutes_total")
            return True
        self._surface_failure(job, outcomes, exc)
        return False

    def _eligible(self, job: Job) -> List[PoolWorker]:
        return [
            w
            for w in self.workers
            if not w.breaker.evicted and w.id not in job.tried
        ]

    def _shed(self, job: Job, outcomes: Dict[int, JobOutcome]) -> None:
        assert job.deadline is not None
        get_recorder().count("repro_pool_shed_total")
        error = DeadlineExceeded(
            f"{job.label} expired while queued "
            f"({job.deadline.elapsed * 1e3:.0f} ms waiting, "
            f"{(job.budget_s or 0.0) * 1e3:.0f} ms budget)",
            budget_s=job.budget_s,
            elapsed_s=job.deadline.elapsed,
        )
        outcomes[job.index] = JobOutcome(
            index=job.index,
            label=job.label,
            status=SHED,
            error=error,
            attempts=job.attempts,
            cause="expired",
        )

    def _surface_failure(
        self, job: Job, outcomes: Dict[int, JobOutcome], exc: ExecutionError
    ) -> None:
        outcomes[job.index] = JobOutcome(
            index=job.index,
            label=job.label,
            status=SURFACED,
            error=exc,
            attempts=job.attempts,
            cause="failure",
        )

    def _surface_unplaced(
        self, job: Job, outcomes: Dict[int, JobOutcome]
    ) -> None:
        detail = (
            f" (last error: {job.last_error})" if job.last_error else ""
        )
        outcomes[job.index] = JobOutcome(
            index=job.index,
            label=job.label,
            status=SURFACED,
            error=NoHealthyWorkersError(
                f"no healthy worker left for {job.label}{detail}"
            ),
            attempts=job.attempts,
            cause="unplaced",
        )

    def _surface_fatal(
        self, job: Job, outcomes: Dict[int, JobOutcome], exc: BaseException
    ) -> None:
        outcomes[job.index] = JobOutcome(
            index=job.index,
            label=job.label,
            status=SURFACED,
            error=exc,
            attempts=job.attempts,
            cause="fatal",
        )
        if self._fatal is None:
            self._fatal = exc

    # -- final audit ---------------------------------------------------
    def _final_audit(
        self, by_index: Dict[int, Job], outcomes: Dict[int, JobOutcome]
    ) -> None:
        """Probe every worker holding unvouched completions; evict the
        liars and re-run their jobs on workers that pass.

        Workers evicted *mid-drain* (a half-open probe failed while jobs
        were still flowing) can never be vouched for by a fresh probe,
        yet may hold completions from before their eviction — a silently
        corrupting worker that also trips its breaker would otherwise
        leak wrong values as ``ok``. Their unaudited completions are
        rescued unconditionally.
        """
        while True:
            swept = self._sweep_evicted(by_index, outcomes)
            suspects = self.supervisor.audit_pending()
            if not suspects:
                if not swept:
                    return
                continue  # rescues may have evicted more workers
            for worker in suspects:
                if self.supervisor.probe(worker):
                    continue  # probe passed: completions vouched for
                self._rescue_unaudited(worker, by_index, outcomes)

    def _sweep_evicted(
        self, by_index: Dict[int, Job], outcomes: Dict[int, JobOutcome]
    ) -> bool:
        """Rescue completions stranded on already-evicted workers."""
        swept = False
        for worker in self.workers:
            if worker.breaker.evicted and worker.unaudited:
                self._rescue_unaudited(worker, by_index, outcomes)
                swept = True
        return swept

    def _rescue_unaudited(
        self,
        worker: PoolWorker,
        by_index: Dict[int, Job],
        outcomes: Dict[int, JobOutcome],
    ) -> None:
        to_rescue = [
            i
            for i in worker.unaudited
            if i in outcomes and outcomes[i].status == OK
        ]
        worker.unaudited.clear()
        for index in to_rescue:
            self._rescue(by_index[index], outcomes)

    def _rescue(self, job: Job, outcomes: Dict[int, JobOutcome]) -> None:
        """Re-run a job whose worker turned out to be corrupt."""
        self._rescued += 1
        get_recorder().count("repro_pool_rescued_total")
        job.tried = set()  # earlier failures were transient; start fresh
        job.last_error = None
        if job.budget_s is not None:
            job.deadline = Deadline(job.budget_s, clock=self._clock)
        # Inline re-dispatch (single job, calling thread): deterministic
        # and reuses the failover/accounting machinery. The rescuing
        # worker becomes unaudited in turn; the audit loop keeps probing
        # until a clean worker vouches or every worker is evicted.
        self._drain_inline(deque([job]), outcomes)

    # -- accounting ----------------------------------------------------
    def _tally(self, outcomes: List[JobOutcome]) -> None:
        for outcome in outcomes:
            if outcome.status == OK:
                self._completed += 1
            elif outcome.status == SHED:
                self._shed_expired += 1
            else:
                self._surfaced += 1
                if outcome.cause == "failure":
                    self._surfaced_failures += 1

    @property
    def sanitizer_clean(self) -> bool:
        """True when the sanitizer is off or has recorded no race."""
        return self.detector is None or self.detector.clean

    def race_report(self):
        """The sanitizer's findings as an
        :class:`~repro.analysis.diagnostics.AnalysisReport` (empty when
        the sanitizer is off or clean)."""
        if self.detector is None:
            from ..analysis.diagnostics import AnalysisReport

            return AnalysisReport()
        return self.detector.to_report()

    def stats(self) -> PoolStats:
        """Snapshot of the aggregate ledger (see :class:`PoolStats`)."""
        faults = FaultStats()
        for worker in self.workers:
            worker.sync_injected()
            faults.merge(worker.stats)
        faults.rerouted = self._rerouted
        faults.shed = self._rejected + self._shed_expired
        faults.surfaced = self._surfaced
        faults.rescued += self._rescued
        return PoolStats(
            workers=len(self.workers),
            offered=self._offered,
            rejected=self._rejected,
            completed=self._completed,
            shed=self._rejected + self._shed_expired,
            surfaced=self._surfaced,
            surfaced_failures=self._surfaced_failures,
            failures=self._failures,
            rerouted=self._rerouted,
            rescued=self._rescued,
            probes=self.supervisor.probes,
            probe_failures=self.supervisor.probe_failures,
            probe_errors=self.supervisor.probe_errors,
            evicted=tuple(self.supervisor.evicted()),
            faults=faults,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LikelihoodPool workers={len(self.workers)} "
            f"executor={self.executor} pending={len(self._pending)} "
            f"evicted={self.supervisor.evicted()}>"
        )
