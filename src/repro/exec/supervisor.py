"""Pool workers and the health supervisor.

A :class:`PoolWorker` is one logical likelihood engine slot: it owns a
persistent seeded fault stream (so chaos runs replay), an optional
silent-corruption wrapper, a per-worker :class:`~repro.exec.resilient.FaultStats`
ledger, a :class:`~repro.exec.health.CircuitBreaker`, and the recipe for
building the resilient engine stack around each job's instance::

    ResilientInstance( DeadlineGuard( FaultInjector( BiasInjector( engine ))))
         recovery          budget          chaos          corruption

The ordering matters: the deadline guard sits *inside* the resilient
facade so every retry re-checks the budget, and the injectors sit inside
the guard so injected faults are subject to both recovery and deadline.

The :class:`Supervisor` decides, per dispatch, whether a worker may take
a job — running the sentinel health check when one is due (periodic
cadence or a half-open circuit's probe) and evicting workers that fail
it. It is pure bookkeeping over worker state; the pool serialises calls
into it, so it needs no locking of its own.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from ..core.planner import execute_plan
from .faults import BiasInjector, FaultInjector, FaultSchedule, FaultSpec
from .health import CircuitBreaker, Deadline, DeadlineGuard, Sentinel
from .resilient import FaultStats, ResilientInstance, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.sanitizer import RaceDetector

__all__ = ["PoolWorker", "Supervisor"]

Clock = Callable[[], float]
MakeCase = Callable[[], Tuple[object, object]]


class PoolWorker:
    """One engine slot of a :class:`~repro.exec.pool.LikelihoodPool`.

    Parameters
    ----------
    worker_id:
        Stable index of this worker within its pool; doubles as the
        jitter key for :meth:`~repro.exec.resilient.RetryPolicy.backoff_seconds`.
    policy:
        Recovery policy for the resilient facade; ``None`` runs the bare
        engine (fail fast — every fault escapes to the pool).
    fault_spec:
        Optional seeded chaos stream. The :class:`FaultSchedule` persists
        across jobs, so a worker's fault sequence depends only on its
        seed and the launches it attempts.
    bias:
        Optional silent-corruption factor (see
        :class:`~repro.exec.faults.BiasInjector`); models a device that
        returns finite but wrong results.
    failure_threshold, cooldown_s, clock:
        Circuit-breaker configuration.
    sleep:
        Backoff sleeper forwarded to the resilient facade.
    detector:
        Optional shared shadow-state race detector
        (:class:`~repro.analysis.sanitizer.RaceDetector`). When set,
        every instance this worker executes is wrapped in a
        :class:`~repro.analysis.sanitizer.SanitizedInstance` —
        *innermost* in the stack, so the fault and recovery layers above
        still drive the recorded engine.
    """

    def __init__(
        self,
        worker_id: int,
        *,
        policy: Optional[RetryPolicy] = None,
        fault_spec: Optional[FaultSpec] = None,
        bias: Optional[float] = None,
        failure_threshold: int = 3,
        cooldown_s: float = 0.05,
        clock: Clock = time.monotonic,
        sleep: Optional[Callable[[float], None]] = None,
        detector: Optional["RaceDetector"] = None,
    ) -> None:
        self.id = worker_id
        self.policy = policy
        self.bias = bias
        self.detector = detector
        self.schedule: Optional[FaultSchedule] = (
            FaultSchedule(fault_spec)
            if fault_spec is not None and fault_spec.rate > 0.0
            else None
        )
        self.breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            cooldown_s=cooldown_s,
            clock=clock,
        )
        self.stats = FaultStats()
        self._sleep = sleep
        #: Job indices completed since this worker's last clean sentinel
        #: probe — the set a failed probe sends back for re-execution.
        self.unaudited: List[int] = []
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_since_probe = 0
        self.probes = 0

    # ------------------------------------------------------------------
    def build_stack(self, instance, deadline: Optional[Deadline] = None):
        """Compose this worker's engine stack around a fresh instance."""
        if self.bias is not None:
            instance = BiasInjector(instance, self.bias)
        if self.schedule is not None:
            instance = FaultInjector(instance, schedule=self.schedule)
        if deadline is not None and deadline.seconds is not None:
            instance = DeadlineGuard(instance, deadline)
        if self.policy is not None:
            instance = ResilientInstance(
                instance,
                self.policy,
                sleep=self._sleep,
                stats=self.stats,
                backoff_key=self.id,
            )
        return instance

    def execute(
        self, make_case: MakeCase, deadline: Optional[Deadline] = None
    ) -> float:
        """Build a fresh case, run it through the stack, return the LL."""
        instance, plan = make_case()
        return self.execute_stack(instance, plan, deadline)

    def execute_stack(
        self, instance, plan, deadline: Optional[Deadline] = None
    ) -> float:
        """Run one evaluation through this worker's full engine stack."""
        if self.detector is not None:
            from ..analysis.sanitizer import SanitizedInstance

            instance = SanitizedInstance(instance, self.detector)
        stack = self.build_stack(instance, deadline)
        try:
            if isinstance(stack, ResilientInstance):
                return stack.execute(plan)
            return execute_plan(stack, plan)
        except Exception:
            if self.policy is None:
                # No resilient facade to count the escape — keep the
                # ledger honest at the worker level.
                self.stats.errors += 1
            raise
        finally:
            self.sync_injected()

    def sync_injected(self) -> None:
        """Mirror the persistent fault stream's counts into the ledger."""
        if self.schedule is not None:
            self.stats.injected = self.schedule.injected
            self.stats.injected_by_class = dict(self.schedule.by_class)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PoolWorker {self.id} {self.breaker.state} "
            f"done={self.jobs_completed} failed={self.jobs_failed}>"
        )


class Supervisor:
    """Health supervision over a fixed set of workers.

    Parameters
    ----------
    workers:
        The pool's workers (owned by the pool; the supervisor only reads
        and updates their health state).
    sentinel:
        The known-answer probe. Built lazily if omitted.
    health_check_every:
        Run a sentinel probe on a worker after this many completed jobs;
        ``0`` disables the periodic cadence (half-open probes and the
        pool's final audit still run).
    """

    def __init__(
        self,
        workers: Sequence[PoolWorker],
        *,
        sentinel: Optional[Sentinel] = None,
        health_check_every: int = 0,
    ) -> None:
        if health_check_every < 0:
            raise ValueError("health_check_every must be non-negative")
        self.workers = list(workers)
        self.sentinel = sentinel or Sentinel()
        self.health_check_every = health_check_every
        self.probes = 0
        self.probe_failures = 0
        #: Typed errors that escaped worker stacks *during probes* — kept
        #: apart from job failures so the pool's ledger identity
        #: (worker errors == rerouted + surfaced + probe errors) closes.
        self.probe_errors = 0

    # ------------------------------------------------------------------
    def probe(self, worker: PoolWorker) -> bool:
        """Run the sentinel through the worker's stack; update health.

        A passing probe closes a half-open circuit and marks all of the
        worker's completed-since-last-probe jobs as audited. A failing
        probe evicts the worker (half-open failure or silent corruption)
        and leaves :attr:`PoolWorker.unaudited` for the pool to rescue.
        """
        healthy, errors_delta = self.run_probe(worker)
        return self.record_probe(worker, healthy, errors_delta)

    def run_probe(self, worker: PoolWorker) -> Tuple[bool, int]:
        """Evaluate the sentinel on the worker's stack.

        Touches only the worker's own state (never shared supervisor
        counters), so a pool thread may run it without holding the pool
        lock — probes can sleep through retry backoff, and serialising
        them would stall every other worker's dispatch. Returns
        ``(healthy, escaped_error_count)`` for :meth:`record_probe`.
        """
        errors_before = worker.stats.errors
        try:
            value = worker.execute(self.sentinel.make_case)
            healthy = self.sentinel.passes(value)
        except Exception:
            healthy = False
        return healthy, worker.stats.errors - errors_before

    def record_probe(
        self, worker: PoolWorker, healthy: bool, errors_delta: int
    ) -> bool:
        """Fold a probe result into shared health state (pool-locked)."""
        self.probes += 1
        worker.probes += 1
        worker.jobs_since_probe = 0
        self.probe_errors += errors_delta
        if healthy:
            worker.breaker.record_success()
            worker.unaudited.clear()
            return True
        self.probe_failures += 1
        # Whether the probe crashed or returned a wrong value, this
        # worker cannot be trusted again: evict. (A half-open breaker
        # would reach the same state via record_failure; silent
        # corruption in the CLOSED state must jump straight there.)
        worker.breaker.evict()
        return False

    #: Admission decisions (see :meth:`admission`).
    REFUSE = "refuse"
    PROBE = "probe"
    ADMIT = "admit"

    def admission(self, worker: PoolWorker) -> str:
        """Dispatch decision for a worker, without side effects.

        ``ADMIT`` — take a job now; ``REFUSE`` — evicted or cooling
        down; ``PROBE`` — a sentinel probe is due (half-open circuit or
        periodic cadence) and must pass before the worker takes a job.
        """
        breaker = worker.breaker
        if breaker.evicted:
            return self.REFUSE
        if breaker.wants_probe():
            return self.PROBE
        if not breaker.available():
            return self.REFUSE  # open, still cooling down
        if (
            self.health_check_every > 0
            and worker.jobs_since_probe >= self.health_check_every
        ):
            return self.PROBE
        return self.ADMIT

    def acquire(self, worker: PoolWorker) -> bool:
        """May this worker take a job right now? Probes when one is due."""
        decision = self.admission(worker)
        if decision == self.PROBE:
            return self.probe(worker)
        return decision == self.ADMIT

    # ------------------------------------------------------------------
    def record_success(self, worker: PoolWorker, job_index: int) -> None:
        worker.breaker.record_success()
        worker.jobs_completed += 1
        worker.jobs_since_probe += 1
        worker.unaudited.append(job_index)

    def record_failure(self, worker: PoolWorker) -> None:
        worker.breaker.record_failure()
        worker.jobs_failed += 1

    # ------------------------------------------------------------------
    def alive(self) -> List[PoolWorker]:
        """Workers not (yet) evicted."""
        return [w for w in self.workers if not w.breaker.evicted]

    def evicted(self) -> List[int]:
        """Ids of evicted workers."""
        return [w.id for w in self.workers if w.breaker.evicted]

    def audit_pending(self) -> List[PoolWorker]:
        """Non-evicted workers holding completions not yet vouched for."""
        return [
            w for w in self.workers if w.unaudited and not w.breaker.evicted
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Supervisor workers={len(self.workers)} "
            f"evicted={self.evicted()} probes={self.probes}>"
        )
