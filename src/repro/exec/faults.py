"""Deterministic, seed-driven fault injection.

Long phylogenetic runs die in the partials kernel — the paper's §VIII
measures >0.9 of MCMC time there — so that is where faults are injected:
every kernel-launch *attempt* draws once from a seeded RNG stream and, at
the configured rate, suffers one of five fault classes. The draw sequence
depends only on the seed and the sequence of attempts, so a failing run
replays exactly under the same seed, and a recovered run can be compared
bit-for-bit against its fault-free twin (the property the test suite
enforces).

Fault classes
-------------
``launch``
    :class:`~repro.exec.errors.KernelLaunchError` raised before any state
    changes — the launch never started.
``transient``
    :class:`~repro.exec.errors.TransientDeviceError` raised before the
    destination buffers are written (the engine recomputes destinations
    wholesale, so pre-write is equivalent to mid-run for recovery).
``alloc``
    :class:`~repro.exec.errors.AllocationError` — simulated device OOM.
``nan``
    The launch "succeeds" but one destination partials buffer is poisoned
    with NaN — the silent-corruption mode GPUs exhibit under ECC-less
    memory faults. Only detectable by checking the buffers.
``underflow``
    One destination buffer is scaled down below the underflow detection
    threshold (denormal range) — silently wrong results unless the
    resilience layer checks magnitudes.

:class:`FaultInjector` wraps a :class:`~repro.beagle.instance.BeagleInstance`
(anything with its ``update_partials_*`` surface) and applies the schedule
to each launch attempt; :class:`FaultSchedule` alone is shared with the
device model (:meth:`repro.gpu.simulator.SimulatedDevice.time_plan_resilient`)
so modelled timings see the same fault sequence the engine would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .errors import (
    AllocationError,
    KernelLaunchError,
    TransientDeviceError,
)

__all__ = [
    "FAULT_CLASSES",
    "SHARD_FAULT_CLASSES",
    "FaultSpec",
    "FaultSchedule",
    "FaultInjector",
    "BiasInjector",
    "ShardFaultSpec",
    "ShardFaultSchedule",
]

#: Every fault class the injector knows, in draw order.
FAULT_CLASSES: Tuple[str, ...] = (
    "launch",
    "transient",
    "alloc",
    "nan",
    "underflow",
)

#: Shard-scoped fault classes, drawn per (shard, attempt) rather than per
#: kernel launch. Kept separate from :data:`FAULT_CLASSES` so existing
#: seeded launch-level streams stay bit-identical.
#:
#: ``shard_lost``
#:     The shard's worker dies mid-evaluation — the job surfaces a
#:     transient device error and the shard must be retried elsewhere.
#: ``shard_stall``
#:     The shard becomes a straggler: its evaluation blocks until the
#:     straggler deadline fires, exercising speculation/cancellation.
#: ``shard_underflow``
#:     The shard's partials are dragged into the denormal range, forcing
#:     the per-shard rescaling escalation path.
SHARD_FAULT_CLASSES: Tuple[str, ...] = (
    "shard_lost",
    "shard_stall",
    "shard_underflow",
)

#: Fault classes raised before the launch executes (state untouched).
RAISED_BEFORE_EXECUTION = frozenset({"launch", "transient", "alloc"})


def underflow_poison_factor(dtype: np.dtype) -> float:
    """Scale factor that drags healthy partials under the detection
    threshold of the matching dtype without leaving the representable
    (denormal) range."""
    if np.dtype(dtype) == np.dtype(np.float32):
        return 1e-35
    return 1e-250


@dataclass(frozen=True)
class FaultSpec:
    """Configuration of one deterministic fault stream.

    Parameters
    ----------
    rate:
        Per-launch-attempt fault probability in ``[0, 1]``.
    seed:
        Seed of the injection RNG stream (independent of every other RNG
        in the system).
    classes:
        Fault classes to draw from, uniformly. Defaults to all five.
    batched_only:
        Restrict injection to batched (multi-operation) launches — the
        configuration that exercises graceful degradation: per-operation
        fallback launches then always succeed.
    max_faults:
        Stop injecting after this many faults (``None`` = unlimited); a
        bounded budget guarantees eventual success however small the
        retry budget.
    """

    rate: float = 0.0
    seed: int = 0
    classes: Tuple[str, ...] = FAULT_CLASSES
    batched_only: bool = False
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be within [0, 1]")
        unknown = set(self.classes) - set(FAULT_CLASSES)
        if unknown:
            raise ValueError(f"unknown fault classes: {sorted(unknown)}")
        if not self.classes and self.rate > 0.0:
            raise ValueError("a positive fault rate needs at least one class")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be non-negative")


class FaultSchedule:
    """The seeded draw stream: one decision per launch attempt.

    Deterministic given ``spec``: attempt ``i`` of any run with the same
    spec receives the same decision, regardless of what the engine does
    with it.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(spec.seed)
        self.attempts = 0
        self.injected = 0
        self.by_class: Dict[str, int] = {}

    def draw(self, *, batched: bool = True) -> Optional[str]:
        """Fault class for the next launch attempt, or ``None``."""
        self.attempts += 1
        if self.spec.rate <= 0.0:
            return None
        if (
            self.spec.max_faults is not None
            and self.injected >= self.spec.max_faults
        ):
            return None
        # Draw both values unconditionally so the stream consumed per
        # attempt has constant length: decisions for attempt i never
        # depend on whether attempt i-1 targeted a batched launch.
        hit = self._rng.random() < self.spec.rate
        which = int(self._rng.integers(len(self.spec.classes)))
        if not hit or (self.spec.batched_only and not batched):
            return None
        fault = self.spec.classes[which]
        self.injected += 1
        self.by_class[fault] = self.by_class.get(fault, 0) + 1
        return fault


@dataclass(frozen=True)
class ShardFaultSpec:
    """Configuration of a deterministic *shard-scoped* fault stream.

    Unlike :class:`FaultSpec`, decisions are not drawn from a sequential
    stream: each ``(shard_index, attempt)`` pair gets its own derived
    seed, so the decision for a shard never depends on how many other
    shards ran before it — retries, speculation, and completion order
    cannot shift which shards fault.
    """

    rate: float = 0.0
    seed: int = 0
    classes: Tuple[str, ...] = SHARD_FAULT_CLASSES
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be within [0, 1]")
        unknown = set(self.classes) - set(SHARD_FAULT_CLASSES)
        if unknown:
            raise ValueError(f"unknown shard fault classes: {sorted(unknown)}")
        if not self.classes and self.rate > 0.0:
            raise ValueError("a positive fault rate needs at least one class")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be non-negative")


class ShardFaultSchedule:
    """Seeded per-(shard, attempt) fault decisions.

    ``draw(shard_index, attempt)`` is a pure function of the spec and its
    arguments (modulo the global ``max_faults`` budget): the same shard's
    same attempt always receives the same decision, so a resumed or
    replayed run reproduces the exact fault history.
    """

    def __init__(self, spec: ShardFaultSpec) -> None:
        self.spec = spec
        self.injected = 0
        self.by_class: Dict[str, int] = {}

    def draw(self, shard_index: int, attempt: int) -> Optional[str]:
        """Fault class for this shard attempt, or ``None``."""
        if self.spec.rate <= 0.0:
            return None
        if (
            self.spec.max_faults is not None
            and self.injected >= self.spec.max_faults
        ):
            return None
        rng = np.random.default_rng(
            (self.spec.seed, 0x5AD5, shard_index, attempt)
        )
        hit = rng.random() < self.spec.rate
        which = int(rng.integers(len(self.spec.classes)))
        if not hit:
            return None
        fault = self.spec.classes[which]
        self.injected += 1
        self.by_class[fault] = self.by_class.get(fault, 0) + 1
        return fault


@dataclass
class InjectionLog:
    """What the injector actually did, for accounting and debugging."""

    injected: int = 0
    by_class: Dict[str, int] = field(default_factory=dict)
    poisoned_buffers: int = 0

    def record(self, fault: str) -> None:
        """Count one injected fault of class ``fault``."""
        self.injected += 1
        self.by_class[fault] = self.by_class.get(fault, 0) + 1


class FaultInjector:
    """Wrap an engine instance; inject scheduled faults into its launches.

    Every attribute not intercepted here delegates to the wrapped
    instance, so a ``FaultInjector`` drops into any code path that takes
    a :class:`~repro.beagle.instance.BeagleInstance` — including
    :func:`repro.core.planner.execute_plan` and
    :class:`~repro.exec.resilient.ResilientInstance`.

    Parameters
    ----------
    inner:
        The instance to wrap.
    spec:
        Fault stream configuration (or pass ``schedule`` directly).
    schedule:
        Pre-built :class:`FaultSchedule`; overrides ``spec``.
    """

    def __init__(
        self,
        inner,
        spec: Optional[FaultSpec] = None,
        *,
        schedule: Optional[FaultSchedule] = None,
    ) -> None:
        self._inner = inner
        self.schedule = schedule or FaultSchedule(spec or FaultSpec())
        self.log = InjectionLog()
        self._launch_counter = 0

    # -- delegation ----------------------------------------------------
    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    @property
    def inner(self):
        """The wrapped instance."""
        return self._inner

    # -- intercepted launch surface ------------------------------------
    def update_partials_set(self, operations) -> None:
        """One batched launch attempt, with scheduled fault injection."""
        ops = list(operations)
        if not ops:
            return
        self._attempt(ops, batched=len(ops) > 1)

    def update_partials_serial(self, operations) -> None:
        """Per-operation launches: one fault decision per operation."""
        for op in operations:
            self._attempt([op], batched=False)

    # -- mechanics -----------------------------------------------------
    def _attempt(self, ops, *, batched: bool) -> None:
        index = self._launch_counter
        self._launch_counter += 1
        fault = self.schedule.draw(batched=batched)
        if fault is not None:
            self.log.record(fault)
        if fault in RAISED_BEFORE_EXECUTION:
            self._raise(fault, index, len(ops))
        if batched:
            self._inner.update_partials_set(ops)
        else:
            self._inner.update_partials_serial(ops)
        if fault in ("nan", "underflow"):
            self._poison(fault, ops)

    def _raise(self, fault: str, index: int, n_ops: int) -> None:
        if fault == "launch":
            raise KernelLaunchError(
                f"injected kernel-launch failure (launch {index})",
                launch_index=index,
                n_operations=n_ops,
            )
        if fault == "transient":
            raise TransientDeviceError(
                f"injected transient device error (launch {index})",
                launch_index=index,
                n_operations=n_ops,
            )
        raise AllocationError(
            f"injected device allocation failure (launch {index})",
            launch_index=index,
            n_operations=n_ops,
        )

    def _poison(self, fault: str, ops) -> None:
        """Corrupt one destination buffer of a completed launch."""
        # Deterministic victim choice: first destination of the set. The
        # stream already randomises *which launches* fault; randomising
        # the victim as well would burn draws and buy no extra coverage.
        destination = ops[0].destination
        slot = destination - self._inner.tip_count
        buffer = self._inner._partials[slot]
        if fault == "nan":
            buffer[0, ...] = np.nan
        else:
            buffer *= underflow_poison_factor(buffer.dtype)
        self.log.poisoned_buffers += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.schedule.spec
        return (
            f"<FaultInjector rate={s.rate} seed={s.seed} "
            f"injected={self.log.injected} around {self._inner!r}>"
        )


class BiasInjector:
    """Silently corrupting engine wrapper: finite, plausible, wrong.

    After every successful launch the destination partials are scaled by
    a constant ``factor`` close to 1 — the failure mode of a device with
    a sick multiplier or mis-clocked memory: results stay finite and
    well-conditioned, so neither the NaN/Inf check nor the underflow
    threshold of :class:`~repro.exec.resilient.ResilientInstance` can
    see anything wrong. Only an *end-to-end* comparison against a known
    answer — the pool's sentinel health check
    (:class:`~repro.exec.health.Sentinel`) — exposes such a worker.

    Deterministic by construction (no randomness), so a corrupted run
    replays exactly.
    """

    def __init__(self, inner, factor: float = 1.05) -> None:
        if not factor > 0.0:
            raise ValueError("bias factor must be positive")
        self._inner = inner
        self.factor = float(factor)
        self.corrupted_launches = 0

    # -- delegation ----------------------------------------------------
    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    @property
    def inner(self):
        """The wrapped instance."""
        return self._inner

    # -- intercepted launch surface ------------------------------------
    def update_partials_set(self, operations) -> None:
        """Forward a batched launch, then corrupt the destinations."""
        ops = list(operations)
        self._inner.update_partials_set(ops)
        self._corrupt(ops)

    def update_partials_serial(self, operations) -> None:
        """Forward per-operation launches, then corrupt the destinations."""
        ops = list(operations)
        self._inner.update_partials_serial(ops)
        self._corrupt(ops)

    def _corrupt(self, ops) -> None:
        tip_count = self._inner.tip_count
        for op in ops:
            self._inner._partials[op.destination - tip_count] *= self.factor
        if ops:
            self.corrupted_launches += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BiasInjector factor={self.factor} around {self._inner!r}>"
