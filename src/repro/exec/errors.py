"""Typed execution errors for the resilient engine.

The hierarchy mirrors the failure classes a BEAGLE-backed run actually
hits on real devices (kernel launches that never start, transient device
errors mid-run, allocation failures under memory pressure, and numerical
corruption of a partials buffer), so callers can write targeted recovery
policies instead of matching on exception messages:

``ExecutionError``
    Root of the hierarchy (a ``RuntimeError``); catching it covers every
    fault the engine can surface.
``DeviceFault``
    The device-side failures — :class:`KernelLaunchError` (the launch
    never started; always safe to retry) and
    :class:`TransientDeviceError` (the device errored during execution;
    destination buffers are recomputed wholesale on retry, so retrying is
    safe here too).
``AllocationError``
    Device memory exhaustion. Retrying can succeed once pressure clears;
    degrading a batched launch to per-operation launches shrinks the
    working set.
``NumericalError``
    A partials buffer holds NaN/Inf (``kind="nan"``) or has underflowed
    to (near) zero (``kind="underflow"``). NaN/Inf poisoning is cured by
    recomputation; genuine underflow is deterministic and needs
    rescaling escalation instead.
``DeadlineExceeded``
    A wall-clock budget ran out mid-evaluation. Not retryable: the
    budget is spent, so retrying the same launch cannot help — the job
    either reroutes with a fresh budget or surfaces.
``PoolSaturatedError``
    Admission control: the pool's bounded queue is full and the job was
    rejected rather than buffered without bound (load shedding).
``NoHealthyWorkersError``
    Every worker of a pool has been circuit-broken and evicted; queued
    jobs cannot be placed anywhere.

Every error carries enough context (launch index, operation count,
buffers) for :class:`~repro.exec.resilient.FaultStats` accounting and for
log lines that identify the failing launch.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

__all__ = [
    "ExecutionError",
    "DeviceFault",
    "KernelLaunchError",
    "TransientDeviceError",
    "AllocationError",
    "NumericalError",
    "DeadlineExceeded",
    "PoolSaturatedError",
    "NoHealthyWorkersError",
]


class ExecutionError(RuntimeError):
    """Base class of every dynamic execution failure.

    Parameters
    ----------
    message:
        Human-readable description.
    launch_index:
        Ordinal of the kernel launch (attempt) the fault struck, when
        known.
    n_operations:
        Operation count of the affected launch.
    """

    #: Whether retrying the same launch can possibly succeed. Subclasses
    #: override; policies consult this before burning retry budget.
    retryable: bool = True

    def __init__(
        self,
        message: str,
        *,
        launch_index: Optional[int] = None,
        n_operations: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.launch_index = launch_index
        self.n_operations = n_operations

    def context(self) -> str:
        """Short ``key=value`` suffix identifying the failing launch."""
        parts = []
        if self.launch_index is not None:
            parts.append(f"launch={self.launch_index}")
        if self.n_operations is not None:
            parts.append(f"ops={self.n_operations}")
        return " ".join(parts)


class DeviceFault(ExecutionError):
    """A device-side failure of one kernel launch."""


class KernelLaunchError(DeviceFault):
    """The kernel launch failed to start (no state was modified)."""


class TransientDeviceError(DeviceFault):
    """The device errored during execution of a launch."""


class AllocationError(ExecutionError):
    """Device memory allocation failed (OOM)."""


class NumericalError(ExecutionError):
    """A partials buffer holds non-finite or underflowed values.

    Parameters
    ----------
    kind:
        ``"nan"`` — NaN/Inf detected (recomputation cures poisoning);
        ``"underflow"`` — a pattern's partials sank below the detection
        threshold (deterministic for genuine underflow; rescaling is the
        cure).
    buffers:
        Destination buffer indices found corrupted.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "nan",
        buffers: Sequence[int] = (),
        launch_index: Optional[int] = None,
        n_operations: Optional[int] = None,
    ) -> None:
        if kind not in ("nan", "underflow"):
            raise ValueError(f"unknown numerical fault kind {kind!r}")
        super().__init__(
            message, launch_index=launch_index, n_operations=n_operations
        )
        self.kind = kind
        self.buffers: Tuple[int, ...] = tuple(buffers)

    @property
    def retryable(self) -> bool:  # type: ignore[override]
        # NaN poisoning is transient (recomputation clears it); genuine
        # underflow recurs deterministically — but one recomputation is
        # still worthwhile because *injected* underflow also clears.
        return True


class DeadlineExceeded(ExecutionError):
    """A wall-clock budget expired before the evaluation finished.

    Raised cooperatively at launch boundaries by
    :class:`~repro.exec.health.DeadlineGuard` (and at dispatch time by
    the pool when a job's budget expired while it was still queued).

    Parameters
    ----------
    budget_s:
        The budget that was exceeded, in seconds.
    elapsed_s:
        Wall-clock time actually consumed when the guard fired.
    """

    retryable = False

    def __init__(
        self,
        message: str,
        *,
        budget_s: Optional[float] = None,
        elapsed_s: Optional[float] = None,
        launch_index: Optional[int] = None,
        n_operations: Optional[int] = None,
    ) -> None:
        super().__init__(
            message, launch_index=launch_index, n_operations=n_operations
        )
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


class PoolSaturatedError(ExecutionError):
    """The pool's bounded queue rejected a job (admission control).

    Parameters
    ----------
    capacity:
        The queue bound that was hit.
    pending:
        Jobs already queued when the submission was rejected.
    """

    retryable = False

    def __init__(
        self,
        message: str,
        *,
        capacity: Optional[int] = None,
        pending: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.capacity = capacity
        self.pending = pending


class NoHealthyWorkersError(ExecutionError):
    """Every pool worker is circuit-broken; the job cannot be placed."""

    retryable = False
