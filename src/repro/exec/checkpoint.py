"""Checkpoint/resume state for long MCMC runs.

A run killed mid-chain — by an unrecoverable device fault, a job-queue
preemption, or a plain ``kill`` — must resume *bit-identically*: the
resumed trace has to equal the trace an uninterrupted run would have
produced, sample for sample. That requires freezing everything the next
iteration depends on:

* the **current tree** (topology + branch lengths, serialised as Newick
  with 17 significant digits so every ``float64`` round-trips exactly),
* the **RNG state** (the NumPy bit-generator state dictionary — the
  proposal and acceptance draws continue the same stream),
* the **trace and accounting** accumulated so far (log-likelihood trace,
  acceptance counts, kernel-launch and modelled-device-time totals),
* the **run configuration** (iterations, seed, move probabilities), so a
  resume with mismatched parameters fails loudly instead of silently
  sampling from a different chain.

Checkpoints are JSON (human-inspectable, dependency-free) and written
atomically (temp file + rename) so a kill during the write never leaves a
truncated checkpoint behind.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from ..obs import get_recorder

__all__ = [
    "CheckpointError",
    "MCMCCheckpoint",
    "ShardCheckpoint",
    "atomic_write_json",
    "load_json_checkpoint",
]

PathLike = Union[str, Path]

#: Format version; bumped on any incompatible field change.
CHECKPOINT_VERSION = 1

#: Format version of shard checkpoints (independent of the MCMC format).
SHARD_CHECKPOINT_VERSION = 1

#: Significant digits that round-trip any float64 through decimal text.
NEWICK_PRECISION = 17


class CheckpointError(RuntimeError):
    """A checkpoint could not be read, or does not match the run."""


def _jsonable(value):
    """Recursively convert NumPy scalars so ``json`` can serialise the
    RNG bit-generator state dictionary."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def atomic_write_json(path: PathLike, payload) -> None:
    """Write ``payload`` as JSON via a temp file + rename.

    A kill at any point leaves either the previous checkpoint or the new
    one — never a truncated file. The payload is passed through
    :func:`_jsonable` first, so NumPy scalars serialise; ``float64``
    values round-trip exactly (``json`` emits ``repr`` shortest-form
    decimals).
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(_jsonable(payload)))
    os.replace(tmp, path)


def load_json_checkpoint(path: PathLike, *, expected_version: int) -> Dict:
    """Read a JSON checkpoint and validate its format version.

    Raises
    ------
    CheckpointError
        If the file is unreadable, truncated, or carries a different
        ``version`` field than ``expected_version``.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    version = payload.get("version")
    if version != expected_version:
        raise CheckpointError(
            f"checkpoint {path} has format version {version!r}; "
            f"this build reads version {expected_version}"
        )
    return payload


@dataclass
class MCMCCheckpoint:
    """Complete resumable state of a :func:`repro.inference.mcmc.run_mcmc`.

    ``iteration`` counts *completed* iterations: a checkpoint written
    after iteration ``k`` resumes the loop at iteration ``k`` (0-based),
    consuming the stored RNG state exactly where the killed run left it.
    """

    iteration: int
    iterations: int
    seed: int
    rng_state: Dict
    current_newick: str
    current_log_likelihood: float
    current_log_prior: float
    best_newick: str
    best_log_likelihood: float
    trace: List[float]
    accepted: int
    proposed: int
    rerootings: int
    kernel_launches: int
    device_seconds: float
    config: Dict[str, float] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Atomically write the checkpoint as JSON."""
        path = Path(path)
        obs = get_recorder()
        with obs.span(
            "checkpoint.save", category="checkpoint", iteration=self.iteration
        ):
            atomic_write_json(path, asdict(self))
        obs.count("repro_checkpoint_writes_total")

    @classmethod
    def load(cls, path: PathLike) -> "MCMCCheckpoint":
        """Read and validate a checkpoint.

        Raises
        ------
        CheckpointError
            If the file is unreadable, truncated, or from an
            incompatible format version.
        """
        payload = load_json_checkpoint(
            path, expected_version=CHECKPOINT_VERSION
        )
        try:
            return cls(**payload)
        except TypeError as exc:
            raise CheckpointError(
                f"checkpoint {path} is missing required fields: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def check_matches(self, *, iterations: int, seed: int, config: Dict) -> None:
        """Refuse to resume under different run parameters.

        A chain resumed with a different seed, iteration budget or move
        mix would silently sample a different posterior path; surface the
        mismatch instead.
        """
        if self.iterations != iterations or self.seed != seed:
            raise CheckpointError(
                f"checkpoint is for iterations={self.iterations} "
                f"seed={self.seed}, run requested iterations={iterations} "
                f"seed={seed}"
            )
        for key, value in config.items():
            stored = self.config.get(key)
            if stored is not None and stored != value:
                raise CheckpointError(
                    f"checkpoint was written with {key}={stored}, "
                    f"run requested {key}={value}"
                )

    def restore_rng(self) -> np.random.Generator:
        """Rebuild the generator exactly where the checkpoint froze it."""
        rng = np.random.default_rng()
        state = dict(self.rng_state)
        rng.bit_generator.state = state
        return rng


@dataclass
class ShardCheckpoint:
    """Durable record of completed shard results for one evaluation.

    A sharded likelihood evaluation (:class:`repro.exec.sharding.
    ShardedLikelihood`) saves one of these after every completed round so
    a crashed run resumes without recomputing finished shards. The
    ``completed`` map stores each finished shard's per-pattern weighted
    log-likelihood terms keyed by the shard index (as a string — JSON
    object keys are strings); ``float64`` values round-trip exactly
    through JSON's shortest-form decimal repr, so a resumed evaluation
    reduces to a bit-identical total.

    ``fingerprint`` hashes the inputs (tree, patterns, model); resuming
    against different inputs fails loudly instead of silently splicing
    results from a different problem.
    """

    n_patterns: int
    n_shards: int
    fingerprint: str
    completed: Dict[str, List[float]] = field(default_factory=dict)
    version: int = SHARD_CHECKPOINT_VERSION

    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Atomically write the shard checkpoint as JSON."""
        obs = get_recorder()
        with obs.span(
            "shard.checkpoint.save",
            category="checkpoint",
            completed=len(self.completed),
        ):
            atomic_write_json(path, asdict(self))
        obs.count("repro_shard_checkpoint_writes_total")

    @classmethod
    def load(cls, path: PathLike) -> "ShardCheckpoint":
        """Read and validate a shard checkpoint.

        Raises
        ------
        CheckpointError
            If the file is unreadable, truncated, or from an
            incompatible format version.
        """
        payload = load_json_checkpoint(
            path, expected_version=SHARD_CHECKPOINT_VERSION
        )
        try:
            return cls(**payload)
        except TypeError as exc:
            raise CheckpointError(
                f"shard checkpoint {path} is missing required fields: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def check_matches(
        self, *, n_patterns: int, n_shards: int, fingerprint: str
    ) -> None:
        """Refuse to resume against a different problem or shard plan."""
        if self.n_patterns != n_patterns or self.n_shards != n_shards:
            raise CheckpointError(
                f"shard checkpoint is for n_patterns={self.n_patterns} "
                f"n_shards={self.n_shards}, run requested "
                f"n_patterns={n_patterns} n_shards={n_shards}"
            )
        if self.fingerprint != fingerprint:
            raise CheckpointError(
                "shard checkpoint fingerprint does not match the current "
                "tree/patterns/model; refusing to splice results from a "
                "different problem"
            )
