"""Resilient execution facade over the likelihood engine.

:class:`ResilientInstance` wraps a :class:`~repro.beagle.instance.BeagleInstance`
(optionally already wrapped in a
:class:`~repro.exec.faults.FaultInjector`) and turns the engine's
fail-fast launch surface into a detect/retry/degrade/rescue pipeline,
mirroring the defensive layers BEAGLE and ExaML grew around their
likelihood cores:

* **Retry with bounded exponential backoff** — device faults and
  allocation failures re-attempt the same launch up to
  ``RetryPolicy.max_retries`` times; destination buffers are recomputed
  wholesale, so a retry after a mid-run fault is always safe.
* **Graceful degradation** — when a batched multi-operation launch keeps
  faulting, the set is downgraded to per-operation launches (each with
  its own retry budget), exactly the fallback from the paper's
  multi-operation kernel to BEAGLE's classic one-launch-per-operation
  mode.
* **Numerical verification** — after each launch the destination buffers
  are checked for NaN/Inf poisoning (cured by recomputation) and for
  underflow (per-pattern maximum below a dtype-aware threshold).
* **Rescaling escalation** — persistent underflow is deterministic, so
  :meth:`ResilientInstance.execute` rescues the evaluation by enabling
  scale buffers (:meth:`~repro.beagle.instance.BeagleInstance.enable_scaling`)
  and re-planning with per-node rescaling; the escalated plan is cached
  so subsequent evaluations pay no second detection round-trip.

:class:`FaultStats` counts every event (injected / detected / retried /
degraded / rescued / errors) and is surfaced next to the engine's
:class:`~repro.beagle.instance.InstanceStats`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..beagle.operations import Operation
from ..obs import get_recorder
from .errors import (
    AllocationError,
    DeviceFault,
    ExecutionError,
    KernelLaunchError,
    NumericalError,
    TransientDeviceError,
)
from .faults import FaultInjector

__all__ = ["seeded_jitter", "RetryPolicy", "FaultStats", "ResilientInstance"]


def seeded_jitter(seed: int, key: int, attempt: int) -> float:
    """One deterministic jitter draw in ``[0, 1)``.

    The single seeded jitter source shared by every backoff site in the
    stack — :meth:`RetryPolicy.backoff_seconds` and the serving front
    end's retry/shed scheduling (:mod:`repro.serve`). The draw is a pure
    function of ``(seed, key, attempt)``: a throwaway generator seeded
    from the triple acts as a hash, consuming no shared random stream
    and reading no clock. Two components configured with the same seed
    therefore jitter identically, and chaos runs with concurrent workers
    replay exactly.
    """
    return float(np.random.default_rng((seed, key, attempt)).random())


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the recovery pipeline.

    Parameters
    ----------
    max_retries:
        Re-attempts per launch before degrading (batched sets) or giving
        up (per-operation launches).
    backoff_base, backoff_factor, max_backoff:
        Bounded exponential backoff between re-attempts, in seconds:
        attempt ``i`` sleeps ``min(base · factor^(i−1), max_backoff)``.
        The default base of 0 disables sleeping — right for the CPU
        engine and for tests; real device deployments set ~1–10 ms.
    jitter, jitter_seed:
        Optional *seeded* jitter on the backoff, as a fraction in
        ``[0, 1]``: attempt ``i`` sleeps the exponential delay scaled by
        a factor drawn uniformly from ``[1 − jitter, 1 + jitter]``.
        Jitter decorrelates retry storms when many pool workers back off
        at once, and because the draw is a pure function of
        ``(jitter_seed, key, attempt)`` — no shared RNG stream, no wall
        clock — it keeps chaos runs with concurrent workers exactly
        replayable; see :meth:`backoff_seconds` for the contract.
    degrade:
        Fall back from a faulting batched launch to per-operation
        launches.
    rescale:
        Escalate persistent underflow to a rescaling plan
        (:meth:`ResilientInstance.execute` only — launch-level calls
        cannot re-plan).
    verify:
        Check destination buffers for NaN/Inf and underflow after every
        launch. Costs one reduction pass per destination; disabling it
        leaves only root-level detection.
    underflow_retries:
        Recomputations to attempt when underflow is detected before
        concluding it is deterministic (one recomputation distinguishes
        injected poisoning, which clears, from genuine underflow, which
        recurs).
    underflow_threshold:
        Per-pattern partials maximum below which a buffer counts as
        underflowed; ``None`` selects a dtype-aware default (1e-220 for
        float64, 1e-30 for float32).
    """

    max_retries: int = 3
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    max_backoff: float = 1.0
    jitter: float = 0.0
    jitter_seed: int = 0
    degrade: bool = True
    rescale: bool = True
    verify: bool = True
    underflow_retries: int = 1
    underflow_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.underflow_retries < 0:
            raise ValueError("retry counts must be non-negative")
        if min(self.backoff_base, self.backoff_factor, self.max_backoff) < 0:
            raise ValueError("backoff parameters must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def backoff_seconds(self, attempt: int, *, key: int = 0) -> float:
        """Sleep before re-attempt ``attempt`` (1-based).

        Determinism contract: the returned delay is a pure function of
        the policy's fields, ``key`` and ``attempt`` — it consumes no
        shared random stream and reads no clock. Concurrent workers
        therefore compute identical delays for identical
        ``(key, attempt)`` pairs regardless of thread interleaving, and
        a chaos run replays exactly under the same seeds. Pool workers
        pass their worker id as ``key`` so each worker jitters along its
        own (still deterministic) sequence.
        """
        if self.backoff_base <= 0.0:
            return 0.0
        delay = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.max_backoff,
        )
        if self.jitter > 0.0:
            unit = seeded_jitter(self.jitter_seed, key, attempt)
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return delay


@dataclass
class FaultStats:
    """Counters of the resilience pipeline, kept next to ``InstanceStats``.

    Attributes
    ----------
    injected:
        Faults a wrapped :class:`~repro.exec.faults.FaultInjector`
        introduced (0 when running on real faults only).
    detected:
        Fault events the resilience layer observed — caught typed errors
        plus buffer corruption found by verification.
    retried:
        Launch re-attempts performed.
    degraded:
        Batched sets downgraded to per-operation launches.
    rescued:
        Evaluations recovered through rescaling escalation — and, at the
        pool level, jobs re-executed on a healthy worker after a sentinel
        health check exposed the original worker as silently corrupting.
    errors:
        Typed :class:`~repro.exec.errors.ExecutionError`\\ s surfaced to
        the caller (recovery exhausted or disabled).
    rerouted:
        Pool level: jobs re-dispatched to a different worker after the
        assigned worker failed them (failover).
    shed:
        Pool level: jobs rejected by admission control (bounded queue)
        or dropped because their deadline expired while still queued.
    surfaced:
        Pool level: jobs whose typed error reached the caller — no
        healthy worker left to reroute to, or a spent deadline.
    """

    injected: int = 0
    detected: int = 0
    retried: int = 0
    degraded: int = 0
    rescued: int = 0
    errors: int = 0
    rerouted: int = 0
    shed: int = 0
    surfaced: int = 0
    injected_by_class: Dict[str, int] = field(default_factory=dict)
    detected_by_class: Dict[str, int] = field(default_factory=dict)

    def note(self, exc: ExecutionError) -> None:
        """Record one detected fault under its class label."""
        self.detected += 1
        label = _class_label(exc)
        self.detected_by_class[label] = self.detected_by_class.get(label, 0) + 1

    def merge(self, other: "FaultStats") -> None:
        """Fold another ledger into this one (pool aggregation)."""
        self.injected += other.injected
        self.detected += other.detected
        self.retried += other.retried
        self.degraded += other.degraded
        self.rescued += other.rescued
        self.errors += other.errors
        self.rerouted += other.rerouted
        self.shed += other.shed
        self.surfaced += other.surfaced
        for label, count in other.injected_by_class.items():
            self.injected_by_class[label] = (
                self.injected_by_class.get(label, 0) + count
            )
        for label, count in other.detected_by_class.items():
            self.detected_by_class[label] = (
                self.detected_by_class.get(label, 0) + count
            )

    def reset(self) -> None:
        """Zero every counter."""
        self.injected = 0
        self.detected = 0
        self.retried = 0
        self.degraded = 0
        self.rescued = 0
        self.errors = 0
        self.rerouted = 0
        self.shed = 0
        self.surfaced = 0
        self.injected_by_class = {}
        self.detected_by_class = {}

    def format(self) -> str:
        """One-line summary for logs and the ``synthetictest`` output."""
        line = (
            f"faults: injected={self.injected} detected={self.detected} "
            f"retried={self.retried} degraded={self.degraded} "
            f"rescued={self.rescued} errors={self.errors}"
        )
        if self.rerouted or self.shed or self.surfaced:
            line += (
                f" rerouted={self.rerouted} shed={self.shed} "
                f"surfaced={self.surfaced}"
            )
        return line


def _class_label(exc: ExecutionError) -> str:
    if isinstance(exc, KernelLaunchError):
        return "launch"
    if isinstance(exc, TransientDeviceError):
        return "transient"
    if isinstance(exc, DeviceFault):
        return "device"
    if isinstance(exc, AllocationError):
        return "alloc"
    if isinstance(exc, NumericalError):
        return exc.kind
    return "other"


def _default_threshold(dtype: np.dtype) -> float:
    if np.dtype(dtype) == np.dtype(np.float32):
        return 1e-30
    return 1e-220


class ResilientInstance:
    """Retry/degrade/rescue wrapper around an engine instance.

    Parameters
    ----------
    inner:
        A :class:`~repro.beagle.instance.BeagleInstance` or a
        :class:`~repro.exec.faults.FaultInjector` around one. Everything
        except the launch surface delegates to it unchanged, so a
        ``ResilientInstance`` drops into
        :func:`repro.core.planner.execute_plan` and
        :class:`~repro.inference.likelihood.TreeLikelihood` directly.
    policy:
        The :class:`RetryPolicy`; defaults cover retry + degrade +
        rescale with verification on.
    sleep:
        Injection point for the backoff sleeper (tests pass a recorder).
    stats:
        Optional shared :class:`FaultStats` ledger. Pool workers pass
        their per-worker ledger so counts accumulate across the many
        short-lived facades a worker builds (one per job).
    backoff_key:
        Jitter key forwarded to :meth:`RetryPolicy.backoff_seconds`;
        pool workers pass their worker id so concurrent workers jitter
        along distinct deterministic sequences.
    """

    def __init__(
        self,
        inner,
        policy: Optional[RetryPolicy] = None,
        *,
        sleep: Optional[Callable[[float], None]] = None,
        stats: Optional[FaultStats] = None,
        backoff_key: int = 0,
    ) -> None:
        self._inner = inner
        self.policy = policy or RetryPolicy()
        self._sleep = sleep or time.sleep
        self._stats = stats if stats is not None else FaultStats()
        self._backoff_key = backoff_key
        self._in_execute = False
        # plan -> escalated (scaling) plan, keyed by identity; the plan
        # object itself is retained so the id cannot be recycled.
        self._escalations: Dict[int, Tuple[object, object]] = {}
        self._underflow_threshold = (
            self.policy.underflow_threshold
            if self.policy.underflow_threshold is not None
            else _default_threshold(inner.dtype)
        )

    # -- delegation ----------------------------------------------------
    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    @property
    def inner(self):
        """The wrapped instance (injector or bare engine)."""
        return self._inner

    @property
    def fault_stats(self) -> FaultStats:
        """Resilience counters, with injector counts synchronised in."""
        injector = self._injector()
        if injector is not None:
            self._stats.injected = injector.log.injected
            self._stats.injected_by_class = dict(injector.log.by_class)
        return self._stats

    def _injector(self) -> Optional[FaultInjector]:
        if isinstance(self._inner, FaultInjector):
            return self._inner
        return None

    # -- launch surface ------------------------------------------------
    def update_partials_set(self, operations) -> None:
        """Execute one operation set with the full recovery pipeline."""
        ops = list(operations)
        if not ops:
            return
        try:
            self._launch(ops, batched=True)
        except ExecutionError:
            if not self._in_execute:
                self._stats.errors += 1
            raise

    def update_partials_serial(self, operations) -> None:
        """Per-operation launches, each with its own retry budget."""
        try:
            for op in operations:
                self._launch([op], batched=False)
        except ExecutionError:
            if not self._in_execute:
                self._stats.errors += 1
            raise

    # -- recovery pipeline ---------------------------------------------
    def _launch(self, ops: List[Operation], *, batched: bool) -> None:
        try:
            self._launch_with_retries(ops, batched=batched)
        except ExecutionError as exc:
            if not exc.retryable:
                # A spent deadline (or other terminal condition) cannot
                # be cured by degradation — propagate immediately.
                raise
            if not (batched and self.policy.degrade and len(ops) > 1):
                raise
            # Graceful degradation: the batched path keeps faulting, so
            # run the set one operation per launch (§VII-C's baseline
            # mode), each with a fresh retry budget.
            self._stats.degraded += 1
            get_recorder().count("repro_degraded_sets_total")
            for op in ops:
                self._launch([op], batched=False)

    def _launch_with_retries(self, ops: List[Operation], *, batched: bool) -> None:
        failures = 0
        underflows = 0
        while True:
            try:
                self._attempt(ops, batched=batched)
                return
            except (DeviceFault, AllocationError, NumericalError) as exc:
                self._stats.note(exc)
                failures += 1
                if isinstance(exc, NumericalError) and exc.kind == "underflow":
                    underflows += 1
                    if underflows > self.policy.underflow_retries:
                        # Recomputation did not clear it: deterministic
                        # underflow. Degrading cannot help; rescaling
                        # escalation (execute()) is the only cure.
                        raise
                if failures > self.policy.max_retries:
                    raise
                self._stats.retried += 1
                get_recorder().count("repro_retry_attempts_total")
                delay = self.policy.backoff_seconds(
                    failures, key=self._backoff_key
                )
                if delay > 0.0:
                    self._sleep(delay)

    def _attempt(self, ops: List[Operation], *, batched: bool) -> None:
        if batched:
            self._inner.update_partials_set(ops)
        else:
            self._inner.update_partials_serial(ops)
        if self.policy.verify:
            self._verify_destinations(ops)

    def _verify_destinations(self, ops: List[Operation]) -> None:
        """Detect NaN/Inf poisoning and underflow in fresh destinations."""
        poisoned: List[int] = []
        underflowed: List[int] = []
        tip_count = self._inner.tip_count
        partials = self._inner._partials
        for op in ops:
            per_pattern_max = partials[op.destination - tip_count].max(axis=(0, 2))
            if not np.isfinite(per_pattern_max).all():
                poisoned.append(op.destination)
            elif float(per_pattern_max.min()) < self._underflow_threshold:
                underflowed.append(op.destination)
        if poisoned:
            raise NumericalError(
                f"non-finite partials in buffers {poisoned}",
                kind="nan",
                buffers=poisoned,
                n_operations=len(ops),
            )
        if underflowed:
            raise NumericalError(
                f"partials underflow in buffers {underflowed}",
                kind="underflow",
                buffers=underflowed,
                n_operations=len(ops),
            )

    # -- plan-level execution with rescaling escalation ----------------
    def execute(self, plan, *, update_matrices: bool = True) -> float:
        """Run an execution plan end to end, recovering what is
        recoverable; returns the root log-likelihood.

        Equivalent to :func:`repro.core.planner.execute_plan` on a
        healthy device. On top of the per-launch pipeline it detects
        underflow that reached the root (non-finite or vanishing
        likelihood) and — when ``policy.rescale`` is set — escalates to
        a rescaling plan built from the same tree. Escalations are
        remembered, so later calls with the same plan object run the
        scaled plan directly.
        """
        escalated = self._escalations.get(id(plan))
        if escalated is not None:
            plan = escalated[1]
        self._in_execute = True
        try:
            return self._execute_guarded(plan, update_matrices)
        finally:
            self._in_execute = False

    def _execute_guarded(self, plan, update_matrices: bool) -> float:
        from ..core.planner import execute_plan

        try:
            ll = execute_plan(self, plan, update_matrices=update_matrices)
        except NumericalError as exc:
            if not self._escalatable(exc, plan):
                self._stats.errors += 1
                raise
            return self._rescue(plan, update_matrices)
        except ExecutionError:
            # Retry/degradation exhausted on a device fault: it surfaces
            # to the caller, counted exactly once.
            self._stats.errors += 1
            raise
        if not self._suspicious(ll, plan):
            return ll
        # Root-level detection (covers verify=False and silent poisoning
        # of the root buffer): one clean recomputation first — injected
        # corruption clears, genuine underflow recurs.
        self._stats.detected += 1
        self._stats.detected_by_class["underflow"] = (
            self._stats.detected_by_class.get("underflow", 0) + 1
        )
        self._stats.retried += 1
        get_recorder().count("repro_retry_attempts_total")
        try:
            ll = execute_plan(self, plan, update_matrices=update_matrices)
        except NumericalError as exc:
            if not self._escalatable(exc, plan):
                self._stats.errors += 1
                raise
            return self._rescue(plan, update_matrices)
        except ExecutionError:
            self._stats.errors += 1
            raise
        if not self._suspicious(ll, plan):
            return ll
        if plan.scaling or not self.policy.rescale:
            self._stats.errors += 1
            raise NumericalError(
                "likelihood underflow persists and rescaling escalation "
                "is unavailable",
                kind="underflow",
            )
        return self._rescue(plan, update_matrices)

    def _escalatable(self, exc: NumericalError, plan) -> bool:
        return (
            self.policy.rescale
            and exc.kind == "underflow"
            and not plan.scaling
        )

    def _suspicious(self, ll: float, plan) -> bool:
        """Did underflow reach the root reduction?"""
        if not math.isfinite(ll):
            return True
        if plan.scaling:
            return False
        slot = plan.root_buffer - self._inner.tip_count
        per_pattern_max = self._inner._partials[slot].max(axis=(0, 2))
        return float(per_pattern_max.min()) < self._underflow_threshold

    def _rescue(self, plan, update_matrices: bool) -> float:
        """Rescaling escalation: enable scale buffers, re-plan, re-run."""
        from ..core.planner import execute_plan, make_plan

        tree = plan.tree
        self._inner.enable_scaling(tree.n_tips)
        scaled = make_plan(tree, plan.mode, scaling=True)
        try:
            ll = execute_plan(self, scaled, update_matrices=update_matrices)
        except ExecutionError:
            self._stats.errors += 1
            raise
        if not math.isfinite(ll):
            self._stats.errors += 1
            raise NumericalError(
                "likelihood is non-finite even after rescaling escalation",
                kind="underflow",
            )
        self._stats.rescued += 1
        get_recorder().count("repro_rescues_total")
        self._escalations[id(plan)] = (plan, scaled)
        return ll

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResilientInstance retries={self.policy.max_retries} "
            f"degrade={self.policy.degrade} rescale={self.policy.rescale} "
            f"around {self._inner!r}>"
        )
