"""Fault-tolerant site-pattern sharding with a bit-stable reduction.

The log-likelihood is a weighted sum over site patterns, so the pattern
axis is embarrassingly parallel: :class:`ShardedLikelihood` partitions
the pattern matrix into contiguous, weight-balanced shards, evaluates
each shard on its own (small) engine instance through the existing
:class:`~repro.exec.pool.LikelihoodPool` — reusing admission control,
deadlines, circuit breakers and the no-silent-drop ledger — and combines
the per-pattern results through a **deterministic reduction tree**.

Bit-stability contract
----------------------
Each shard returns its per-pattern *weighted log terms*
(``weights[p] · log L_p``, elementwise). Per-pattern arithmetic in the
engine is independent of the other patterns in the instance, so for
shards at least :data:`MIN_SHARD_WIDTH` patterns wide the terms are
bit-identical to the corresponding slice of a full-matrix evaluation
(narrower instances can take different BLAS kernel paths —
:func:`plan_shards` therefore enforces the width floor). The combiner
concatenates shard terms in canonical pattern order and reduces them
with :func:`deterministic_sum` — a fixed-shape adjacent-pairs binary
tree whose shape depends only on the pattern count. The total is
therefore bit-identical no matter the shard count, the completion
order, degraded-fleet routing, retries, speculation, or a checkpoint
resume.

Robustness
----------
* **Bounded retry with failover** — a shard whose job surfaces a typed
  error (worker death, deadline) is re-submitted in the next round; the
  pool's own reroute machinery handles within-round failover.
* **Straggler handling** — per-shard deadlines cancel stragglers at a
  launch boundary; the shard retries with a grown budget. With
  ``speculate=True`` every pending shard is submitted twice and the
  first valid result wins; the loser is reconciled in the ledger (and
  disagreeing duplicates invalidate each other — neither is trusted).
* **Per-shard rescaling escalation** — a shard whose terms underflow to
  ``-inf`` is re-evaluated alone with scaling enabled; the scaled terms
  are merged *only into the non-finite slots*, so healthy patterns keep
  their original bits and one underflowing shard cannot poison the run.
* **Checkpointing** — completed shard terms are persisted atomically
  (:class:`~repro.exec.checkpoint.ShardCheckpoint`) after every round; a
  resumed run recomputes nothing that already finished (the
  ``recomputed_completed`` ledger counter stays zero, and the gate in
  ``synthetictest`` enforces it).

Shard-scoped chaos (:class:`~repro.exec.faults.ShardFaultSchedule`) is
keyed on ``(shard, attempt)`` so injected faults are independent of
scheduling history and a replay reproduces the exact fault sequence.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.planner import ExecutionPlan, create_instance, make_plan
from ..data.patterns import PatternData, slice_patterns
from ..obs import get_recorder
from ..trees import Tree
from ..trees.newick import write_newick
from .checkpoint import NEWICK_PRECISION, ShardCheckpoint
from .errors import DeadlineExceeded, ExecutionError
from .faults import ShardFaultSchedule, ShardFaultSpec
from .pool import JobContext, JobOutcome, LikelihoodPool

__all__ = [
    "MIN_SHARD_WIDTH",
    "Shard",
    "ShardLedger",
    "ShardAborted",
    "ShardFailure",
    "ShardResult",
    "ShardedLikelihood",
    "deterministic_sum",
    "plan_shards",
    "reference_terms",
]

#: Narrow pattern blocks can route through different BLAS kernels than a
#: full-width evaluation, producing last-ulp drift; widths of at least 4
#: are empirically bit-stable at every offset, and 8 keeps a 2× margin.
MIN_SHARD_WIDTH = 8


class ShardFailure(ExecutionError):
    """A shard exhausted its retry budget without a valid result."""

    retryable = False


class ShardAborted(RuntimeError):
    """Evaluation stopped deliberately after ``abort_after`` shards.

    Raised *after* the checkpoint for the completed shards is written —
    the crash-simulation hook used by the ``shard-soak`` CI gate.
    """


@dataclass(frozen=True)
class Shard:
    """One contiguous pattern range ``[start, stop)``."""

    index: int
    start: int
    stop: int

    @property
    def width(self) -> int:
        """Patterns covered by this shard."""
        return self.stop - self.start


def plan_shards(
    n_patterns: int,
    n_shards: int,
    *,
    weights: Optional[np.ndarray] = None,
    min_width: int = MIN_SHARD_WIDTH,
) -> List[Shard]:
    """Partition ``n_patterns`` into up to ``n_shards`` contiguous shards.

    With ``weights`` the cut points follow cumulative-weight quantiles,
    so shards carry (approximately) equal *site* counts even when pattern
    multiplicities are skewed; otherwise patterns are split evenly. The
    effective shard count is clamped so every shard spans at least
    ``min_width`` patterns (see :data:`MIN_SHARD_WIDTH` for why), and the
    plan is a deterministic function of its arguments.
    """
    if n_patterns < 1:
        raise ValueError("need at least one pattern")
    if n_shards < 1:
        raise ValueError("need at least one shard")
    if min_width < 1:
        raise ValueError("min_width must be positive")
    if weights is not None:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n_patterns,):
            raise ValueError("weights length must equal pattern count")
    k = min(n_shards, max(1, n_patterns // min_width))
    if k == 1:
        return [Shard(0, 0, n_patterns)]
    if weights is None:
        base, extra = divmod(n_patterns, k)
        bounds = [0]
        for i in range(k):
            bounds.append(bounds[-1] + base + (1 if i < extra else 0))
    else:
        cum = np.cumsum(w)
        total = float(cum[-1])
        if total <= 0.0:
            return plan_shards(
                n_patterns, n_shards, weights=None, min_width=min_width
            )
        targets = total * np.arange(1, k) / k
        cuts = np.searchsorted(cum, targets, side="left") + 1
        bounds = [0] + [int(c) for c in cuts] + [n_patterns]
        # Enforce the width floor in both directions; k·min_width ≤
        # n_patterns guarantees a feasible assignment exists.
        for i in range(1, k):
            bounds[i] = max(bounds[i], bounds[i - 1] + min_width)
        for i in range(k - 1, 0, -1):
            bounds[i] = min(bounds[i], bounds[i + 1] - min_width)
    return [Shard(i, bounds[i], bounds[i + 1]) for i in range(k)]


def deterministic_sum(values: np.ndarray) -> float:
    """Fixed-shape pairwise summation: adjacent pairs, bottom up.

    The reduction tree's shape depends only on ``len(values)`` — odd
    levels are padded with ``0.0`` — so the floating-point expression is
    identical however the inputs were produced, and (as a pairwise sum)
    its rounding error grows as ``O(log n)`` instead of the naive
    ``O(n)``.
    """
    a = np.ascontiguousarray(values, dtype=np.float64)
    if a.size == 0:
        return 0.0
    while a.size > 1:
        if a.size % 2:
            a = np.concatenate([a, [0.0]])
        a = a[0::2] + a[1::2]
    return float(a[0])


def problem_fingerprint(
    tree: Tree, model, patterns: PatternData, rates=None
) -> str:
    """SHA-256 digest identifying a (tree, model, data, rates) problem.

    Stored in shard checkpoints so a resume against different inputs is
    refused instead of silently splicing results from another problem.
    Branch lengths round-trip at 17 significant digits, so two trees
    hash equal iff their ``float64`` lengths are equal.
    """
    h = hashlib.sha256()
    h.update(
        write_newick(tree, precision=NEWICK_PRECISION).encode("utf-8")
    )
    h.update(patterns.codes.tobytes())
    h.update(patterns.weights.tobytes())
    h.update(model.name.encode("utf-8"))
    eigen = model.eigen
    h.update(eigen.values.tobytes())
    h.update(eigen.vectors.tobytes())
    if rates is not None:
        h.update(np.asarray(rates.rates, dtype=np.float64).tobytes())
        h.update(np.asarray(rates.probabilities, dtype=np.float64).tobytes())
    return h.hexdigest()


def reference_terms(
    tree: Tree,
    model,
    patterns: PatternData,
    *,
    rates=None,
    mode: str = "concurrent",
    dtype=np.float64,
    backend=None,
) -> np.ndarray:
    """Per-pattern weighted log terms from one full-matrix instance.

    The single-instance oracle the sharded engine must match bit-for-bit
    (reduce with :func:`deterministic_sum` for the total). ``backend``
    selects the kernel backend for the oracle instance.
    """
    instance = create_instance(
        tree,
        model,
        patterns,
        rates=rates,
        scaling=False,
        dtype=dtype,
        backend=backend,
    )
    plan = make_plan(tree, mode, scaling=False)
    instance.invalidate_partials()
    instance.update_transition_matrices(
        0, plan.matrix_indices, plan.branch_lengths
    )
    for op_set in plan.operation_sets:
        instance.update_partials_set(op_set)
    logs = instance.site_log_likelihoods(plan.root_buffer)
    return patterns.weights * logs


@dataclass
class ShardResult:
    """What one shard job hands back through the pool.

    ``terms`` is ``None`` when an injected fault consumed the attempt;
    ``fault`` records the injected class (if any); ``escalated`` is True
    when the worker's resilient facade enabled scaling mid-run.
    """

    shard_index: int
    attempt: int
    terms: Optional[np.ndarray] = None
    fault: Optional[str] = None
    scaled: bool = False
    escalated: bool = False


@dataclass
class ShardLedger:
    """Shard-level accounting: every submission reaches one bucket.

    Identities (checked by :meth:`imbalances`)::

        resumed + computed          == total_shards      (on success)
        submissions                 == ok + failed + shed
        ok                          == wins + wasted + faulted + invalidated

    ``recomputed_completed`` counts shards re-executed despite a
    checkpoint already holding their result — it must stay zero, and the
    ``shard-soak`` CI gate fails the run if it does not.
    """

    total_shards: int = 0
    resumed: int = 0
    computed: int = 0
    submissions: int = 0
    ok: int = 0
    failed: int = 0
    shed: int = 0
    wins: int = 0
    wasted: int = 0
    faulted: int = 0
    invalidated: int = 0
    retries: int = 0
    disagreements: int = 0
    stragglers_cancelled: int = 0
    escalations: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    recomputed_completed: int = 0

    def record_injection(self, fault: str) -> None:
        """Count one injected shard-scoped fault."""
        self.injected[fault] = self.injected.get(fault, 0) + 1

    def imbalances(self) -> List[str]:
        """Violated ledger identities (empty means the ledger closes)."""
        problems: List[str] = []
        if self.resumed + self.computed != self.total_shards:
            problems.append(
                f"resumed={self.resumed} + computed={self.computed} "
                f"!= total_shards={self.total_shards}"
            )
        if self.submissions != self.ok + self.failed + self.shed:
            problems.append(
                f"submissions={self.submissions} != ok={self.ok} "
                f"+ failed={self.failed} + shed={self.shed}"
            )
        if self.ok != self.wins + self.wasted + self.faulted + self.invalidated:
            problems.append(
                f"ok={self.ok} != wins={self.wins} + wasted={self.wasted} "
                f"+ faulted={self.faulted} + invalidated={self.invalidated}"
            )
        return problems

    def balances(self) -> bool:
        """Does every identity close?"""
        return not self.imbalances()

    def format(self) -> str:
        """One-line summary for logs and ``synthetictest`` output."""
        return (
            f"shards: total={self.total_shards} resumed={self.resumed} "
            f"computed={self.computed} submissions={self.submissions} "
            f"ok={self.ok} failed={self.failed} shed={self.shed} "
            f"wins={self.wins} wasted={self.wasted} faulted={self.faulted} "
            f"invalidated={self.invalidated} retries={self.retries} "
            f"disagreements={self.disagreements} "
            f"stragglers={self.stragglers_cancelled} "
            f"escalations={self.escalations} "
            f"recomputed_completed={self.recomputed_completed} "
            f"injected={dict(sorted(self.injected.items()))}"
        )


class ShardedLikelihood:
    """Data-parallel likelihood over site-pattern shards.

    Implements the evaluator protocol ``run_mcmc`` expects
    (``log_likelihood`` / ``with_tree`` / ``tree`` / ``n_launches`` /
    ``plan`` / ``modelled_seconds``), so it drops in wherever a
    :class:`~repro.inference.likelihood.TreeLikelihood` does.

    Parameters
    ----------
    tree, model, patterns, rates:
        The likelihood problem. ``patterns`` is the full (compressed)
        matrix; shards slice it lazily per job, so peak per-worker
        memory is one shard's instance, not the whole matrix.
    n_shards:
        Requested shard count; clamped by the :data:`MIN_SHARD_WIDTH`
        floor (see :attr:`shards` for the effective plan).
    pool:
        The :class:`~repro.exec.pool.LikelihoodPool` to fan out through;
        a private 2-worker inline pool is created when omitted.
    retries:
        Extra rounds a shard may consume after its first failed one.
    speculate:
        Submit every pending shard twice; first valid result wins, the
        duplicate is reconciled as ``wasted`` (disagreement invalidates
        both and the shard retries).
    straggler_budget_s:
        Per-shard wall-clock budget. The clock starts at submission, so
        size it for a full round, not one evaluation. Retried shards get
        ``straggler_growth``× more budget per round.
    checkpoint_path:
        Where to persist completed shard terms (atomic JSON) after every
        round; ``resume=True`` loads it and skips finished shards.
    abort_after:
        Stop (with :class:`ShardAborted`) once this many shards have
        completed *in this run* — deterministic crash simulation for
        resume tests.
    fault_spec:
        Shard-scoped chaos stream (:class:`~repro.exec.faults.ShardFaultSpec`).
    order_seed:
        Permute each round's submission order (deterministically per
        seed); the result is bit-identical regardless — that is the
        point of the reduction contract.
    """

    def __init__(
        self,
        tree: Tree,
        model,
        patterns: PatternData,
        *,
        n_shards: int = 4,
        pool: Optional[LikelihoodPool] = None,
        rates=None,
        mode: str = "concurrent",
        min_width: int = MIN_SHARD_WIDTH,
        retries: int = 2,
        speculate: bool = False,
        straggler_budget_s: Optional[float] = None,
        straggler_growth: float = 2.0,
        checkpoint_path=None,
        resume: bool = False,
        abort_after: Optional[int] = None,
        fault_spec: Optional[ShardFaultSpec] = None,
        order_seed: Optional[int] = None,
        dtype=np.float64,
        backend=None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if straggler_growth < 1.0:
            raise ValueError("straggler_growth must be >= 1")
        self.tree = tree
        self.model = model
        self.patterns = patterns
        self.rates = rates
        self.mode = mode
        self.min_width = min_width
        self.retries = retries
        self.speculate = speculate
        self.straggler_budget_s = straggler_budget_s
        self.straggler_growth = straggler_growth
        self.checkpoint_path = checkpoint_path
        self.resume = resume
        self.abort_after = abort_after
        self.fault_spec = fault_spec
        self.order_seed = order_seed
        self.dtype = dtype
        # Kernel-backend spec, forwarded to every shard instance (and
        # the oracle) so the whole evaluation runs one backend.
        self.backend = backend
        self._owns_pool = pool is None
        self.pool = pool or LikelihoodPool(
            n_workers=2, executor="inline", deadline_s=None
        )
        self.shards = plan_shards(
            patterns.n_patterns,
            n_shards,
            weights=patterns.weights,
            min_width=min_width,
        )
        self.ledger = ShardLedger(total_shards=len(self.shards))
        tree.assign_indices()
        self._plan = make_plan(tree, mode, scaling=False)
        self._plan_scaled: Optional[ExecutionPlan] = None
        self.fingerprint = problem_fingerprint(tree, model, patterns, rates)
        self._terms: Optional[np.ndarray] = None

    # -- evaluator protocol -------------------------------------------
    @property
    def n_shards(self) -> int:
        """Effective shard count (after the width-floor clamp)."""
        return len(self.shards)

    @property
    def plan(self) -> ExecutionPlan:
        """The per-shard execution plan (identical for every shard)."""
        return self._plan

    @property
    def n_launches(self) -> int:
        """Kernel launches of one fault-free evaluation (all shards)."""
        return self.n_shards * self._plan.n_launches

    def modelled_seconds(self, spec) -> float:
        """Device-model time of one evaluation, summed over shards."""
        from ..gpu.perfmodel import WorkloadDims, time_set_sizes

        total = 0.0
        for shard in self.shards:
            dims = WorkloadDims(
                patterns=shard.width,
                states=self.model.n_states,
                categories=self.rates.n_categories if self.rates else 1,
            )
            total += time_set_sizes(spec, dims, self._plan.set_sizes).seconds
        return total

    def with_tree(self, tree: Tree) -> "ShardedLikelihood":
        """A new sharded evaluator for another tree; shares pool/config."""
        return ShardedLikelihood(
            tree,
            self.model,
            self.patterns,
            n_shards=len(self.shards),
            pool=self.pool,
            rates=self.rates,
            mode=self.mode,
            min_width=self.min_width,
            retries=self.retries,
            speculate=self.speculate,
            straggler_budget_s=self.straggler_budget_s,
            straggler_growth=self.straggler_growth,
            fault_spec=self.fault_spec,
            order_seed=self.order_seed,
            dtype=self.dtype,
            backend=self.backend,
        )

    # -- the reduction -------------------------------------------------
    def log_likelihood(self) -> float:
        """Evaluate all shards and reduce deterministically."""
        terms = self.evaluate()
        obs = get_recorder()
        with obs.span(
            "shard.reduce", category="shard", patterns=terms.size
        ):
            return deterministic_sum(terms)

    def reference_log_likelihood(self) -> float:
        """The single-instance oracle under the same reduction."""
        return deterministic_sum(
            reference_terms(
                self.tree,
                self.model,
                self.patterns,
                rates=self.rates,
                mode=self.mode,
                dtype=self.dtype,
                backend=self.backend,
            )
        )

    @property
    def terms(self) -> Optional[np.ndarray]:
        """Per-pattern weighted terms of the last :meth:`evaluate`."""
        return self._terms

    # -- evaluation ----------------------------------------------------
    def evaluate(self) -> np.ndarray:
        """Run every shard to completion; returns the full terms vector.

        Raises
        ------
        ShardFailure
            When a shard exhausts its retry budget.
        ShardAborted
            When ``abort_after`` completions were reached (after the
            checkpoint was written).
        """
        obs = get_recorder()
        with obs.span(
            "shard.evaluate",
            category="shard",
            shards=self.n_shards,
            patterns=self.patterns.n_patterns,
        ):
            terms = self._evaluate_body()
        obs.count("repro_shard_evaluations_total")
        self._terms = terms
        return terms

    def _evaluate_body(self) -> np.ndarray:
        obs = get_recorder()
        ledger = self.ledger = ShardLedger(total_shards=len(self.shards))
        schedule = (
            ShardFaultSchedule(self.fault_spec) if self.fault_spec else None
        )
        completed: Dict[int, np.ndarray] = {}
        if self.resume and self.checkpoint_path is not None:
            completed = self._load_resume()
            ledger.resumed = len(completed)
            if ledger.resumed:
                obs.count("repro_shard_resumed_total", ledger.resumed)
        computed_this_run = 0
        provisional: Dict[int, np.ndarray] = {}
        attempts: Dict[int, int] = {s.index: 0 for s in self.shards}
        rounds: Dict[int, int] = {s.index: 0 for s in self.shards}
        last_error: Dict[int, BaseException] = {}
        round_no = 0
        while True:
            remaining = [
                s.index for s in self.shards if s.index not in completed
            ]
            if not remaining:
                break
            order = self._round_order(remaining, round_no)
            if self.abort_after is not None:
                # Cap each round's submissions so a round boundary (and
                # therefore a checkpoint) exists exactly at the abort
                # point — deterministic crash simulation.
                order = order[: max(1, self.abort_after - computed_this_run)]
            outcomes = self._submit_round(
                order, attempts, provisional, schedule, ledger
            )
            retry = self._process_round(
                outcomes,
                completed,
                provisional,
                last_error,
                ledger,
            )
            newly_done = [si for si in order if si not in retry]
            computed_this_run += len(newly_done)
            ledger.computed = computed_this_run
            for si in retry:
                rounds[si] += 1
                ledger.retries += 1
                obs.count("repro_shard_retries_total")
                if rounds[si] > self.retries:
                    raise ShardFailure(
                        f"shard {si} failed after {rounds[si]} rounds "
                        f"(last error: {last_error.get(si)})"
                    )
            if self.checkpoint_path is not None and newly_done:
                self._save_checkpoint(completed)
            if (
                self.abort_after is not None
                and computed_this_run >= self.abort_after
                and len(completed) < len(self.shards)
            ):
                raise ShardAborted(
                    f"aborted after {computed_this_run} completed shards "
                    f"({len(self.shards) - len(completed)} still pending)"
                )
            round_no += 1
        ledger.computed = len(completed) - ledger.resumed
        terms = np.empty(self.patterns.n_patterns, dtype=np.float64)
        for shard in self.shards:
            terms[shard.start : shard.stop] = completed[shard.index]
        return terms

    # -- rounds --------------------------------------------------------
    def _round_order(self, pending: List[int], round_no: int) -> List[int]:
        if self.order_seed is None:
            return list(pending)
        rng = np.random.default_rng((self.order_seed, round_no))
        return [pending[i] for i in rng.permutation(len(pending))]

    def _submit_round(
        self,
        order: List[int],
        attempts: Dict[int, int],
        provisional: Dict[int, np.ndarray],
        schedule: Optional[ShardFaultSchedule],
        ledger: ShardLedger,
    ) -> List[Tuple[int, bool, JobOutcome]]:
        """Submit one round (respecting pool admission control) and
        drain it; returns ``(shard_index, scaled, outcome)`` triples in
        submission order."""
        by_shard = {s.index: s for s in self.shards}
        plan: List[Tuple[int, bool, int]] = []  # (shard, scaled, budget_exp)
        for si in order:
            scaled = si in provisional
            copies = 2 if (self.speculate and not scaled) else 1
            for _ in range(copies):
                plan.append((si, scaled, attempts[si]))
        capacity = self.pool.max_pending or len(plan)
        results: List[Tuple[int, bool, JobOutcome]] = []
        pos = 0
        while pos < len(plan):
            chunk = plan[pos : pos + capacity]
            submitted: List[Tuple[int, bool, int]] = []
            for si, scaled, _ in chunk:
                shard = by_shard[si]
                attempt = attempts[si]
                attempts[si] += 1
                ledger.submissions += 1
                get_recorder().count("repro_shard_jobs_total")
                kwargs = {}
                if self.straggler_budget_s is not None:
                    kwargs["deadline_s"] = self.straggler_budget_s * (
                        self.straggler_growth ** min(attempt, 8)
                    )
                job_index = self.pool.submit(
                    self._job_fn(shard, attempt, scaled, schedule, ledger),
                    label=f"shard-{si}/{len(self.shards)}#{attempt}",
                    **kwargs,
                )
                submitted.append((si, scaled, job_index))
            drained = {o.index: o for o in self.pool.drain()}
            for si, scaled, job_index in submitted:
                results.append((si, scaled, drained[job_index]))
            pos += capacity
        return results

    def _job_fn(
        self,
        shard: Shard,
        attempt: int,
        scaled: bool,
        schedule: Optional[ShardFaultSchedule],
        ledger: ShardLedger,
    ) -> Callable[[JobContext], ShardResult]:
        tree, model, rates, dtype, backend = (
            self.tree,
            self.model,
            self.rates,
            self.dtype,
            self.backend,
        )

        def job(ctx: JobContext) -> ShardResult:
            fault = (
                schedule.draw(shard.index, attempt) if schedule else None
            )
            if fault is not None:
                ledger.record_injection(fault)
            if fault == "shard_lost":
                # The worker "dies" before producing anything; the shard
                # layer retries. Returned (not raised) so the pool's own
                # ledger stays balanced — nothing touched a worker stack.
                return ShardResult(shard.index, attempt, fault=fault)
            if fault == "shard_stall":
                if ctx.deadline is not None:
                    # Sleep the budget out, then execute: the worker's
                    # DeadlineGuard cancels at the first launch boundary,
                    # exercising the real straggler path end to end.
                    time.sleep(
                        min(max(ctx.deadline.remaining, 0.0) + 0.02, 2.0)
                    )
                else:
                    return ShardResult(shard.index, attempt, fault=fault)
            if shard.start == 0 and shard.stop == self.patterns.n_patterns:
                sub = self.patterns  # full-width shard: nothing to slice
            else:
                sub = slice_patterns(self.patterns, shard.start, shard.stop)
            # Injected underflow is a *detection* simulation: the attempt
            # still runs unscaled, and the shard layer escalates it —
            # merging scaled terms only into non-finite slots keeps
            # healthy patterns bit-identical to the oracle.
            run_scaled = scaled
            instance = create_instance(
                tree,
                model,
                sub,
                rates=rates,
                scaling=run_scaled,
                dtype=dtype,
                backend=backend,
            )
            plan = self._shard_plan(run_scaled)
            ctx.execute(instance, plan)
            cum = instance.scale.count - 1 if instance.scale.count else -1
            logs = instance.site_log_likelihoods(plan.root_buffer, cum)
            terms = sub.weights * logs
            return ShardResult(
                shard.index,
                attempt,
                terms=terms,
                fault=fault,
                scaled=run_scaled,
                escalated=bool(instance.scale.count) and not run_scaled,
            )

        return job

    def _shard_plan(self, scaling: bool) -> ExecutionPlan:
        if not scaling:
            return self._plan
        if self._plan_scaled is None:
            self._plan_scaled = make_plan(self.tree, self.mode, scaling=True)
        return self._plan_scaled

    def _process_round(
        self,
        results: List[Tuple[int, bool, JobOutcome]],
        completed: Dict[int, np.ndarray],
        provisional: Dict[int, np.ndarray],
        last_error: Dict[int, BaseException],
        ledger: ShardLedger,
    ) -> List[int]:
        """Classify every outcome; returns shard indices needing retry,
        in canonical (shard-index) order."""
        obs = get_recorder()
        valids: Dict[int, List[ShardResult]] = {}
        still_pending: Dict[int, bool] = {}
        for si, scaled, outcome in results:
            still_pending.setdefault(si, True)
            if outcome.status == "ok":
                ledger.ok += 1
                res: ShardResult = outcome.value
                if res.terms is None:
                    ledger.faulted += 1
                    if res.fault == "shard_stall":
                        ledger.stragglers_cancelled += 1
                        obs.count("repro_shard_stragglers_total")
                    continue
                valids.setdefault(si, []).append(res)
            else:
                if outcome.status == "shed":
                    ledger.shed += 1
                else:
                    ledger.failed += 1
                if isinstance(outcome.error, DeadlineExceeded):
                    ledger.stragglers_cancelled += 1
                    obs.count("repro_shard_stragglers_total")
                if outcome.error is not None:
                    last_error[si] = outcome.error
        for si, candidates in valids.items():
            first = candidates[0]
            agree = all(
                np.array_equal(c.terms, first.terms) for c in candidates[1:]
            )
            if not agree:
                # Divergent duplicates: trust neither, retry the shard.
                ledger.disagreements += 1
                ledger.invalidated += len(candidates)
                obs.count("repro_shard_disagreements_total")
                last_error[si] = ShardFailure(
                    f"speculative duplicates of shard {si} disagree"
                )
                continue
            ledger.wins += 1
            if len(candidates) > 1:
                ledger.wasted += len(candidates) - 1
                obs.count(
                    "repro_shard_speculative_wasted_total",
                    len(candidates) - 1,
                )
            terms = first.terms
            if si in provisional:
                # Escalated re-run: scaled terms fill only the slots the
                # unscaled attempt could not represent, so healthy
                # patterns keep their original bits.
                prov = provisional.pop(si)
                terms = np.where(np.isfinite(prov), prov, terms)
                ledger.escalations += 1
                obs.count("repro_shard_escalations_total")
            elif first.fault == "shard_underflow" or not np.all(
                np.isfinite(terms)
            ):
                if not first.scaled:
                    # Needs escalation: keep the unscaled terms and
                    # re-run with scaling next round.
                    provisional[si] = terms
                    continue
                # Already scaled and still non-finite: genuine zero-
                # likelihood patterns; accept (log L = -inf is exact).
            if first.escalated:
                ledger.escalations += 1
                obs.count("repro_shard_escalations_total")
            completed[si] = np.asarray(terms, dtype=np.float64)
            still_pending[si] = False
        return sorted(si for si, p in still_pending.items() if p)

    # -- checkpointing -------------------------------------------------
    def _save_checkpoint(self, completed: Dict[int, np.ndarray]) -> None:
        ShardCheckpoint(
            n_patterns=self.patterns.n_patterns,
            n_shards=len(self.shards),
            fingerprint=self.fingerprint,
            completed={
                str(si): [float(v) for v in terms]
                for si, terms in sorted(completed.items())
            },
        ).save(self.checkpoint_path)

    def _load_resume(self) -> Dict[int, np.ndarray]:
        from pathlib import Path

        path = Path(self.checkpoint_path)
        if not path.exists():
            return {}
        checkpoint = ShardCheckpoint.load(path)
        checkpoint.check_matches(
            n_patterns=self.patterns.n_patterns,
            n_shards=len(self.shards),
            fingerprint=self.fingerprint,
        )
        return {
            int(si): np.asarray(terms, dtype=np.float64)
            for si, terms in checkpoint.completed.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedLikelihood shards={self.n_shards} "
            f"patterns={self.patterns.n_patterns} "
            f"speculate={self.speculate} retries={self.retries}>"
        )
