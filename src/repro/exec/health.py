"""Worker health machinery: deadlines, circuit breakers, sentinel checks.

Three guards the pool (:mod:`repro.exec.pool`) composes around every
worker, each usable on its own:

* :class:`Deadline` / :class:`DeadlineGuard` — cooperative wall-clock
  budgets. The guard wraps an engine's launch surface and raises a typed
  :class:`~repro.exec.errors.DeadlineExceeded` at the next launch
  boundary once the budget is spent, so a wedged or slow evaluation
  cannot pin a worker (or a ``synthetictest`` run) forever.
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine per worker: ``failure_threshold`` *consecutive* failures open
  the circuit, a cooldown later one probe is allowed through
  (half-open), and a failed probe permanently **evicts** the worker.
  Eviction is the terminal state: a device that fails its post-cooldown
  probe is assumed gone for the rest of the run.
* :class:`Sentinel` — a cheap known-answer likelihood (tiny fixed tree,
  JC69, a handful of patterns) whose expected value comes from the
  independent reference oracle
  (:func:`repro.beagle.reference.pruning_log_likelihood`). Crashing
  workers announce themselves; *silently corrupting* workers (finite but
  wrong results, e.g. :class:`~repro.exec.faults.BiasInjector`) are only
  caught by comparing an end-to-end answer against ground truth, which
  is exactly what the sentinel does.

Every component takes an injectable ``clock`` so tests drive time
explicitly and chaos runs stay replayable.
"""

from __future__ import annotations

import math
import time
from typing import Callable, List, Optional, Tuple

from ..obs import get_recorder
from .errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "DeadlineGuard",
    "BreakerOpenError",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "EVICTED",
    "Sentinel",
]

Clock = Callable[[], float]


class Deadline:
    """A wall-clock budget, checked cooperatively.

    Parameters
    ----------
    seconds:
        The budget. ``None`` means unbounded (every check passes).
    clock:
        Monotonic time source; injectable for tests.
    """

    def __init__(
        self, seconds: Optional[float], *, clock: Clock = time.monotonic
    ) -> None:
        if seconds is not None and seconds <= 0.0:
            raise ValueError("deadline must be positive (or None)")
        self.seconds = seconds
        self._clock = clock
        self._start = clock()

    @property
    def elapsed(self) -> float:
        """Seconds consumed since the deadline started."""
        return self._clock() - self._start

    @property
    def remaining(self) -> float:
        """Seconds left in the budget (``inf`` when unbounded)."""
        if self.seconds is None:
            return math.inf
        return self.seconds - self.elapsed

    @property
    def expired(self) -> bool:
        """Has the wall-clock budget been spent?"""
        return self.remaining < 0.0

    def check(self, what: str = "evaluation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.seconds is None:
            return
        elapsed = self.elapsed
        if elapsed > self.seconds:
            raise DeadlineExceeded(
                f"{what} exceeded its {self.seconds * 1e3:.0f} ms deadline "
                f"({elapsed * 1e3:.0f} ms elapsed)",
                budget_s=self.seconds,
                elapsed_s=elapsed,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Deadline {self.seconds!r}s elapsed={self.elapsed:.3f}s>"


class DeadlineGuard:
    """Wrap an engine's launch surface with a deadline check per launch.

    Sits *inside* a :class:`~repro.exec.resilient.ResilientInstance` (the
    resilient facade's retries each go through the guard), so a retry
    storm cannot run past the budget: the next attempt raises
    :class:`~repro.exec.errors.DeadlineExceeded`, which is marked
    non-retryable and punches straight through the recovery pipeline.

    Enforcement is cooperative — a launch already in flight finishes —
    which matches what real devices offer: kernels are not preemptible,
    but the host can refuse to issue the next one.
    """

    def __init__(self, inner, deadline: Deadline) -> None:
        self._inner = inner
        self.deadline = deadline

    # -- delegation ----------------------------------------------------
    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    @property
    def inner(self):
        """The wrapped instance."""
        return self._inner

    # -- intercepted launch surface ------------------------------------
    def update_partials_set(self, operations) -> None:
        """Forward one batched launch after checking the deadline."""
        self.deadline.check("launch")
        self._inner.update_partials_set(operations)

    def update_partials_serial(self, operations) -> None:
        """Forward per-operation launches after checking the deadline."""
        self.deadline.check("launch")
        self._inner.update_partials_serial(operations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DeadlineGuard {self.deadline!r} around {self._inner!r}>"


#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"
EVICTED = "evicted"


class BreakerOpenError(RuntimeError):
    """A job was offered to a worker whose circuit is not accepting work."""


class CircuitBreaker:
    """Per-worker circuit breaker with permanent eviction.

    State machine::

        CLOSED --K consecutive failures--> OPEN
        OPEN --cooldown elapsed--> HALF_OPEN (exactly one probe admitted)
        HALF_OPEN --probe success--> CLOSED
        HALF_OPEN --probe failure--> EVICTED (terminal)

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (successes reset the count) that open the
        circuit.
    cooldown_s:
        Seconds the circuit stays open before one half-open probe is
        allowed.
    clock:
        Monotonic time source; injectable for tests.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 0.05,
        clock: Clock = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_s < 0.0:
            raise ValueError("cooldown must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._opened_at = 0.0
        self.consecutive_failures = 0
        self.failures = 0
        self.successes = 0
        self.times_opened = 0
        #: Every state change as ``(from, to)`` pairs, in order. The
        #: half-open probe *outcome* (``half-open → closed`` or
        #: ``half-open → evicted``) is therefore first-class data, not
        #: something to be reconstructed from supervisor logs; each
        #: transition is also exported to :mod:`repro.obs` as the typed
        #: counter ``repro_breaker_transitions_total{from,to}``.
        self.transitions: List[Tuple[str, str]] = []

    def _set_state(self, new_state: str) -> None:
        """Move to ``new_state``, recording and exporting the transition."""
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        self.transitions.append((old_state, new_state))
        obs = get_recorder()
        if obs.enabled:
            obs.metrics.counter(
                "repro_breaker_transitions_total",
                "Circuit-breaker state transitions, by (from, to) edge",
                labels={"from": old_state, "to": new_state},
            ).inc()

    @property
    def state(self) -> str:
        """Current state, promoting OPEN → HALF_OPEN when cooled down."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._set_state(HALF_OPEN)
        return self._state

    @property
    def evicted(self) -> bool:
        """Has the breaker permanently removed its worker?"""
        return self._state == EVICTED

    def available(self) -> bool:
        """May this worker take a regular job right now?"""
        return self.state == CLOSED

    def wants_probe(self) -> bool:
        """Is the breaker half-open, waiting for its one probe?"""
        return self.state == HALF_OPEN

    def cooldown_remaining(self) -> float:
        """Seconds until an OPEN circuit goes half-open (0 otherwise)."""
        if self.state != OPEN:
            return 0.0
        return self.cooldown_s - (self._clock() - self._opened_at)

    def record_success(self) -> None:
        """A job (or probe) succeeded on this worker."""
        if self._state == EVICTED:
            return
        self.successes += 1
        self.consecutive_failures = 0
        if self._state in (OPEN, HALF_OPEN):
            self._set_state(CLOSED)

    def record_failure(self) -> None:
        """A job (or probe) failed on this worker."""
        if self._state == EVICTED:
            return
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # The one post-cooldown probe failed: the device is gone.
            self._set_state(EVICTED)
        elif self.consecutive_failures >= self.failure_threshold:
            self._set_state(OPEN)
            self._opened_at = self._clock()
            self.times_opened += 1

    def evict(self) -> None:
        """Force the terminal state (sentinel caught silent corruption)."""
        self._set_state(EVICTED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CircuitBreaker {self.state} "
            f"consecutive={self.consecutive_failures}/"
            f"{self.failure_threshold}>"
        )


class Sentinel:
    """Known-answer health probe for likelihood workers.

    A tiny fixed case — balanced 4-tip tree, JC69, a few random-but-seeded
    patterns — whose log-likelihood is computed once by the independent
    reference oracle. A worker is healthy iff evaluating the sentinel
    through its full stack (bias/fault wrappers, resilience, the engine)
    reproduces the oracle's value within ``rel_tol``.

    The tolerance covers oracle-vs-engine rounding only; recoverable
    faults do not move the value at all (recovery is exact), so a probe
    fails only when the worker crashes unrecoverably or silently corrupts
    results.

    Parameters
    ----------
    n_tips, n_patterns, seed:
        Shape and seed of the sentinel case. The defaults cost well under
        a millisecond per probe.
    rel_tol:
        Relative tolerance of the known-answer comparison.
    backend:
        Kernel-backend spec for probe instances (name, backend object,
        or ``None`` for the environment/default resolution), so probes
        exercise the same backend the workers run.
    """

    def __init__(
        self,
        *,
        n_tips: int = 4,
        n_patterns: int = 8,
        seed: int = 20180521,
        rel_tol: float = 1e-9,
        backend=None,
    ) -> None:
        import numpy as np

        from ..beagle.reference import pruning_log_likelihood
        from ..core.planner import make_plan
        from ..data.patterns import random_patterns
        from ..models.nucleotide import JC69
        from ..trees.generate import balanced_tree

        self.rel_tol = rel_tol
        self.backend = backend
        self._tree = balanced_tree(n_tips, branch_length=0.1)
        self._model = JC69()
        self._patterns = random_patterns(
            self._tree.tip_names(), n_patterns, rng=np.random.default_rng(seed)
        )
        self._plan = make_plan(self._tree, "concurrent")
        self.expected = pruning_log_likelihood(
            self._tree, self._model, self._patterns
        )

    def make_case(self) -> Tuple[object, object]:
        """A fresh ``(instance, plan)`` pair for one probe."""
        from ..core.planner import create_instance

        instance = create_instance(
            self._tree, self._model, self._patterns, backend=self.backend
        )
        return instance, self._plan

    def passes(self, value: float) -> bool:
        """Does a measured sentinel log-likelihood match the oracle?"""
        return math.isfinite(value) and math.isclose(
            value, self.expected, rel_tol=self.rel_tol
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Sentinel tips={self._tree.n_tips} expected={self.expected:.6f}>"
