"""Marginal ancestral state reconstruction.

The posterior probability of internal node ``z`` being in state ``a`` at
pattern ``p`` is::

    Pr(z = a | data) = π_a · L_root[p, a] / Σ_b π_b L_root[p, b]

*when the evaluation is rooted at ``z``* — so reconstruction at an
arbitrary internal node is one rerooting away, the same pulley-principle
move the paper uses for concurrency. This module reconstructs states at
any internal node by rerooting the evaluation onto one of the node's
child branches (placing the root at the node itself, fraction 0 of the
branch) and reading the posterior off the root partials.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.planner import create_instance, execute_plan, make_plan
from ..data.patterns import PatternData
from ..models.ratematrix import SubstitutionModel
from ..models.siterates import RateCategories, single_rate
from ..trees import Tree
from ..trees.node import Node
from ..trees.reroot import reroot_above

__all__ = ["ancestral_state_probabilities", "most_probable_states"]


def _root_posterior(
    tree: Tree,
    model: SubstitutionModel,
    patterns: PatternData,
    rates: RateCategories,
) -> np.ndarray:
    """Posterior state probabilities at the root: ``(patterns, states)``."""
    instance = create_instance(tree, model, patterns, rates=rates)
    plan = make_plan(tree, "concurrent")
    execute_plan(instance, plan)
    partials = instance.get_partials(plan.root_buffer)  # (C, P, S)
    pi = model.frequencies
    weights = rates.probabilities
    # Mixture over categories of π ∘ partials.
    weighted = np.einsum("c,cps->ps", weights, partials) * pi[None, :]
    total = weighted.sum(axis=1, keepdims=True)
    safe = np.where(total > 0, total, 1.0)
    return weighted / safe


def ancestral_state_probabilities(
    tree: Tree,
    model: SubstitutionModel,
    patterns: PatternData,
    node: Node,
    *,
    rates: Optional[RateCategories] = None,
) -> np.ndarray:
    """Marginal posterior state probabilities at an internal node.

    Parameters
    ----------
    node:
        An internal node of ``tree`` (tips have observed states; asking
        for a tip raises).

    Returns
    -------
    ndarray
        ``(n_patterns, n_states)`` posterior probabilities, rows summing
        to 1 (rows of all-impossible data return zeros).
    """
    if node.is_tip:
        raise ValueError("tips are observed; reconstruct internal nodes only")
    rates = rates or single_rate()
    if node.parent is None:
        return _root_posterior(tree, model, patterns, rates)
    # Reroot at the node: place the new root at fraction 0 of the branch
    # above the node, i.e. exactly at the node itself. The node's subtree
    # hangs off one side with a zero-length branch, so the root posterior
    # of the rerooted tree *is* the node's posterior.
    rerooted = reroot_above(tree, node, fraction=0.0)
    return _root_posterior(rerooted, model, patterns, rates)


def most_probable_states(
    tree: Tree,
    model: SubstitutionModel,
    patterns: PatternData,
    node: Node,
    *,
    rates: Optional[RateCategories] = None,
) -> Tuple[List[str], np.ndarray]:
    """MAP ancestral states and their posterior probabilities.

    Returns
    -------
    (symbols, probabilities)
        Per pattern: the most probable state's symbol and its posterior.
    """
    posterior = ancestral_state_probabilities(
        tree, model, patterns, node, rates=rates
    )
    best = posterior.argmax(axis=1)
    symbols = [model.alphabet.states[i] for i in best]
    return symbols, posterior[np.arange(posterior.shape[0]), best]
