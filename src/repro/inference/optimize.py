"""Branch-length optimisation by coordinate-wise Brent search.

Maximum-likelihood branch lengths are fitted one edge at a time with
bounded scalar optimisation, sweeping the tree until the log-likelihood
improvement falls below a tolerance. This is the GARLI/PhyML-style inner
loop whose cost profile motivates the paper (§II-A: >94% of run time in
the likelihood function) — every Brent iteration is a full likelihood
evaluation, so launch-count reductions translate directly into
wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.optimize import minimize_scalar

from .likelihood import TreeLikelihood

__all__ = [
    "BranchOptimizationResult",
    "optimize_branch_lengths",
    "newton_optimize_branch_lengths",
]


@dataclass(frozen=True)
class BranchOptimizationResult:
    """Outcome of a branch-length optimisation run."""

    tree: "object"
    log_likelihood: float
    initial_log_likelihood: float
    sweeps: int
    evaluations: int

    @property
    def improvement(self) -> float:
        return self.log_likelihood - self.initial_log_likelihood


def optimize_branch_lengths(
    evaluator: TreeLikelihood,
    *,
    max_sweeps: int = 5,
    tolerance: float = 1e-4,
    max_length: float = 20.0,
    min_length: float = 1e-9,
) -> BranchOptimizationResult:
    """Fit branch lengths by repeated one-dimensional Brent searches.

    Parameters
    ----------
    evaluator:
        A :class:`TreeLikelihood`; its tree is copied, never mutated.
    max_sweeps:
        Maximum passes over all edges.
    tolerance:
        Stop when a full sweep improves the log-likelihood by less.

    Returns
    -------
    BranchOptimizationResult
        Optimised tree copy, final and initial log-likelihoods, and the
        number of likelihood evaluations spent (the paper's currency).
    """
    tree = evaluator.tree.copy()
    working = evaluator.with_tree(tree)
    evaluations = 0

    def loglik() -> float:
        nonlocal evaluations
        evaluations += 1
        return working.log_likelihood()

    initial = current = loglik()

    sweeps = 0
    for sweep in range(max_sweeps):
        sweeps = sweep + 1
        before = current
        for edge in tree.edges():
            original = edge.length

            def negative(t: float, edge=edge) -> float:
                edge.length = float(t)
                working.invalidate()
                return -loglik()

            result = minimize_scalar(
                negative,
                bounds=(min_length, max_length),
                method="bounded",
                options={"xatol": 1e-6},
            )
            best_t = float(result.x)
            if -result.fun > current:
                edge.length = best_t
                current = -float(result.fun)
            else:  # keep the original length when no improvement
                edge.length = original
            working.invalidate()
        if current - before < tolerance:
            break

    working.invalidate()
    final = working.log_likelihood()
    return BranchOptimizationResult(
        tree=tree,
        log_likelihood=final,
        initial_log_likelihood=initial,
        sweeps=sweeps,
        evaluations=evaluations,
    )


def newton_optimize_branch_lengths(
    evaluator: TreeLikelihood,
    *,
    max_sweeps: int = 5,
    tolerance: float = 1e-4,
    max_length: float = 20.0,
    min_length: float = 1e-8,
    newton_steps: int = 8,
) -> BranchOptimizationResult:
    """Fit branch lengths by per-branch Newton–Raphson iterations.

    Uses the analytic first and second log-likelihood derivatives of
    :func:`repro.inference.derivatives.edge_log_likelihood_derivatives`
    (enabled by rerooting the evaluation onto each focal branch), giving
    quadratic convergence: typically a handful of derivative evaluations
    per branch versus Brent's dozens of function evaluations.

    Steps that leave the concave region (non-negative second derivative)
    or overshoot the bounds fall back to safeguarded bisection toward the
    gradient direction.
    """
    from .derivatives import edge_log_likelihood_derivatives

    tree = evaluator.tree.copy()
    working = evaluator.with_tree(tree)
    evaluations = 0

    initial = working.log_likelihood()
    evaluations += 1
    current = initial

    sweeps = 0
    root = tree.root
    # The two root children share one unrooted branch: optimise it once
    # (via the first child) and park its whole length on that child.
    skip = root.children[1] if len(root.children) == 2 else None
    for sweep in range(max_sweeps):
        sweeps = sweep + 1
        before = current
        for edge in tree.edges():
            if edge is skip:
                continue
            if edge.parent is root and skip is not None:
                t = max(edge.length + skip.length, min_length)
            else:
                t = max(edge.length, min_length)
            best_t, best_ll = t, None
            for _ in range(newton_steps):
                d = edge_log_likelihood_derivatives(
                    tree, working.model, working.patterns, edge,
                    rates=working.rates, at_length=t,
                )
                evaluations += 1
                if best_ll is None or d.log_likelihood > best_ll:
                    best_ll, best_t = d.log_likelihood, t
                if abs(d.first) < 1e-9:
                    break
                if d.second < 0:
                    step = -d.first / d.second
                else:  # non-concave: move along the gradient, damped
                    step = 0.5 * (1.0 if d.first > 0 else -1.0) * max(t, 1e-3)
                new_t = min(max(t + step, min_length), max_length)
                if abs(new_t - t) < 1e-9:
                    t = new_t
                    break
                t = new_t
            # Keep the best point actually visited — an unconverged Newton
            # meander must never leave the branch worse than it started.
            edge.length = best_t
            if edge.parent is root and skip is not None:
                skip.length = 0.0
            working.invalidate()
        current = working.log_likelihood()
        evaluations += 1
        if current - before < tolerance:
            break

    working.invalidate()
    final = working.log_likelihood()
    return BranchOptimizationResult(
        tree=tree,
        log_likelihood=final,
        initial_log_likelihood=initial,
        sweeps=sweeps,
        evaluations=evaluations,
    )
