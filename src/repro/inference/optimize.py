"""Branch-length optimisation: Brent sweeps, per-branch Newton, and
full-gradient methods.

Maximum-likelihood branch lengths are fitted either one edge at a time
(coordinate-wise Brent or rerooted per-branch Newton — the
GARLI/PhyML-style inner loops whose cost profile motivates the paper,
§II-A: >94% of run time in the likelihood function), or *all at once*
with the one-sweep gradient engine
(:func:`repro.inference.derivatives.all_branch_derivatives`):

* :func:`gradient_optimize_branch_lengths` with ``method="newton"`` —
  simultaneous damped Newton steps on every branch from one (gradient,
  curvature) sweep, with backtracking on the full step vector;
* ``method="lbfgs"`` — L-BFGS-B over log branch lengths with the exact
  analytic gradient (chain rule ``d/dq = t · d/dt``), one sweep per
  objective evaluation.

One gradient sweep costs ``3n − 5`` partial updates versus
``(2n−3)(n−1)`` for a per-edge derivative pass, so the full-gradient
methods turn the optimiser's inner loop from quadratic to linear in the
taxon count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize, minimize_scalar

from .likelihood import TreeLikelihood

__all__ = [
    "BranchOptimizationResult",
    "GradientOptimizationResult",
    "optimize_branch_lengths",
    "newton_optimize_branch_lengths",
    "gradient_optimize_branch_lengths",
]


@dataclass(frozen=True)
class BranchOptimizationResult:
    """Outcome of a branch-length optimisation run."""

    tree: "object"
    log_likelihood: float
    initial_log_likelihood: float
    sweeps: int
    evaluations: int

    @property
    def improvement(self) -> float:
        return self.log_likelihood - self.initial_log_likelihood


def optimize_branch_lengths(
    evaluator: TreeLikelihood,
    *,
    max_sweeps: int = 5,
    tolerance: float = 1e-4,
    max_length: float = 20.0,
    min_length: float = 1e-9,
) -> BranchOptimizationResult:
    """Fit branch lengths by repeated one-dimensional Brent searches.

    Parameters
    ----------
    evaluator:
        A :class:`TreeLikelihood`; its tree is copied, never mutated.
    max_sweeps:
        Maximum passes over all edges.
    tolerance:
        Stop when a full sweep improves the log-likelihood by less.

    Returns
    -------
    BranchOptimizationResult
        Optimised tree copy, final and initial log-likelihoods, and the
        number of likelihood evaluations spent (the paper's currency).
    """
    tree = evaluator.tree.copy()
    working = evaluator.with_tree(tree)
    evaluations = 0

    def loglik() -> float:
        nonlocal evaluations
        evaluations += 1
        return working.log_likelihood()

    initial = current = loglik()

    sweeps = 0
    for sweep in range(max_sweeps):
        sweeps = sweep + 1
        before = current
        for edge in tree.edges():
            original = edge.length

            def negative(t: float, edge=edge) -> float:
                edge.length = float(t)
                working.invalidate()
                return -loglik()

            result = minimize_scalar(
                negative,
                bounds=(min_length, max_length),
                method="bounded",
                options={"xatol": 1e-6},
            )
            best_t = float(result.x)
            if -result.fun > current:
                edge.length = best_t
                current = -float(result.fun)
            else:  # keep the original length when no improvement
                edge.length = original
            working.invalidate()
        if current - before < tolerance:
            break

    working.invalidate()
    final = working.log_likelihood()
    return BranchOptimizationResult(
        tree=tree,
        log_likelihood=final,
        initial_log_likelihood=initial,
        sweeps=sweeps,
        evaluations=evaluations,
    )


@dataclass(frozen=True)
class GradientOptimizationResult:
    """Outcome of a full-gradient branch-length optimisation run.

    ``gradient_sweeps`` counts one-sweep all-branch gradient evaluations
    (each ``3n − 5`` partial updates); ``evaluations`` counts plain
    log-likelihood evaluations spent on backtracking/verification.
    """

    tree: "object"
    log_likelihood: float
    initial_log_likelihood: float
    method: str
    iterations: int
    gradient_sweeps: int
    evaluations: int
    converged: bool

    @property
    def improvement(self) -> float:
        """Log-likelihood gained over the starting tree."""
        return self.log_likelihood - self.initial_log_likelihood


def _set_canonical_lengths(tree, edges, lengths, skip) -> None:
    """Write a canonical-length vector back onto the tree.

    The merged pulley edge's whole length is parked on the first root
    child (the second root child — ``skip`` — is pinned at 0), matching
    :func:`newton_optimize_branch_lengths`'s convention.
    """
    for edge, t in zip(edges, lengths):
        edge.length = float(t)
    if skip is not None:
        skip.length = 0.0
    tree.invalidate_indices()


def gradient_optimize_branch_lengths(
    evaluator: TreeLikelihood,
    *,
    method: str = "newton",
    max_iterations: int = 50,
    gradient_tolerance: float = 1e-3,
    min_length: float = 1e-8,
    max_length: float = 20.0,
    backend=None,
) -> GradientOptimizationResult:
    """Fit **all** branch lengths from one-sweep analytic gradients.

    Parameters
    ----------
    evaluator:
        A :class:`TreeLikelihood`; its tree is copied, never mutated.
    method:
        ``"newton"`` — simultaneous damped Newton steps (per-branch
        ``−d1/d2`` where the curvature is negative, gradient-sign steps
        elsewhere) with backtracking halving of the whole step vector;
        ``"lbfgs"`` — L-BFGS-B over log branch lengths with the exact
        chain-rule gradient.
    gradient_tolerance:
        Converged when ``max |dlogL/dt|`` falls below this.
    backend:
        Kernel backend for the gradient sweeps (resource name or
        instance); default resolution otherwise.

    Returns
    -------
    GradientOptimizationResult
        Optimised tree copy plus iteration/sweep accounting. The
        returned tree carries the merged pulley length on the first root
        child (second root child pinned to 0) — the same unrooted tree,
        in the canonical parking used by the per-branch Newton optimiser.
    """
    from .derivatives import all_branch_derivatives, canonical_edges

    if method not in ("newton", "lbfgs"):
        raise ValueError(f"unknown method {method!r}")
    tree = evaluator.tree.copy()
    working = evaluator.with_tree(tree)
    model, patterns, rates = working.model, working.patterns, working.rates

    initial = working.log_likelihood()
    evaluations = 1
    gradient_sweeps = 0

    root = tree.root
    skip = root.children[1] if len(root.children) == 2 else None
    edges = canonical_edges(tree)

    def sweep():
        nonlocal gradient_sweeps
        gradient_sweeps += 1
        return all_branch_derivatives(
            tree, model, patterns, rates=rates, backend=backend
        )

    if method == "newton":
        converged = False
        iterations = 0
        bg = sweep()
        current = bg.log_likelihood
        lengths = bg.branch_lengths()
        # Canonicalise immediately: merged length on the first root child.
        _set_canonical_lengths(tree, edges, lengths, skip)
        for iteration in range(max_iterations):
            iterations = iteration + 1
            d1 = bg.gradient()
            d2 = bg.second_derivatives()
            if np.max(np.abs(d1)) < gradient_tolerance:
                converged = True
                break
            concave = d2 < 0
            step = np.where(
                concave,
                -d1 / np.where(concave, d2, -1.0),
                0.5 * np.sign(d1) * np.maximum(lengths, 1e-3),
            )
            proposed = np.clip(lengths + step, min_length, max_length)
            # Backtrack on the whole step vector until logL improves.
            accepted = False
            for _ in range(8):
                _set_canonical_lengths(tree, edges, proposed, skip)
                working.invalidate()
                candidate = working.log_likelihood()
                evaluations += 1
                if candidate >= current:
                    accepted = True
                    break
                proposed = lengths + 0.5 * (proposed - lengths)
            if not accepted:
                _set_canonical_lengths(tree, edges, lengths, skip)
                working.invalidate()
                converged = True  # no improving step in the trust region
                break
            lengths = proposed
            current = candidate
            bg = sweep()
    else:  # lbfgs
        x0 = np.log(
            np.clip(
                np.array(
                    [
                        float(e.length)
                        + (float(skip.length) if e.parent is root and skip is not None else 0.0)
                        for e in edges
                    ]
                ),
                min_length,
                max_length,
            )
        )

        def objective(q):
            lengths = np.clip(np.exp(q), min_length, max_length)
            _set_canonical_lengths(tree, edges, lengths, skip)
            bg = sweep()
            # d logL / d q_i = t_i · d logL / d t_i  (chain rule).
            return -bg.log_likelihood, -(bg.gradient() * lengths)

        result = minimize(
            objective,
            x0,
            jac=True,
            method="L-BFGS-B",
            bounds=[(np.log(min_length), np.log(max_length))] * len(edges),
            options={
                "maxiter": max_iterations,
                "gtol": gradient_tolerance,
            },
        )
        lengths = np.clip(np.exp(result.x), min_length, max_length)
        _set_canonical_lengths(tree, edges, lengths, skip)
        iterations = int(result.nit)
        converged = bool(result.success)

    working.invalidate()
    final = working.log_likelihood()
    evaluations += 1
    return GradientOptimizationResult(
        tree=tree,
        log_likelihood=final,
        initial_log_likelihood=initial,
        method=method,
        iterations=iterations,
        gradient_sweeps=gradient_sweeps,
        evaluations=evaluations,
        converged=converged,
    )


def newton_optimize_branch_lengths(
    evaluator: TreeLikelihood,
    *,
    max_sweeps: int = 5,
    tolerance: float = 1e-4,
    max_length: float = 20.0,
    min_length: float = 1e-8,
    newton_steps: int = 8,
) -> BranchOptimizationResult:
    """Fit branch lengths by per-branch Newton–Raphson iterations.

    Uses the analytic first and second log-likelihood derivatives of
    :func:`repro.inference.derivatives.edge_log_likelihood_derivatives`
    (enabled by rerooting the evaluation onto each focal branch), giving
    quadratic convergence: typically a handful of derivative evaluations
    per branch versus Brent's dozens of function evaluations.

    Steps that leave the concave region (non-negative second derivative)
    or overshoot the bounds fall back to safeguarded bisection toward the
    gradient direction.
    """
    from .derivatives import edge_log_likelihood_derivatives

    tree = evaluator.tree.copy()
    working = evaluator.with_tree(tree)
    evaluations = 0

    initial = working.log_likelihood()
    evaluations += 1
    current = initial

    sweeps = 0
    root = tree.root
    # The two root children share one unrooted branch: optimise it once
    # (via the first child) and park its whole length on that child.
    skip = root.children[1] if len(root.children) == 2 else None
    for sweep in range(max_sweeps):
        sweeps = sweep + 1
        before = current
        for edge in tree.edges():
            if edge is skip:
                continue
            if edge.parent is root and skip is not None:
                t = max(edge.length + skip.length, min_length)
            else:
                t = max(edge.length, min_length)
            best_t, best_ll = t, None
            for _ in range(newton_steps):
                d = edge_log_likelihood_derivatives(
                    tree, working.model, working.patterns, edge,
                    rates=working.rates, at_length=t,
                )
                evaluations += 1
                if best_ll is None or d.log_likelihood > best_ll:
                    best_ll, best_t = d.log_likelihood, t
                if abs(d.first) < 1e-9:
                    break
                if d.second < 0:
                    step = -d.first / d.second
                else:  # non-concave: move along the gradient, damped
                    step = 0.5 * (1.0 if d.first > 0 else -1.0) * max(t, 1e-3)
                new_t = min(max(t + step, min_length), max_length)
                if abs(new_t - t) < 1e-9:
                    t = new_t
                    break
                t = new_t
            # Keep the best point actually visited — an unconverged Newton
            # meander must never leave the branch worse than it started.
            edge.length = best_t
            if edge.parent is root and skip is not None:
                skip.length = 0.0
            working.invalidate()
        current = working.log_likelihood()
        evaluations += 1
        if current - before < tolerance:
            break

    working.invalidate()
    final = working.log_likelihood()
    return BranchOptimizationResult(
        tree=tree,
        log_likelihood=final,
        initial_log_likelihood=initial,
        sweeps=sweeps,
        evaluations=evaluations,
    )
