"""A compact Metropolis sampler over trees (MrBayes-lite).

The paper's §VIII argues its kernel-level gains translate to application
run time because phylogenetic MCMC spends >0.9 of its time in the
partials function. This module provides the application: a working
Metropolis sampler over topology (NNI) and branch lengths (multiplier)
with an exponential branch-length prior. It instruments exactly what the
paper cares about — total kernel launches and modelled device time — so
the application-level benchmark can compare serial evaluation, concurrent
evaluation, and concurrent evaluation with a rerooted starting tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..core.reroot_opt import optimal_reroot_fast
from ..exec.checkpoint import NEWICK_PRECISION, MCMCCheckpoint
from ..gpu.device import DeviceSpec, GP100
from ..obs import get_recorder

from ..trees import Tree
from ..trees.newick import parse_newick, write_newick
from .likelihood import TreeLikelihood
from .proposals import (
    branch_length_move,
    multiply_branch,
    nni_move,
    random_nni,
    random_spr,
)

__all__ = ["MCMCResult", "run_mcmc", "HMCResult", "leapfrog", "run_hmc"]


@dataclass
class MCMCResult:
    """Trace and accounting of one MCMC run.

    Attributes
    ----------
    log_likelihoods:
        Post-burn-in log-likelihood trace (one entry per iteration).
    best_tree, best_log_likelihood:
        The maximum-likelihood state visited.
    accepted, proposed:
        Move acceptance accounting.
    kernel_launches:
        Total likelihood-kernel launches issued across the run — the
        quantity rerooting reduces.
    device_seconds:
        Modelled GPU time for all launches under the configured device.
    rerootings:
        How many periodic concurrency rerootings were applied
        (``reroot_every`` option — the paper's §VIII "further balanced
        rerootings later in the search" future work).
    resumed_at:
        Iteration the run was resumed from (0 for a fresh run).
    checkpoints_written:
        Checkpoints saved during this run.
    operations:
        Total partial-likelihood operations executed across the run —
        the quantity incremental (dirty-path) evaluation reduces. Not
        checkpointed: a resumed run counts only its own operations.
    """

    log_likelihoods: List[float]
    best_tree: Tree
    best_log_likelihood: float
    accepted: int
    proposed: int
    kernel_launches: int
    device_seconds: float
    rerootings: int = 0
    resumed_at: int = 0
    checkpoints_written: int = 0
    operations: int = 0

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposals accepted."""
        return self.accepted / self.proposed if self.proposed else 0.0


def _log_prior(tree: Tree, rate: float) -> float:
    """Independent exponential(rate) prior over branch lengths."""
    total = 0.0
    for edge in tree.edges():
        total += math.log(rate) - rate * edge.length
    return total


def run_mcmc(
    evaluator: TreeLikelihood,
    iterations: int,
    *,
    seed: int = 0,
    nni_probability: float = 0.3,
    spr_probability: float = 0.0,
    prior_rate: float = 10.0,
    device: Optional[DeviceSpec] = GP100,
    reroot_every: int = 0,
    checkpoint_every: int = 0,
    checkpoint_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
    incremental: bool = False,
    shards: int = 0,
    shard_pool=None,
) -> MCMCResult:
    """Metropolis sampling from the posterior over trees.

    Parameters
    ----------
    evaluator:
        Likelihood evaluator defining model, data, scheduling mode and
        starting tree. The evaluator's ``mode`` (serial/concurrent) and
        any prior rerooting directly set the launch economics measured in
        the result.
    iterations:
        Number of proposals.
    nni_probability:
        Probability of a local topology (NNI) move.
    spr_probability:
        Probability of a subtree prune-and-regraft move (larger topology
        steps); the remainder of the probability mass goes to branch
        multiplier moves.
    prior_rate:
        Rate of the exponential branch-length prior.
    device:
        Device model used to convert launch counts into modelled seconds;
        ``None`` skips the conversion.
    reroot_every:
        When > 0, apply a concurrency-optimal rerooting to the current
        tree every this many iterations (paper §VIII factor 3: topology
        drift can unbalance the working rooting; periodic rerooting
        restores the launch economics at negligible host cost). The
        likelihood is invariant under rerooting, so the sampled
        distribution is untouched.
    checkpoint_every:
        When > 0, write an :class:`~repro.exec.checkpoint.MCMCCheckpoint`
        to ``checkpoint_path`` every this many iterations (and once at
        completion): tree, RNG state, trace and accounting — everything
        a bit-identical resume needs.
    checkpoint_path:
        Destination of the checkpoint file (JSON, written atomically).
    resume:
        Continue from the checkpoint at ``checkpoint_path`` if one
        exists (fresh start otherwise). The stored run parameters must
        match this call's, or :class:`~repro.exec.checkpoint.CheckpointError`
        is raised; the resumed chain reproduces the uninterrupted chain
        exactly, draw for draw.
    incremental:
        Evaluate proposals along their dirty path only
        (:meth:`TreeLikelihood.propose` / ``accept`` / ``reject``)
        instead of rebuilding an evaluator and re-traversing the whole
        tree each iteration. Moves mutate the working tree in place and
        consume the same RNG draws as the full-traversal path, so both
        modes walk bit-identical chains. Requires
        ``spr_probability == 0`` (SPR dirty paths are not implemented)
        and an evaluator without scaling/faults/resilience.
    shards:
        When > 0, wrap the evaluator via its ``sharded(...)`` adapter
        (see :meth:`TreeLikelihood.sharded`): every likelihood
        evaluation partitions its site patterns into this many shards,
        fans them out through a :class:`~repro.exec.pool.LikelihoodPool`
        and recombines them through the deterministic reduction tree.
        The chain is bit-identical across shard counts, pool sizes,
        completion orders, faults and resume — any sharded
        configuration walks the same chain. It matches the *unsharded*
        run to float-summation reassociation (~1e-13 relative: the
        unsharded engine reduces site terms with BLAS ``dot``, the
        shard layer with the fixed pairwise tree). ``shards`` is not
        part of the checkpoint config, so a run may be checkpointed and
        resumed under a different shard count without a config
        mismatch. Incompatible with ``incremental``.
    shard_pool:
        Optional pool for the sharded evaluations (a private two-worker
        inline pool otherwise).
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if nni_probability + spr_probability > 1.0:
        raise ValueError("move probabilities exceed 1")
    if incremental and spr_probability > 0:
        raise ValueError(
            "incremental evaluation does not support SPR proposals"
        )
    if checkpoint_every < 0:
        raise ValueError("checkpoint_every must be non-negative")
    if shards < 0:
        raise ValueError("shards must be non-negative")
    if shards > 0:
        if incremental:
            raise ValueError(
                "sharded evaluation re-evaluates whole shards; it does "
                "not compose with incremental dirty-path proposals"
            )
        if not hasattr(evaluator, "sharded"):
            raise ValueError(
                f"evaluator {type(evaluator).__name__} has no "
                "sharded(...) adapter"
            )
        evaluator = evaluator.sharded(n_shards=shards, pool=shard_pool)
    if (checkpoint_every > 0 or resume) and checkpoint_path is None:
        raise ValueError("checkpointing requires a checkpoint_path")
    config = {
        "nni_probability": nni_probability,
        "spr_probability": spr_probability,
        "prior_rate": prior_rate,
        "reroot_every": reroot_every,
        "incremental": incremental,
    }

    def modelled(ev) -> float:
        return ev.modelled_seconds(device) if device else 0.0

    def modelled_incremental(ev) -> float:
        return ev.modelled_incremental_seconds(device) if device else 0.0

    checkpoint = None
    if resume and Path(checkpoint_path).exists():
        checkpoint = MCMCCheckpoint.load(checkpoint_path)
        checkpoint.check_matches(iterations=iterations, seed=seed, config=config)

    if checkpoint is not None:
        rng = checkpoint.restore_rng()
        current = evaluator.with_tree(parse_newick(checkpoint.current_newick))
        current_ll = checkpoint.current_log_likelihood
        current_prior = checkpoint.current_log_prior
        launches = checkpoint.kernel_launches
        device_seconds = checkpoint.device_seconds
        best_tree = parse_newick(checkpoint.best_newick)
        best_ll = checkpoint.best_log_likelihood
        trace = list(checkpoint.trace)
        accepted = checkpoint.accepted
        proposed = checkpoint.proposed
        rerootings = checkpoint.rerootings
        start_iteration = checkpoint.iteration
    else:
        rng = np.random.default_rng(seed)
        current = evaluator
        current_ll = current.log_likelihood()
        current_prior = _log_prior(current.tree, prior_rate)
        launches = current.n_launches
        device_seconds = modelled(current)
        best_tree = current.tree.copy()
        best_ll = current_ll
        trace = []
        accepted = 0
        proposed = 0
        rerootings = 0
        start_iteration = 0
    resumed_at = start_iteration
    checkpoints_written = 0
    operations = 0 if checkpoint is not None else current.plan.n_operations

    def write_checkpoint(completed: int) -> None:
        MCMCCheckpoint(
            iteration=completed,
            iterations=iterations,
            seed=seed,
            rng_state=rng.bit_generator.state,
            current_newick=write_newick(
                current.tree, precision=NEWICK_PRECISION
            ),
            current_log_likelihood=current_ll,
            current_log_prior=current_prior,
            best_newick=write_newick(best_tree, precision=NEWICK_PRECISION),
            best_log_likelihood=best_ll,
            trace=list(trace),
            accepted=accepted,
            proposed=proposed,
            rerootings=rerootings,
            kernel_launches=launches,
            device_seconds=device_seconds,
            config=dict(config),
        ).save(checkpoint_path)

    obs = get_recorder()
    for iteration in range(start_iteration, iterations):
        if reroot_every > 0 and iteration > 0 and iteration % reroot_every == 0:
            rerooted = optimal_reroot_fast(current.tree)
            if rerooted.improvement > 0:
                current = current.with_tree(rerooted.tree)
                rerootings += 1
        with obs.span("mcmc.step", category="mcmc", iteration=iteration) as span:
            if incremental:
                draw = rng.random()
                move = None
                if draw < nni_probability:
                    move = nni_move(current.tree, rng)
                if move is None:  # tiny tree: fall back, same as full path
                    move = branch_length_move(current.tree, rng)
                proposed += 1

                candidate_ll = current.propose(move)
                inc_plan = current.last_incremental_plan
                if inc_plan is None:  # cold evaluator: one full traversal
                    launches += current.n_launches
                    operations += current.plan.n_operations
                    device_seconds += modelled(current)
                else:
                    launches += inc_plan.n_launches
                    operations += inc_plan.n_operations
                    device_seconds += modelled_incremental(current)
                candidate_prior = _log_prior(current.tree, prior_rate)

                log_ratio = (
                    candidate_ll
                    - current_ll
                    + candidate_prior
                    - current_prior
                    + move.log_hastings
                )
                took = math.log(rng.random() + 1e-300) < log_ratio
                if took:
                    current.accept()
                    current_ll = candidate_ll
                    current_prior = candidate_prior
                    accepted += 1
                    if current_ll > best_ll:
                        best_ll = current_ll
                        best_tree = current.tree.copy()
                else:
                    current.reject()
            else:
                draw = rng.random()
                proposal = None
                if draw < nni_probability:
                    proposal = random_nni(current.tree, rng)
                elif draw < nni_probability + spr_probability:
                    proposal = random_spr(current.tree, rng)
                if proposal is None:  # tiny tree or degenerate SPR: fall back
                    proposal = multiply_branch(current.tree, rng)
                proposed += 1

                candidate = current.with_tree(proposal.tree)
                candidate_ll = candidate.log_likelihood()
                launches += candidate.n_launches
                operations += candidate.plan.n_operations
                device_seconds += modelled(candidate)
                candidate_prior = _log_prior(proposal.tree, prior_rate)

                log_ratio = (
                    candidate_ll
                    - current_ll
                    + candidate_prior
                    - current_prior
                    + proposal.log_hastings
                )
                took = math.log(rng.random() + 1e-300) < log_ratio
                if took:
                    current = candidate
                    current_ll = candidate_ll
                    current_prior = candidate_prior
                    accepted += 1
                    if current_ll > best_ll:
                        best_ll = current_ll
                        best_tree = current.tree.copy()
            if obs.enabled:
                span.set_attribute("accepted", took)
                obs.count("repro_mcmc_steps_total")
                if took:
                    obs.count("repro_mcmc_accepts_total")
        trace.append(current_ll)
        if checkpoint_every > 0 and (iteration + 1) % checkpoint_every == 0:
            write_checkpoint(iteration + 1)
            checkpoints_written += 1

    if checkpoint_every > 0 and iterations % checkpoint_every != 0:
        # Final state, so a finished run can also be reloaded.
        write_checkpoint(iterations)
        checkpoints_written += 1

    return MCMCResult(
        log_likelihoods=trace,
        best_tree=best_tree,
        best_log_likelihood=best_ll,
        accepted=accepted,
        proposed=proposed,
        kernel_launches=launches,
        device_seconds=device_seconds,
        rerootings=rerootings,
        resumed_at=resumed_at,
        checkpoints_written=checkpoints_written,
        operations=operations,
    )


@dataclass
class HMCResult:
    """Trace and accounting of one Hamiltonian Monte Carlo run.

    Attributes
    ----------
    log_likelihoods:
        Log-likelihood of the current state after each trajectory.
    samples:
        Unrooted canonical branch-length vectors (one per trajectory,
        current state — order of
        :func:`repro.inference.derivatives.canonical_edges`).
    tree:
        The working tree at the final state (merged pulley length parked
        on the first root child).
    best_tree, best_log_likelihood:
        The maximum-likelihood state visited.
    accepted, proposed:
        Trajectory acceptance accounting.
    gradient_sweeps:
        One-sweep all-branch gradient evaluations spent — the quantity
        the pre-order engine makes linear instead of quadratic.
    energy_errors:
        ``|ΔH|`` of each trajectory (exactly zero for a perfect
        integrator; small and step-size² for leapfrog) — the
        energy-conservation diagnostic the smoke tests assert on.
    """

    log_likelihoods: List[float]
    samples: List[np.ndarray]
    tree: Tree
    best_tree: Tree
    best_log_likelihood: float
    accepted: int
    proposed: int
    gradient_sweeps: int
    energy_errors: List[float]

    @property
    def acceptance_rate(self) -> float:
        """Fraction of trajectories accepted."""
        return self.accepted / self.proposed if self.proposed else 0.0


def leapfrog(q, p, grad_U, step_size: float, n_steps: int):
    """Leapfrog integration of Hamiltonian dynamics.

    Standard kick–drift–kick: a half-step momentum update, ``n_steps``
    full position steps with interleaved momentum kicks, and a final
    half-step. Volume-preserving and time-reversible: running the
    returned state backwards with negated momentum recovers the start to
    floating-point round-off (asserted by the reversibility smoke test).

    Parameters
    ----------
    q, p:
        Position and momentum vectors (not modified).
    grad_U:
        Callable returning ``∇U(q)`` (the *potential* gradient, i.e.
        minus the log-posterior gradient).

    Returns
    -------
    (q, p):
        The trajectory endpoint.
    """
    if n_steps < 1:
        raise ValueError("need at least one leapfrog step")
    q = np.array(q, dtype=float, copy=True)
    p = np.array(p, dtype=float, copy=True)
    p -= 0.5 * step_size * grad_U(q)
    for step in range(n_steps):
        q += step_size * p
        if step < n_steps - 1:
            p -= step_size * grad_U(q)
    p -= 0.5 * step_size * grad_U(q)
    return q, p


def run_hmc(
    evaluator: TreeLikelihood,
    iterations: int,
    *,
    seed: int = 0,
    step_size: float = 0.01,
    n_leapfrog: int = 10,
    prior_rate: float = 10.0,
    min_length: float = 1e-8,
    max_length: float = 20.0,
    backend=None,
) -> HMCResult:
    """Hamiltonian Monte Carlo over branch lengths (fixed topology).

    The state is ``q = log t`` over the ``2n − 3`` canonical unrooted
    branch lengths; the target is the posterior with the same independent
    exponential(``prior_rate``) prior as :func:`run_mcmc` (plus the
    log-transform Jacobian). Each trajectory needs the *full* gradient at
    every leapfrog step — exactly the workload the one-sweep
    :func:`~repro.inference.derivatives.all_branch_derivatives` engine
    makes linear: one post-order + pre-order sweep per step instead of
    ``2n − 3`` rerooted evaluations.

    The analytic gradient of the log posterior in ``q`` is
    ``t_i · (dlogL/dt_i − prior_rate) + 1``.

    Parameters
    ----------
    evaluator:
        Likelihood evaluator defining model, data and starting tree; its
        tree is copied, never mutated. Topology is fixed throughout.
    iterations:
        Number of Hamiltonian trajectories (each ``n_leapfrog`` gradient
        sweeps).
    step_size, n_leapfrog:
        Leapfrog discretisation. ``|ΔH|`` in the result's
        ``energy_errors`` is the tuning diagnostic.
    backend:
        Kernel backend for the gradient sweeps.
    """
    from .derivatives import all_branch_derivatives, canonical_edges

    if iterations < 1:
        raise ValueError("need at least one iteration")
    tree = evaluator.tree.copy()
    if tree.n_tips < 3:
        raise ValueError("HMC over branch lengths requires at least three tips")
    working = evaluator.with_tree(tree)
    model, patterns, rates = working.model, working.patterns, working.rates
    rng = np.random.default_rng(seed)

    root = tree.root
    skip = root.children[1] if len(root.children) == 2 else None
    edges = canonical_edges(tree)
    lo, hi = math.log(min_length), math.log(max_length)
    gradient_sweeps = 0

    def set_lengths(q: np.ndarray) -> np.ndarray:
        lengths = np.exp(np.clip(q, lo, hi))
        for edge, t in zip(edges, lengths):
            edge.length = float(t)
        if skip is not None:
            skip.length = 0.0
        tree.invalidate_indices()
        return lengths

    def potential_and_grad(q: np.ndarray):
        """``U(q) = −log posterior`` and ``∇U`` from one gradient sweep."""
        nonlocal gradient_sweeps
        lengths = set_lengths(q)
        bg = all_branch_derivatives(
            tree, model, patterns, rates=rates, backend=backend
        )
        gradient_sweeps += 1
        log_prior = float(
            np.sum(np.log(prior_rate) - prior_rate * lengths + np.clip(q, lo, hi))
        )
        potential = -(bg.log_likelihood + log_prior)
        grad = -(lengths * (bg.gradient() - prior_rate) + 1.0)
        return potential, grad, bg.log_likelihood

    def grad_U(q: np.ndarray) -> np.ndarray:
        return potential_and_grad(q)[1]

    # Start at the tree's current canonical lengths.
    q = np.log(
        np.clip(
            [
                float(e.length)
                + (
                    float(skip.length)
                    if e.parent is root and skip is not None
                    else 0.0
                )
                for e in edges
            ],
            min_length,
            max_length,
        )
    )
    current_U, _, current_ll = potential_and_grad(q)
    best_ll = current_ll
    best_tree = tree.copy()

    trace: List[float] = []
    samples: List[np.ndarray] = []
    energy_errors: List[float] = []
    accepted = 0
    obs = get_recorder()
    for iteration in range(iterations):
        with obs.span(
            "hmc.trajectory", category="mcmc", iteration=iteration
        ) as span:
            p0 = rng.standard_normal(q.shape)
            h0 = current_U + 0.5 * float(p0 @ p0)
            q_new, p_new = leapfrog(q, p0, grad_U, step_size, n_leapfrog)
            new_U, _, new_ll = potential_and_grad(q_new)
            h1 = new_U + 0.5 * float(p_new @ p_new)
            energy_errors.append(abs(h1 - h0))
            took = math.log(rng.random() + 1e-300) < (h0 - h1)
            if took:
                q = q_new
                current_U, current_ll = new_U, new_ll
                accepted += 1
                if current_ll > best_ll:
                    best_ll = current_ll
                    best_tree = tree.copy()
            if obs.enabled:
                span.set_attribute("accepted", took)
                obs.count("repro_hmc_trajectories_total")
        trace.append(current_ll)
        samples.append(np.exp(np.clip(q, lo, hi)))

    set_lengths(q)  # leave the working tree at the final state
    return HMCResult(
        log_likelihoods=trace,
        samples=samples,
        tree=tree,
        best_tree=best_tree,
        best_log_likelihood=best_ll,
        accepted=accepted,
        proposed=iterations,
        gradient_sweeps=gradient_sweeps,
        energy_errors=energy_errors,
    )
