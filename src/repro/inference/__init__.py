"""Inference layer: likelihood facade, optimisation and MCMC."""

from .likelihood import TreeLikelihood
from .optimize import (
    BranchOptimizationResult,
    GradientOptimizationResult,
    gradient_optimize_branch_lengths,
    newton_optimize_branch_lengths,
    optimize_branch_lengths,
)
from .derivatives import (
    BranchGradient,
    DerivativeSession,
    EdgeDerivatives,
    all_branch_derivatives,
    canonical_edges,
    edge_log_likelihood_derivatives,
    merged_edge_length,
)
from .ancestral import ancestral_state_probabilities, most_probable_states
from .proposals import (
    Move,
    Proposal,
    branch_length_move,
    random_spr,
    internal_edges,
    multiply_branch,
    nni_candidates,
    nni_move,
    nni_move_at,
    nni_move_count,
    random_nni,
)
from .mcmc import HMCResult, MCMCResult, leapfrog, run_hmc, run_mcmc
from .search import SearchResult, ml_search, nni_neighbors
from .consensus import majority_rule_consensus, split_frequencies
from .modelfit import (
    ModelFit,
    ParameterFit,
    fit_gamma_alpha,
    fit_kappa,
    model_selection,
    optimize_parameter,
)
from .bootstrap import (
    bootstrap_alignments,
    bootstrap_consensus,
    bootstrap_log_likelihoods,
    bootstrap_support,
    bootstrap_trees,
)

__all__ = [
    "TreeLikelihood",
    "BranchOptimizationResult",
    "GradientOptimizationResult",
    "optimize_branch_lengths",
    "newton_optimize_branch_lengths",
    "gradient_optimize_branch_lengths",
    "BranchGradient",
    "DerivativeSession",
    "EdgeDerivatives",
    "all_branch_derivatives",
    "canonical_edges",
    "edge_log_likelihood_derivatives",
    "merged_edge_length",
    "ancestral_state_probabilities",
    "most_probable_states",
    "Move",
    "Proposal",
    "branch_length_move",
    "nni_candidates",
    "nni_move",
    "nni_move_at",
    "nni_move_count",
    "random_nni",
    "multiply_branch",
    "internal_edges",
    "MCMCResult",
    "run_mcmc",
    "HMCResult",
    "leapfrog",
    "run_hmc",
    "SearchResult",
    "ml_search",
    "nni_neighbors",
    "majority_rule_consensus",
    "split_frequencies",
    "bootstrap_alignments",
    "bootstrap_log_likelihoods",
    "bootstrap_trees",
    "bootstrap_support",
    "bootstrap_consensus",
    "ParameterFit",
    "optimize_parameter",
    "fit_kappa",
    "fit_gamma_alpha",
    "ModelFit",
    "model_selection",
    "random_spr",
]
