"""Nonparametric bootstrap support values (Felsenstein 1985).

Columns of the alignment are resampled with replacement, a tree is built
from each pseudo-replicate, and clade support is the frequency with which
each split recurs — the classic uncertainty measure phylogenetics
packages report next to MCMC posterior probabilities. Any tree-building
callable works; the examples pair it with the neighbor-joining
constructor for speed and with :func:`repro.inference.ml_search` for
likelihood-based support.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Iterator, List, Optional

import numpy as np

from ..data.alignment import Alignment
from ..trees import Tree
from .consensus import majority_rule_consensus, split_frequencies

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.pool import JobContext, LikelihoodPool

__all__ = [
    "bootstrap_alignments",
    "bootstrap_log_likelihoods",
    "bootstrap_trees",
    "bootstrap_support",
    "bootstrap_consensus",
]

TreeBuilder = Callable[[Alignment], Tree]


def _accepts_context(builder: Callable) -> bool:
    """Has the builder *explicitly* opted into receiving a JobContext?

    Opt-in is a ``pool_context = True`` attribute on the callable or a
    parameter literally named ``ctx`` — never inferred from arity, so a
    builder with an unrelated optional second parameter (say
    ``def build(aln, n_starts=3)``) is not silently handed a
    :class:`~repro.exec.pool.JobContext` as ``n_starts``.
    """
    if getattr(builder, "pool_context", False):
        return True
    param = _ctx_parameter(builder)
    return param is not None and param.kind is not param.VAR_KEYWORD


def _ctx_parameter(builder: Callable):
    try:
        signature = inspect.signature(builder)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return None
    return signature.parameters.get("ctx")


def _replicate_job(
    builder: Callable, replicate: Alignment, pass_context: bool
) -> Callable[["JobContext"], Tree]:
    if not pass_context:
        return lambda ctx: builder(replicate)
    param = _ctx_parameter(builder)
    if param is not None and param.kind is param.KEYWORD_ONLY:
        return lambda ctx: builder(replicate, ctx=ctx)
    return lambda ctx: builder(replicate, ctx)


def bootstrap_alignments(
    alignment: Alignment,
    n_replicates: int,
    rng: np.random.Generator,
) -> Iterator[Alignment]:
    """Yield site-resampled pseudo-replicates of an alignment."""
    if n_replicates < 1:
        raise ValueError("need at least one replicate")
    n_sites = alignment.n_sites
    for _ in range(n_replicates):
        sites = rng.integers(0, n_sites, size=n_sites)
        yield alignment.site_subset(sites.tolist())


def bootstrap_log_likelihoods(
    alignment: Alignment,
    tree: Tree,
    model,
    n_replicates: int,
    *,
    seed: int = 0,
    rates=None,
    mode: str = "concurrent",
    shards: int = 0,
    pool=None,
) -> List[float]:
    """Per-replicate log-likelihoods of one tree (RELL-style bootstrap).

    Resamples alignment columns with replacement (same seeded stream as
    :func:`bootstrap_alignments`) and evaluates the *fixed* tree against
    each pseudo-replicate — the likelihood side of the
    resampling-estimated-log-likelihood bootstrap. With ``shards > 0``
    each replicate's evaluation is sharded over its site patterns
    through a :class:`~repro.exec.sharding.ShardedLikelihood` (sharing
    ``pool`` across replicates), and because the shard layer's
    deterministic reduction is bit-stable, the returned values are
    bit-identical regardless of shard count, completion order, or
    mid-run faults (they agree with the unsharded evaluation to
    float-summation reassociation).
    """
    from ..data.patterns import compress
    from .likelihood import TreeLikelihood

    rng = np.random.default_rng(seed)
    values: List[float] = []
    for replicate in bootstrap_alignments(alignment, n_replicates, rng):
        patterns = compress(replicate)
        if shards > 0:
            from ..exec.sharding import ShardedLikelihood

            evaluator = ShardedLikelihood(
                tree,
                model,
                patterns,
                n_shards=shards,
                rates=rates,
                mode=mode,
                pool=pool,
            )
        else:
            evaluator = TreeLikelihood(
                tree, model, patterns, rates=rates, mode=mode
            )
        values.append(evaluator.log_likelihood())
    return values


def bootstrap_trees(
    alignment: Alignment,
    builder: TreeBuilder,
    n_replicates: int,
    *,
    seed: int = 0,
    pool: Optional["LikelihoodPool"] = None,
    pass_context: Optional[bool] = None,
) -> List[Tree]:
    """Build one tree per bootstrap replicate.

    Replicate alignments are always drawn from one seeded RNG in order,
    so the replicate set is identical with or without a pool. With a
    ``pool``, replicates are independent jobs dispatched across the
    supervised workers (deadlines, failover, health checks apply). A
    builder receives its :class:`~repro.exec.pool.JobContext` — so
    likelihood-based builders can evaluate through the worker's
    resilient stack — only when it opts in explicitly: pass
    ``pass_context=True``, name the extra parameter ``ctx``, or set a
    ``pool_context = True`` attribute on the callable. Builders with
    unrelated optional parameters are never handed a context
    implicitly.
    """
    rng = np.random.default_rng(seed)
    replicates = bootstrap_alignments(alignment, n_replicates, rng)
    if pool is None:
        return [builder(replicate) for replicate in replicates]
    if pass_context is None:
        pass_context = _accepts_context(builder)
    jobs = [
        _replicate_job(builder, replicate, pass_context)
        for replicate in replicates
    ]
    return list(
        pool.map(
            jobs, labels=[f"replicate-{i}" for i in range(len(jobs))]
        )
    )


def bootstrap_support(
    alignment: Alignment,
    builder: TreeBuilder,
    n_replicates: int,
    *,
    seed: int = 0,
    pool: Optional["LikelihoodPool"] = None,
    pass_context: Optional[bool] = None,
) -> Dict[FrozenSet[str], float]:
    """Split frequencies across bootstrap replicates (support values)."""
    trees = bootstrap_trees(
        alignment,
        builder,
        n_replicates,
        seed=seed,
        pool=pool,
        pass_context=pass_context,
    )
    return split_frequencies(trees)


def bootstrap_consensus(
    alignment: Alignment,
    builder: TreeBuilder,
    n_replicates: int,
    *,
    seed: int = 0,
    min_frequency: float = 0.5,
    pool: Optional["LikelihoodPool"] = None,
    pass_context: Optional[bool] = None,
) -> Tree:
    """Majority-rule consensus of bootstrap trees, labelled with support."""
    trees = bootstrap_trees(
        alignment,
        builder,
        n_replicates,
        seed=seed,
        pool=pool,
        pass_context=pass_context,
    )
    return majority_rule_consensus(trees, min_frequency=min_frequency)
