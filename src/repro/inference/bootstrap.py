"""Nonparametric bootstrap support values (Felsenstein 1985).

Columns of the alignment are resampled with replacement, a tree is built
from each pseudo-replicate, and clade support is the frequency with which
each split recurs — the classic uncertainty measure phylogenetics
packages report next to MCMC posterior probabilities. Any tree-building
callable works; the examples pair it with the neighbor-joining
constructor for speed and with :func:`repro.inference.ml_search` for
likelihood-based support.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, List

import numpy as np

from ..data.alignment import Alignment
from ..trees import Tree
from .consensus import majority_rule_consensus, split_frequencies

__all__ = [
    "bootstrap_alignments",
    "bootstrap_trees",
    "bootstrap_support",
    "bootstrap_consensus",
]

TreeBuilder = Callable[[Alignment], Tree]


def bootstrap_alignments(
    alignment: Alignment,
    n_replicates: int,
    rng: np.random.Generator,
) -> Iterator[Alignment]:
    """Yield site-resampled pseudo-replicates of an alignment."""
    if n_replicates < 1:
        raise ValueError("need at least one replicate")
    n_sites = alignment.n_sites
    for _ in range(n_replicates):
        sites = rng.integers(0, n_sites, size=n_sites)
        yield alignment.site_subset(sites.tolist())


def bootstrap_trees(
    alignment: Alignment,
    builder: TreeBuilder,
    n_replicates: int,
    *,
    seed: int = 0,
) -> List[Tree]:
    """Build one tree per bootstrap replicate."""
    rng = np.random.default_rng(seed)
    return [
        builder(replicate)
        for replicate in bootstrap_alignments(alignment, n_replicates, rng)
    ]


def bootstrap_support(
    alignment: Alignment,
    builder: TreeBuilder,
    n_replicates: int,
    *,
    seed: int = 0,
) -> Dict[FrozenSet[str], float]:
    """Split frequencies across bootstrap replicates (support values)."""
    trees = bootstrap_trees(alignment, builder, n_replicates, seed=seed)
    return split_frequencies(trees)


def bootstrap_consensus(
    alignment: Alignment,
    builder: TreeBuilder,
    n_replicates: int,
    *,
    seed: int = 0,
    min_frequency: float = 0.5,
) -> Tree:
    """Majority-rule consensus of bootstrap trees, labelled with support."""
    trees = bootstrap_trees(alignment, builder, n_replicates, seed=seed)
    return majority_rule_consensus(trees, min_frequency=min_frequency)
