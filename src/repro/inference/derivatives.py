"""Analytic branch-length derivatives via rerooting.

To differentiate the log-likelihood with respect to one branch length,
view the tree as rooted *on that branch* — free for reversible models
(the same pulley principle the paper's whole approach rests on). The
likelihood then factors through the branch's transition matrix alone::

    L_p(t) = Σ_c w_c Σ_{a,b} π_a · U_p[c,a] · P_c(t)[a,b] · V_p[c,b]

with ``U`` and ``V`` the partials of the two half-trees, so

    dL_p/dt  = Σ_c w_c r_c · π (U ∘ (Q P V)),
    d²L_p/dt² = Σ_c w_c r_c² · π (U ∘ (Q² P V)),

and the log-likelihood derivatives follow from ``(L' / L)`` per pattern.
This is BEAGLE's ``calculateEdgeLogLikelihoods``-with-derivatives
capability, and it powers the Newton branch optimiser in
:mod:`repro.inference.optimize` — quadratically convergent, a fraction
of Brent's likelihood evaluations per branch.

Two evaluation strategies share one recombination formula:

* :func:`edge_log_likelihood_derivatives` — the per-edge oracle: one
  rerooted post-order evaluation per branch, O(n) partial updates each.
  A :class:`DerivativeSession` amortises the engine instance across
  edges of the same (model, data) pair so the path is no longer
  quadratic in *allocations* (it stays quadratic in partial updates).
* :func:`all_branch_derivatives` — the one-sweep engine: a single
  post-order + pre-order :class:`~repro.core.planner.GradientPlan`
  leaves every node's lower *and* upper partials in the instance, and
  all ``2n − 3`` branches recombine from buffers already in memory —
  ``3n − 5`` partial updates total instead of ``(2n−3)(n−1)``. Results
  are bit-consistent with the per-edge oracle (same partials bits, same
  recombination arithmetic), which the gradient parity gate asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..beagle.instance import BeagleInstance
from ..core.planner import (
    create_instance,
    execute_gradient_plan,
    make_gradient_plan,
    make_plan,
)
from ..data.patterns import PatternData
from ..models.eigen import transition_derivatives, transition_matrices
from ..models.ratematrix import SubstitutionModel
from ..models.siterates import RateCategories, single_rate
from ..obs import get_recorder
from ..trees import Tree
from ..trees.node import Node
from ..trees.reroot import reroot_above

__all__ = [
    "EdgeDerivatives",
    "edge_log_likelihood_derivatives",
    "DerivativeSession",
    "BranchGradient",
    "all_branch_derivatives",
    "canonical_edges",
    "merged_edge_length",
]


@dataclass(frozen=True)
class EdgeDerivatives:
    """Log-likelihood and its first two branch-length derivatives."""

    log_likelihood: float
    first: float
    second: float


class DerivativeSession:
    """Engine-instance reuse across per-edge derivative evaluations.

    The legacy per-edge path allocated a fresh
    :class:`~repro.beagle.instance.BeagleInstance` (partials storage,
    matrix bank, workspace arena) for *every* edge of every tree — a
    full gradient was quadratic in allocations on top of being quadratic
    in partial updates. A session holds one instance for a fixed
    (model, patterns, rates, dtype, backend) and re-populates only the
    tip→buffer name mapping per (rerooted) tree, so repeated calls are
    allocation-free in steady state. Likelihood bits are unchanged:
    partials are recomputed from scratch per call (``invalidate_partials``)
    from identical tip data and matrices.

    Pass a session to :func:`edge_log_likelihood_derivatives` via
    ``session=``; it also serves as the parity oracle for
    :func:`all_branch_derivatives` at matching dtype/backend.
    """

    def __init__(
        self,
        model: SubstitutionModel,
        patterns: PatternData,
        rates: Optional[RateCategories] = None,
        *,
        dtype: np.dtype = np.float64,
        backend=None,
    ) -> None:
        self.model = model
        self.patterns = patterns
        self.rates = rates or single_rate()
        self.dtype = np.dtype(dtype)
        self.backend = backend
        self._instance: Optional[BeagleInstance] = None
        self._n_tips: Optional[int] = None
        #: Fresh engine instances created by this session (for tests).
        self.instances_created = 0
        #: half_tree_partials evaluations served.
        self.evaluations = 0

    def _instance_for(self, tree: Tree) -> BeagleInstance:
        """The session instance, (re)created only on a tip-count change."""
        if self._instance is None or self._n_tips != tree.n_tips:
            self._instance = create_instance(
                tree,
                self.model,
                self.patterns,
                rates=self.rates,
                dtype=self.dtype,
                backend=self.backend,
            )
            self._n_tips = tree.n_tips
            self.instances_created += 1
            return self._instance
        # Same shape, possibly different tip→buffer mapping: re-bind tip
        # data by name (cheap; no array allocation beyond the tip rows).
        tree.assign_indices()
        instance = self._instance
        for tip in tree.tips():
            index = tree.index_of(tip)
            if tip.name in self.patterns.partials:
                instance.set_tip_partials(
                    index, self.patterns.tip_partials(tip.name)
                )
            else:
                instance.set_tip_states(index, self.patterns.tip_codes(tip.name))
        return instance

    def half_tree_partials(
        self, tree: Tree
    ) -> Tuple[np.ndarray, np.ndarray, BeagleInstance]:
        """Root children's raw subtree partials for a (rerooted) tree.

        Same contract as the legacy module-level helper: the returned
        ``(U, V, instance)`` carry the children's own subtree partials
        ``(C, P, S)`` *excluding* their root branches.
        """
        instance = self._instance_for(tree)
        plan = make_plan(tree, "concurrent")
        instance.invalidate_partials()
        instance.update_transition_matrices(
            0, plan.matrix_indices, plan.branch_lengths
        )
        for op_set in plan.operation_sets:
            instance.update_partials_set(op_set)
        self.evaluations += 1
        left, right = tree.root.children
        return (
            instance.get_partials(tree.index_of(left)),
            instance.get_partials(tree.index_of(right)),
            instance,
        )


def _half_tree_partials(
    tree: Tree,
    model: SubstitutionModel,
    patterns: PatternData,
    rates: RateCategories,
) -> Tuple[np.ndarray, np.ndarray, BeagleInstance]:
    """Raw subtree partials of the root's two children, plus the instance.

    The returned ``(U, V, instance)`` carry the children's own subtree
    partials of shape ``(C, P, S)`` — *excluding* their root branches.
    The caller recombines them through ``P(t)`` itself, which is what
    makes the branch length ``t`` a free variable for differentiation.
    """
    instance = create_instance(tree, model, patterns, rates=rates)
    plan = make_plan(tree, "concurrent")
    instance.invalidate_partials()
    instance.update_transition_matrices(0, plan.matrix_indices, plan.branch_lengths)
    for op_set in plan.operation_sets:
        instance.update_partials_set(op_set)
    left, right = tree.root.children
    return (
        instance.get_partials(tree.index_of(left)),
        instance.get_partials(tree.index_of(right)),
        instance,
    )


def _recombine(
    U: np.ndarray,
    V: np.ndarray,
    t: float,
    model: SubstitutionModel,
    rates: RateCategories,
    weights: np.ndarray,
    n_patterns: int,
) -> EdgeDerivatives:
    """``(logL, d/dt, d²/dt²)`` from the two half-tree partials of a branch.

    The shared recombination of the per-edge oracle and the one-sweep
    engine — called with identical ``U``/``V`` bits the two paths return
    identical floats, which is the whole parity story.
    """
    eigen = model.eigen
    pi = model.frequencies
    category_weights = rates.probabilities

    site_L = np.zeros(n_patterns)
    site_d1 = np.zeros(n_patterns)
    site_d2 = np.zeros(n_patterns)
    for c, (rate, cat_weight) in enumerate(zip(rates.rates, category_weights)):
        scaled_t = rate * t
        P = transition_matrices(eigen, [scaled_t])[0]
        dP = transition_derivatives(eigen, [scaled_t], order=1)[0] * rate
        d2P = transition_derivatives(eigen, [scaled_t], order=2)[0] * rate**2
        Uc, Vc = U[c], V[c]
        for matrix, accumulator in ((P, site_L), (dP, site_d1), (d2P, site_d2)):
            joint = Uc * (Vc @ matrix.T)
            accumulator += cat_weight * (joint @ pi)

    with np.errstate(divide="ignore", invalid="ignore"):
        log_likelihood = float(np.dot(weights, np.log(site_L)))
        ratio1 = site_d1 / site_L
        ratio2 = site_d2 / site_L
    first = float(np.dot(weights, ratio1))
    second = float(np.dot(weights, ratio2 - ratio1**2))
    return EdgeDerivatives(
        log_likelihood=log_likelihood, first=first, second=second
    )


def edge_log_likelihood_derivatives(
    tree: Tree,
    model: SubstitutionModel,
    patterns: PatternData,
    edge: Node,
    *,
    rates: Optional[RateCategories] = None,
    at_length: Optional[float] = None,
    session: Optional[DerivativeSession] = None,
) -> EdgeDerivatives:
    """Analytic ``(logL, dlogL/dt, d²logL/dt²)`` for one branch.

    Parameters
    ----------
    edge:
        The branch, identified by its child node in ``tree``. When the
        edge's parent is the root, the derivative refers to the *merged*
        pulley branch of the unrooted tree (child length + sibling
        length) — the only length the likelihood actually depends on for
        a reversible model.
    at_length:
        Evaluate at this branch length (defaults to the branch's current
        unrooted length). The input tree is never modified.
    session:
        A :class:`DerivativeSession` to reuse one engine instance across
        calls (same model/patterns/rates). Without one, a fresh float64
        instance is created per call — the legacy behaviour.
    """
    if edge.parent is None:
        raise ValueError("the root has no branch")
    rates = rates or single_rate()
    if at_length is None:
        t = float(edge.length)
        if edge.parent is tree.root and len(tree.root.children) == 2:
            sibling = edge.sibling()
            assert sibling is not None
            t += float(sibling.length)
    else:
        t = float(at_length)
    if t < 0:
        raise ValueError("branch length must be non-negative")

    # Root the evaluation on the focal branch, fraction 0 from the child:
    # child keeps length 0, the other side carries the full length t.
    # `fraction=0` puts the zero-length side (the clone of `edge`) first,
    # so U below is the focal subtree's raw partials and V the far side's.
    rerooted = reroot_above(tree, edge, fraction=0.0)
    if session is not None:
        U, V, _ = session.half_tree_partials(rerooted)
    else:
        U, V, _ = _half_tree_partials(rerooted, model, patterns, rates)
    return _recombine(U, V, t, model, rates, patterns.weights, patterns.n_patterns)


def merged_edge_length(tree: Tree, edge: Node) -> float:
    """The unrooted length of a branch (pulley-merged at the root)."""
    t = float(edge.length)
    if edge.parent is tree.root and len(tree.root.children) == 2:
        sibling = edge.sibling()
        assert sibling is not None
        t += float(sibling.length)
    return t


def canonical_edges(tree: Tree) -> List[Node]:
    """The ``2n − 3`` unrooted branches, as child nodes, in post-order.

    Every non-root node except the *second* root child: under the pulley
    view the two root branches are one merged edge, represented by the
    first root child.
    """
    if len(tree.root.children) != 2:
        raise ValueError("canonical edges require a bifurcating root")
    skip = tree.root.children[1]
    return [
        node
        for node in tree.root.traverse_postorder()
        if node.parent is not None and node is not skip
    ]


@dataclass(frozen=True)
class BranchGradient:
    """Every branch's ``(logL, d/dt, d²/dt²)`` from one gradient sweep.

    Attributes
    ----------
    tree:
        The tree evaluated (indices assigned; not modified).
    log_likelihood:
        Root log-likelihood of the post-order pass.
    edges:
        The ``2n − 3`` canonical branches, as child nodes, in the order
        of :func:`canonical_edges`.
    derivatives:
        One :class:`EdgeDerivatives` per canonical branch, same order.
    """

    tree: Tree
    log_likelihood: float
    edges: Tuple[Node, ...]
    derivatives: Tuple[EdgeDerivatives, ...]

    def gradient(self) -> np.ndarray:
        """First derivatives ``dlogL/dt`` as a ``(2n−3,)`` vector."""
        return np.array([d.first for d in self.derivatives])

    def second_derivatives(self) -> np.ndarray:
        """Second derivatives ``d²logL/dt²`` as a ``(2n−3,)`` vector."""
        return np.array([d.second for d in self.derivatives])

    def branch_lengths(self) -> np.ndarray:
        """Unrooted branch lengths, same order as :attr:`edges`."""
        return np.array(
            [merged_edge_length(self.tree, e) for e in self.edges]
        )

    def for_edge(self, edge: Node) -> EdgeDerivatives:
        """The derivatives of one branch (by its child node)."""
        by_id: Dict[int, EdgeDerivatives] = {
            id(e): d for e, d in zip(self.edges, self.derivatives)
        }
        if id(edge) in by_id:
            return by_id[id(edge)]
        # The second root child aliases the merged pulley edge.
        if edge.parent is self.tree.root:
            sibling = edge.sibling()
            if sibling is not None and id(sibling) in by_id:
                return by_id[id(sibling)]
        raise KeyError("node is not a canonical edge of this gradient")


def all_branch_derivatives(
    tree: Tree,
    model: SubstitutionModel,
    patterns: PatternData,
    *,
    rates: Optional[RateCategories] = None,
    dtype: np.dtype = np.float64,
    backend=None,
    mode: str = "concurrent",
    instance: Optional[BeagleInstance] = None,
    verify: bool = False,
) -> BranchGradient:
    """Every branch's ``(logL, d/dt, d²/dt²)`` in one two-pass sweep.

    One post-order pass fills the lower partials, one pre-order pass the
    upper partials (``3n − 5`` partial updates total), and each of the
    ``2n − 3`` canonical branches recombines its two resident buffers
    through the shared per-edge formula. Bit-consistent with
    :func:`edge_log_likelihood_derivatives` run per edge at the same
    dtype/backend: both paths feed identical half-tree partials bits to
    identical recombination arithmetic.

    Parameters
    ----------
    instance:
        Reuse an existing engine instance for the sweep (it must have
        been created for this tree/model/data shape); a fresh one is
        created otherwise.
    verify:
        Statically verify the gradient plan
        (:func:`repro.analysis.verify_gradient_plan`) before executing.
    """
    if tree.n_tips < 3:
        raise ValueError("all-branch gradients require at least three tips")
    rates = rates or single_rate()
    tree.assign_indices()
    gplan = make_gradient_plan(tree, mode=mode, verify=verify)
    if instance is None:
        instance = create_instance(
            tree, model, patterns, rates=rates, dtype=dtype, backend=backend
        )
    log_likelihood = execute_gradient_plan(instance, gplan)

    edges = canonical_edges(tree)
    weights = patterns.weights
    n_patterns = patterns.n_patterns
    derivatives = []
    for edge in edges:
        index = tree.index_of(edge)
        U = instance.get_partials(index)
        V = instance.upper_partials(index)
        t = merged_edge_length(tree, edge)
        derivatives.append(
            _recombine(U, V, t, model, rates, weights, n_patterns)
        )
    obs = get_recorder()
    if obs.enabled:
        obs.count("repro_gradient_edges_total", len(edges))
    return BranchGradient(
        tree=tree,
        log_likelihood=log_likelihood,
        edges=tuple(edges),
        derivatives=tuple(derivatives),
    )
