"""Analytic branch-length derivatives via rerooting.

To differentiate the log-likelihood with respect to one branch length,
view the tree as rooted *on that branch* — free for reversible models
(the same pulley principle the paper's whole approach rests on). The
likelihood then factors through the branch's transition matrix alone::

    L_p(t) = Σ_c w_c Σ_{a,b} π_a · U_p[c,a] · P_c(t)[a,b] · V_p[c,b]

with ``U`` and ``V`` the partials of the two half-trees, so

    dL_p/dt  = Σ_c w_c r_c · π (U ∘ (Q P V)),
    d²L_p/dt² = Σ_c w_c r_c² · π (U ∘ (Q² P V)),

and the log-likelihood derivatives follow from ``(L' / L)`` per pattern.
This is BEAGLE's ``calculateEdgeLogLikelihoods``-with-derivatives
capability, and it powers the Newton branch optimiser in
:mod:`repro.inference.optimize` — quadratically convergent, a fraction
of Brent's likelihood evaluations per branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..beagle.instance import BeagleInstance
from ..core.planner import create_instance, make_plan
from ..data.patterns import PatternData
from ..models.eigen import transition_derivatives, transition_matrices
from ..models.ratematrix import SubstitutionModel
from ..models.siterates import RateCategories, single_rate
from ..trees import Tree
from ..trees.node import Node
from ..trees.reroot import reroot_above

__all__ = ["EdgeDerivatives", "edge_log_likelihood_derivatives"]


@dataclass(frozen=True)
class EdgeDerivatives:
    """Log-likelihood and its first two branch-length derivatives."""

    log_likelihood: float
    first: float
    second: float


def _half_tree_partials(
    tree: Tree,
    model: SubstitutionModel,
    patterns: PatternData,
    rates: RateCategories,
) -> Tuple[np.ndarray, np.ndarray, BeagleInstance]:
    """Raw subtree partials of the root's two children, plus the instance.

    The returned ``(U, V, instance)`` carry the children's own subtree
    partials of shape ``(C, P, S)`` — *excluding* their root branches.
    The caller recombines them through ``P(t)`` itself, which is what
    makes the branch length ``t`` a free variable for differentiation.
    """
    instance = create_instance(tree, model, patterns, rates=rates)
    plan = make_plan(tree, "concurrent")
    instance.invalidate_partials()
    instance.update_transition_matrices(0, plan.matrix_indices, plan.branch_lengths)
    for op_set in plan.operation_sets:
        instance.update_partials_set(op_set)
    left, right = tree.root.children
    return (
        instance.get_partials(tree.index_of(left)),
        instance.get_partials(tree.index_of(right)),
        instance,
    )


def edge_log_likelihood_derivatives(
    tree: Tree,
    model: SubstitutionModel,
    patterns: PatternData,
    edge: Node,
    *,
    rates: Optional[RateCategories] = None,
    at_length: Optional[float] = None,
) -> EdgeDerivatives:
    """Analytic ``(logL, dlogL/dt, d²logL/dt²)`` for one branch.

    Parameters
    ----------
    edge:
        The branch, identified by its child node in ``tree``. When the
        edge's parent is the root, the derivative refers to the *merged*
        pulley branch of the unrooted tree (child length + sibling
        length) — the only length the likelihood actually depends on for
        a reversible model.
    at_length:
        Evaluate at this branch length (defaults to the branch's current
        unrooted length). The input tree is never modified.
    """
    if edge.parent is None:
        raise ValueError("the root has no branch")
    rates = rates or single_rate()
    if at_length is None:
        t = float(edge.length)
        if edge.parent is tree.root and len(tree.root.children) == 2:
            sibling = edge.sibling()
            assert sibling is not None
            t += float(sibling.length)
    else:
        t = float(at_length)
    if t < 0:
        raise ValueError("branch length must be non-negative")

    # Root the evaluation on the focal branch, fraction 0 from the child:
    # child keeps length 0, the other side carries the full length t.
    # `fraction=0` puts the zero-length side (the clone of `edge`) first,
    # so U below is the focal subtree's raw partials and V the far side's.
    rerooted = reroot_above(tree, edge, fraction=0.0)
    U, V, instance = _half_tree_partials(rerooted, model, patterns, rates)

    eigen = model.eigen
    pi = model.frequencies
    weights = patterns.weights
    category_weights = rates.probabilities

    site_L = np.zeros(patterns.n_patterns)
    site_d1 = np.zeros(patterns.n_patterns)
    site_d2 = np.zeros(patterns.n_patterns)
    for c, (rate, cat_weight) in enumerate(zip(rates.rates, category_weights)):
        scaled_t = rate * t
        P = transition_matrices(eigen, [scaled_t])[0]
        dP = transition_derivatives(eigen, [scaled_t], order=1)[0] * rate
        d2P = transition_derivatives(eigen, [scaled_t], order=2)[0] * rate**2
        Uc, Vc = U[c], V[c]
        for matrix, accumulator in ((P, site_L), (dP, site_d1), (d2P, site_d2)):
            joint = Uc * (Vc @ matrix.T)
            accumulator += cat_weight * (joint @ pi)

    with np.errstate(divide="ignore", invalid="ignore"):
        log_likelihood = float(np.dot(weights, np.log(site_L)))
        ratio1 = site_d1 / site_L
        ratio2 = site_d2 / site_L
    first = float(np.dot(weights, ratio1))
    second = float(np.dot(weights, ratio2 - ratio1**2))
    return EdgeDerivatives(log_likelihood=log_likelihood, first=first, second=second)
