"""Greedy maximum-likelihood tree search (GARLI-lite).

A hill-climbing search over NNI neighbourhoods: evaluate every
nearest-neighbour interchange of the current tree, move to the best
improving neighbour, optionally re-fit branch lengths, repeat until no
neighbour improves. This is the search loop whose cost profile the paper
describes (§II-A: "a very great number of likelihood calculations"), so
the result records the launch accounting that rerooted scheduling
improves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from ..obs import get_recorder
from ..trees import Tree
from .likelihood import TreeLikelihood
from .optimize import optimize_branch_lengths
from .proposals import _swap, nni_candidates, nni_move_at, nni_move_count

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.pool import JobContext, LikelihoodPool

__all__ = ["SearchResult", "nni_neighbors", "ml_search"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a greedy ML search."""

    tree: Tree
    log_likelihood: float
    start_log_likelihood: float
    rounds: int
    evaluations: int
    kernel_launches: int

    @property
    def improvement(self) -> float:
        """Log-likelihood gain over the starting tree."""
        return self.log_likelihood - self.start_log_likelihood


def nni_neighbors(tree: Tree) -> List[Tree]:
    """All distinct NNI rearrangements of a bifurcating tree.

    Each of the ``n − 3`` internal (unrooted) edges yields two
    interchanges, so the neighbourhood has ``2(n − 3)`` trees.
    """
    neighbors: List[Tree] = []
    regular, has_pulley = nni_candidates(tree)
    n_regular = len(regular)
    for index in range(n_regular):
        for which in range(2):
            duplicate = tree.copy()
            dup_regular, _ = nni_candidates(duplicate)
            v = dup_regular[index]
            u = v.parent
            sibling = v.sibling()
            assert u is not None and sibling is not None
            _swap(v, v.children[which], u, sibling)
            duplicate.invalidate_indices()
            neighbors.append(duplicate)
    if has_pulley:
        for which in range(2):
            duplicate = tree.copy()
            a, b = duplicate.root.children
            _swap(a, a.children[which], b, b.children[0])
            duplicate.invalidate_indices()
            neighbors.append(duplicate)
    return neighbors


def _neighbor_job(
    neighbor: TreeLikelihood,
) -> Callable[["JobContext"], float]:
    return lambda ctx: ctx.evaluate(neighbor.make_case)


def ml_search(
    evaluator: TreeLikelihood,
    *,
    max_rounds: int = 20,
    optimize_lengths: bool = False,
    tolerance: float = 1e-6,
    pool: Optional["LikelihoodPool"] = None,
    incremental: bool = False,
) -> SearchResult:
    """Greedy NNI hill climbing from the evaluator's tree.

    Parameters
    ----------
    optimize_lengths:
        Re-fit branch lengths (one sweep) after each accepted topology
        move; slower but climbs further.
    tolerance:
        Minimum log-likelihood gain to accept a move.
    pool:
        Optional :class:`~repro.exec.pool.LikelihoodPool` — candidate
        trees of each round are independent jobs dispatched across the
        supervised workers. The accept decision replays the serial fold
        over the collected values in neighbour order, so the search
        visits exactly the same trees as the serial path.
    incremental:
        Evaluate each NNI candidate along its dirty path only
        (:meth:`TreeLikelihood.propose` / ``reject``, then re-apply and
        ``accept`` the winner) instead of building a fresh evaluator per
        neighbour. Candidates are enumerated in the same order as
        :func:`nni_neighbors` and their log-likelihoods are bit-identical
        to full traversals, so the search visits exactly the same trees.
        Mutually exclusive with ``pool``; the evaluator must not use
        scaling/faults/resilience.
    """
    if incremental and pool is not None:
        raise ValueError("incremental search cannot dispatch to a pool")
    current = evaluator
    current_ll = start_ll = current.log_likelihood()
    evaluations = 1
    launches = current.n_launches
    rounds = 0

    obs = get_recorder()
    for _ in range(max_rounds):
        rounds += 1
        with obs.span("search.round", category="search", round=rounds) as span:
            if incremental:
                if not current.incremental_ready:
                    current.log_likelihood()  # warm the partials
                    launches += current.n_launches
                best_index = -1
                best_ll = current_ll
                n_moves = nni_move_count(current.tree)
                for index in range(n_moves):
                    move = nni_move_at(current.tree, index)
                    ll = current.propose(move)
                    current.reject()
                    evaluations += 1
                    inc_plan = current.last_incremental_plan
                    launches += (
                        inc_plan.n_launches
                        if inc_plan is not None
                        else current.n_launches
                    )
                    if ll > best_ll + tolerance:
                        best_ll = ll
                        best_index = index
                improved = best_index >= 0
                if obs.enabled:
                    span.set_attribute("neighbors", n_moves)
                    span.set_attribute("improved", improved)
                if not improved:
                    break
                # Re-apply the winning move and keep its buffers; the
                # dirty-path re-evaluation reproduces best_ll bitwise.
                current.propose(nni_move_at(current.tree, best_index))
                current.accept()
                evaluations += 1
                inc_plan = current.last_incremental_plan
                launches += (
                    inc_plan.n_launches
                    if inc_plan is not None
                    else current.n_launches
                )
                current_ll = best_ll
            else:
                best_neighbor: Optional[TreeLikelihood] = None
                best_ll = current_ll
                neighbors = [
                    current.with_tree(tree)
                    for tree in nni_neighbors(current.tree)
                ]
                if pool is not None:
                    values = pool.map(
                        [_neighbor_job(neighbor) for neighbor in neighbors],
                        labels=[f"nni-{i}" for i in range(len(neighbors))],
                    )
                else:
                    values = [
                        neighbor.log_likelihood() for neighbor in neighbors
                    ]
                for neighbor, ll in zip(neighbors, values):
                    evaluations += 1
                    launches += neighbor.n_launches
                    if ll > best_ll + tolerance:
                        best_ll = ll
                        best_neighbor = neighbor
                if obs.enabled:
                    span.set_attribute("neighbors", len(neighbors))
                    span.set_attribute("improved", best_neighbor is not None)
                if best_neighbor is None:
                    break
                current = best_neighbor
                current_ll = best_ll
        if optimize_lengths:
            fitted = optimize_branch_lengths(current, max_sweeps=1)
            evaluations += fitted.evaluations
            launches += fitted.evaluations * current.n_launches
            current = current.with_tree(fitted.tree)
            current_ll = fitted.log_likelihood

    return SearchResult(
        tree=current.tree,
        log_likelihood=current_ll,
        start_log_likelihood=start_ll,
        rounds=rounds,
        evaluations=evaluations,
        kernel_launches=launches,
    )
