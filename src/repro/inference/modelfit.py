"""Model-parameter estimation and information-criterion model selection.

Branch lengths are not the only continuous parameters a likelihood
search iterates over (paper §VIII: "search iterations that change a
non-topology parameter will often require recomputation of the entire
tree" — exactly the full-traversal case where rerooting pays off
most). This module fits substitution-model parameters by bounded scalar
optimisation and compares fitted models with AIC/BIC:

* :func:`optimize_parameter` — generic 1-D ML fit over any model-builder
  callable (used for κ of K80/HKY85, α of discrete-Γ, ω of GY94 …).
* :func:`fit_kappa`, :func:`fit_gamma_alpha` — the common cases, ready
  made.
* :func:`model_selection` — fit a candidate set and rank by AIC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from scipy.optimize import minimize_scalar

from ..models.nucleotide import HKY85, JC69, K80
from ..models.ratematrix import SubstitutionModel
from ..models.siterates import RateCategories, discrete_gamma
from .likelihood import TreeLikelihood

__all__ = [
    "ParameterFit",
    "optimize_parameter",
    "fit_kappa",
    "fit_gamma_alpha",
    "ModelFit",
    "model_selection",
]


@dataclass(frozen=True)
class ParameterFit:
    """Outcome of a one-parameter ML fit."""

    value: float
    log_likelihood: float
    evaluations: int


def optimize_parameter(
    evaluator: TreeLikelihood,
    rebuild: Callable[[float], TreeLikelihood],
    bounds: Tuple[float, float],
    *,
    tolerance: float = 1e-4,
) -> ParameterFit:
    """Maximise the likelihood over one scalar parameter.

    Parameters
    ----------
    evaluator:
        Defines the data/tree context (used only for its bounds sanity;
        the fresh evaluators come from ``rebuild``).
    rebuild:
        Callable mapping a parameter value to a ready
        :class:`TreeLikelihood` (typically a new model over the shared
        tree and data).
    bounds:
        Search interval for the parameter.
    """
    lo, hi = bounds
    if not lo < hi:
        raise ValueError("bounds must satisfy lo < hi")
    evaluations = 0

    def negative(value: float) -> float:
        nonlocal evaluations
        evaluations += 1
        return -rebuild(float(value)).log_likelihood()

    result = minimize_scalar(
        negative, bounds=(lo, hi), method="bounded", options={"xatol": tolerance}
    )
    return ParameterFit(
        value=float(result.x),
        log_likelihood=-float(result.fun),
        evaluations=evaluations,
    )


def fit_kappa(
    evaluator: TreeLikelihood, *, bounds: Tuple[float, float] = (0.05, 50.0)
) -> ParameterFit:
    """ML transition/transversion ratio for an HKY85-shaped model.

    The fitted model keeps the evaluator's model frequencies.
    """
    frequencies = evaluator.model.frequencies

    def rebuild(kappa: float) -> TreeLikelihood:
        return TreeLikelihood(
            evaluator.tree,
            HKY85(kappa, frequencies),
            evaluator.patterns,
            rates=evaluator.rates,
            scaling=evaluator.scaling,
            mode=evaluator.mode,
        )

    return optimize_parameter(evaluator, rebuild, bounds)


def fit_gamma_alpha(
    evaluator: TreeLikelihood,
    *,
    n_categories: int = 4,
    bounds: Tuple[float, float] = (0.02, 50.0),
) -> ParameterFit:
    """ML shape parameter α of discrete-Γ rate heterogeneity."""

    def rebuild(alpha: float) -> TreeLikelihood:
        return TreeLikelihood(
            evaluator.tree,
            evaluator.model,
            evaluator.patterns,
            rates=discrete_gamma(alpha, n_categories),
            scaling=evaluator.scaling,
            mode=evaluator.mode,
        )

    return optimize_parameter(evaluator, rebuild, bounds)


@dataclass(frozen=True)
class ModelFit:
    """One candidate in a model-selection comparison."""

    name: str
    log_likelihood: float
    n_parameters: int
    aic: float
    bic: float


def model_selection(
    tree,
    data,
    candidates: Optional[Sequence[Tuple[str, SubstitutionModel, int]]] = None,
    *,
    rates: Optional[RateCategories] = None,
) -> List[ModelFit]:
    """Rank substitution models by AIC (ties broken by BIC).

    Parameters
    ----------
    candidates:
        ``(name, model, free_parameter_count)`` triples. Defaults to the
        nested nucleotide trio JC69 (0), K80 (1), HKY85 with empirical-ish
        frequencies (4). Branch lengths are held fixed across candidates
        so the comparison isolates the substitution process, which keeps
        the parameter counts honest relative to each other.

    Returns
    -------
    list
        :class:`ModelFit` entries sorted best (lowest AIC) first.
    """
    evaluator = TreeLikelihood(tree, JC69(), data, rates=rates)
    n_sites = float(evaluator.patterns.weights.sum())
    if candidates is None:
        kappa = fit_kappa(
            TreeLikelihood(tree, HKY85(2.0), data, rates=rates)
        ).value
        candidates = [
            ("JC69", JC69(), 0),
            ("K80", K80(kappa), 1),
            ("HKY85", HKY85(kappa, [0.3, 0.2, 0.2, 0.3]), 4),
        ]
    fits: List[ModelFit] = []
    for name, model, n_params in candidates:
        ll = TreeLikelihood(tree, model, data, rates=rates).log_likelihood()
        aic = 2.0 * n_params - 2.0 * ll
        bic = n_params * math.log(max(n_sites, 1.0)) - 2.0 * ll
        fits.append(
            ModelFit(
                name=name,
                log_likelihood=ll,
                n_parameters=n_params,
                aic=aic,
                bic=bic,
            )
        )
    fits.sort(key=lambda f: (f.aic, f.bic))
    return fits
