"""MCMC proposal moves over trees.

The two classic moves a MrBayes-style sampler needs:

* :func:`random_nni` — nearest-neighbour interchange around a random
  *unrooted-internal* edge (topology move). Symmetric, Hastings ratio 1.
* :func:`multiply_branch` — multiplier (log-uniform scaling) of one random
  branch length. Hastings ratio equals the multiplier.

Both return *new* trees; inputs are never mutated, so a rejected proposal
needs no undo bookkeeping.

A subtlety worth documenting: in a rooted representation of an unrooted
tree the root is a "pulley" — the edge between the root's two children is
a single edge of the unrooted topology. Swapping a subtree across the
root (child of root-child A with root-child B itself) does **not** change
the unrooted topology, so a correct NNI around the pulley edge swaps a
child of A with a child of B instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..trees import Tree
from ..trees.node import Node

__all__ = [
    "Proposal",
    "Move",
    "random_nni",
    "random_spr",
    "multiply_branch",
    "branch_length_move",
    "nni_move",
    "nni_move_count",
    "nni_move_at",
    "internal_edges",
    "nni_candidates",
]


@dataclass(frozen=True)
class Proposal:
    """A proposed tree plus the log Hastings ratio of the move."""

    tree: Tree
    log_hastings: float
    kind: str


def internal_edges(tree: Tree) -> List[Node]:
    """Regular internal edges: internal child with an internal, non-root
    parent. The root's pulley edge is reported separately by
    :func:`nni_candidates`."""
    root = tree.root
    return [
        node
        for node in root.traverse_postorder()
        if not node.is_tip and node.parent is not None and node.parent is not root
    ]


def nni_candidates(tree: Tree) -> Tuple[List[Node], bool]:
    """NNI-eligible edges of the unrooted topology.

    Returns
    -------
    (regular, has_pulley)
        ``regular`` are internal children below internal non-root parents;
        ``has_pulley`` is True when the edge through the root (both root
        children internal) is itself an internal edge. Together they
        number ``n − 3`` for a bifurcating tree of ``n ≥ 4`` tips — the
        internal-edge count of the unrooted topology.
    """
    regular = internal_edges(tree)
    root = tree.root
    has_pulley = len(root.children) == 2 and all(
        not c.is_tip for c in root.children
    )
    return regular, has_pulley


def _swap(parent_a: Node, child_a: Node, parent_b: Node, child_b: Node) -> None:
    """Exchange two subtrees between their parents (branch lengths travel
    with their subtree, keeping the move symmetric)."""
    pos_a = parent_a.children.index(child_a)
    pos_b = parent_b.children.index(child_b)
    parent_a.remove_child(child_a)
    parent_b.remove_child(child_b)
    child_b.parent = parent_a
    parent_a.children.insert(pos_a, child_b)
    child_a.parent = parent_b
    parent_b.children.insert(pos_b, child_a)


@dataclass(frozen=True)
class Move:
    """An **in-place** tree move that declares exactly what it touched.

    Unlike :class:`Proposal` (which copies the tree), a move mutates the
    working tree directly and carries everything the incremental
    evaluation path needs:

    Attributes
    ----------
    kind:
        ``"branch"`` or ``"nni"``.
    log_hastings:
        Log Hastings ratio of the move.
    touched:
        Nodes whose root-ward paths are dirtied — the input to
        :func:`repro.core.incremental.dirty_nodes`. For an NNI these are
        the two exchanged subtrees (in their *new* positions); for a
        branch-length change, the node below the scaled branch.
    changed_edges:
        Nodes whose branch (the edge above them) changed length — the
        transition matrices to recompute. NNI moves change no lengths
        (lengths travel with their subtree), so this is empty for them.
    undo:
        Zero-argument callable restoring the tree exactly (topology,
        child positions and branch lengths), so a rejected proposal
        leaves no trace.
    """

    kind: str
    log_hastings: float
    touched: List[Node] = field(default_factory=list)
    changed_edges: List[Node] = field(default_factory=list)
    undo: Callable[[], None] = lambda: None


def branch_length_move(
    tree: Tree,
    rng: np.random.Generator,
    *,
    tuning: float = 2.0 * math.log(1.2),
) -> Move:
    """In-place multiplier proposal on one random branch.

    Draws exactly the same random variates as :func:`multiply_branch`
    (edge pick, then multiplier), so a sampler switching between the
    copy-based and in-place proposals follows the same trajectory.
    """
    edges = tree.edges()
    edge = edges[int(rng.integers(len(edges)))]
    m = math.exp(tuning * (float(rng.random()) - 0.5))
    old_length = edge.length
    edge.length = max(edge.length * m, 1e-12)

    def undo() -> None:
        edge.length = old_length

    return Move(
        kind="branch",
        log_hastings=math.log(m),
        touched=[edge],
        changed_edges=[edge],
        undo=undo,
    )


def nni_move(tree: Tree, rng: np.random.Generator) -> Optional[Move]:
    """In-place nearest-neighbour interchange around a random internal edge.

    Mutates the tree with the position-preserving subtree exchange of
    :func:`random_nni` (same random variates, same resulting topology)
    but keeps node identities intact, so a frozen node→buffer index map
    stays valid and only the exchanged subtrees' root-ward paths need
    recomputation. Returns ``None`` when the tree has no internal edge.
    """
    regular, has_pulley = nni_candidates(tree)
    total = len(regular) + (1 if has_pulley else 0)
    if total == 0:
        return None
    pick = int(rng.integers(total))
    if pick < len(regular):
        v = regular[pick]
        u = v.parent
        assert u is not None
        sibling = v.sibling()
        assert sibling is not None
        child = v.children[int(rng.integers(2))]
        _swap(v, child, u, sibling)

        def undo() -> None:
            _swap(v, sibling, u, child)

        touched = [child, sibling]
    else:
        a, b = tree.root.children
        child_a = a.children[int(rng.integers(2))]
        child_b = b.children[int(rng.integers(2))]
        _swap(a, child_a, b, child_b)

        def undo() -> None:
            _swap(a, child_b, b, child_a)

        touched = [child_a, child_b]
    return Move(kind="nni", log_hastings=0.0, touched=touched, undo=undo)


def nni_move_count(tree: Tree) -> int:
    """Number of in-place NNI moves :func:`nni_move_at` can produce.

    Equals the size of the :func:`repro.inference.search.nni_neighbors`
    neighbourhood: two interchanges per regular internal edge plus two
    across the root pulley when that edge is internal.
    """
    regular, has_pulley = nni_candidates(tree)
    return 2 * len(regular) + (2 if has_pulley else 0)


def nni_move_at(tree: Tree, index: int) -> Move:
    """The ``index``-th in-place NNI move, in the exact order of
    :func:`repro.inference.search.nni_neighbors`.

    Regular edges come first (two interchanges each: the edge's flat
    index is ``index // 2``, the exchanged child ``index % 2``), then the
    two pulley interchanges. Applying the move and copying the tree
    yields the same topology as ``nni_neighbors(tree)[index]``, which is
    what lets the incremental hill-climb visit the same trees as the
    copy-based one.
    """
    regular, has_pulley = nni_candidates(tree)
    n_regular = 2 * len(regular)
    if not 0 <= index < n_regular + (2 if has_pulley else 0):
        raise IndexError(f"NNI move index {index} out of range")
    if index < n_regular:
        v = regular[index // 2]
        u = v.parent
        assert u is not None
        sibling = v.sibling()
        assert sibling is not None
        child = v.children[index % 2]
        _swap(v, child, u, sibling)

        def undo() -> None:
            _swap(v, sibling, u, child)

        touched = [child, sibling]
    else:
        a, b = tree.root.children
        child_a = a.children[index - n_regular]
        child_b = b.children[0]
        _swap(a, child_a, b, child_b)

        def undo() -> None:
            _swap(a, child_b, b, child_a)

        touched = [child_a, child_b]
    return Move(kind="nni", log_hastings=0.0, touched=touched, undo=undo)


def random_nni(tree: Tree, rng: np.random.Generator) -> Optional[Proposal]:
    """Nearest-neighbour interchange around a uniform random internal edge.

    Returns ``None`` when the tree has no internal edge (n ≤ 3), mirroring
    how samplers skip topology moves on tiny trees.
    """
    duplicate = tree.copy()
    regular, has_pulley = nni_candidates(duplicate)
    total = len(regular) + (1 if has_pulley else 0)
    if total == 0:
        return None
    pick = int(rng.integers(total))
    if pick < len(regular):
        v = regular[pick]
        u = v.parent
        assert u is not None
        sibling = v.sibling()
        assert sibling is not None
        child = v.children[int(rng.integers(2))]
        _swap(v, child, u, sibling)
    else:
        a, b = duplicate.root.children
        child_a = a.children[int(rng.integers(2))]
        child_b = b.children[int(rng.integers(2))]
        _swap(a, child_a, b, child_b)
    duplicate.invalidate_indices()
    return Proposal(tree=duplicate, log_hastings=0.0, kind="nni")


def multiply_branch(
    tree: Tree, rng: np.random.Generator, *, tuning: float = 2.0 * math.log(1.2)
) -> Proposal:
    """Scale one random branch by ``exp(tuning · (u − ½))``.

    The classic multiplier proposal; its Hastings ratio is the multiplier
    ``m`` itself (log-Hastings ``log m``).
    """
    duplicate = tree.copy()
    edges = duplicate.edges()
    edge = edges[int(rng.integers(len(edges)))]
    m = math.exp(tuning * (float(rng.random()) - 0.5))
    edge.length = max(edge.length * m, 1e-12)
    duplicate.invalidate_indices()
    return Proposal(tree=duplicate, log_hastings=math.log(m), kind="branch")


def _subtree_node_ids(node: Node) -> set:
    return {id(n) for n in node.traverse_preorder()}


def random_spr(tree: Tree, rng: np.random.Generator) -> Optional[Proposal]:
    """Subtree prune-and-regraft with a uniform reattachment point.

    A non-root subtree is pruned (its parent spliced out, the sibling
    absorbing the parent's branch), then regrafted onto a uniformly
    chosen remaining branch at a uniform position along it. The forward
    proposal density includes ``1 / L_target`` for the uniform attachment
    point, so the log Hastings ratio is
    ``log(L_target / L_merged_source)`` — the standard correction for
    uniform-reattachment SPR.

    Returns ``None`` for trees too small to admit a non-trivial SPR
    (fewer than 4 tips).
    """
    if tree.n_tips < 4:
        return None
    duplicate = tree.copy()
    root = duplicate.root

    # Prune candidates: any non-root node whose parent is not the root
    # with a tip sibling... in fact any non-root node works as long as
    # the remainder keeps >= 2 nodes and an edge to regraft onto.
    candidates = [n for n in root.traverse_postorder() if n.parent is not None]
    prune = candidates[int(rng.integers(len(candidates)))]
    parent = prune.parent
    assert parent is not None
    sibling = prune.sibling()
    if sibling is None:
        return None

    # Detach: splice parent out; sibling absorbs the parent's branch.
    merged_length = sibling.length + (parent.length if parent.parent else 0.0)
    grandparent = parent.parent
    parent.remove_child(prune)
    parent.remove_child(sibling)
    if grandparent is None:
        # Parent was the root: the sibling becomes the new root.
        sibling.length = 0.0
        merged_length = max(sibling.length, 1e-12)
        duplicate.root = sibling
        new_root_case = True
    else:
        position = grandparent.children.index(parent)
        grandparent.remove_child(parent)
        sibling.length = merged_length
        sibling.parent = grandparent
        grandparent.children.insert(position, sibling)
        new_root_case = False

    # Regraft target: any branch of the remaining tree.
    forbidden = _subtree_node_ids(prune)
    targets = [
        n
        for n in duplicate.root.traverse_postorder()
        if n.parent is not None and id(n) not in forbidden
    ]
    if not targets:
        return None
    target = targets[int(rng.integers(len(targets)))]
    target_length = max(target.length, 1e-12)
    split = float(rng.random())

    target_parent = target.parent
    assert target_parent is not None
    position = target_parent.children.index(target)
    target_parent.remove_child(target)
    junction = Node(None, target_length * (1.0 - split))
    target.length = target_length * split
    junction.add_child(target)
    junction.add_child(prune)
    junction.parent = target_parent
    target_parent.children.insert(position, junction)

    duplicate.invalidate_indices()
    if not new_root_case:
        log_hastings = math.log(target_length / max(merged_length, 1e-12))
    else:
        log_hastings = 0.0
    return Proposal(tree=duplicate, log_hastings=log_hastings, kind="spr")
