"""Consensus trees from topology samples.

Summarises a set of sampled trees (e.g. the post-burn-in trees of an MCMC
run) as a majority-rule consensus: every split occurring in more than
``min_frequency`` of the samples appears as a clade, annotated with its
support. Splits above 0.5 frequency are pairwise compatible, so the
construction is well defined; the result may be multifurcating where
support is weak.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..trees import Tree
from ..trees.node import Node

__all__ = ["split_frequencies", "majority_rule_consensus"]


def split_frequencies(trees: Sequence[Tree]) -> Dict[FrozenSet[str], float]:
    """Frequency of every non-trivial clade across the samples.

    Clades are expressed relative to a fixed reference taxon (the
    lexicographically smallest tip name): each unrooted split is recorded
    as the side *not* containing the reference, making splits from
    different rootings directly comparable.
    """
    if not trees:
        raise ValueError("need at least one tree")
    taxa = frozenset(t.name for t in trees[0].tips())
    if len(taxa) < 2:
        raise ValueError("trees must have at least two tips")
    reference = min(taxa)
    counts: Counter = Counter()
    for tree in trees:
        if frozenset(t.name for t in tree.tips()) != taxa:
            raise ValueError("all trees must share the same tip set")
        below: Dict[int, FrozenSet[str]] = {}
        seen: set = set()
        for node in tree.root.traverse_postorder():
            if node.is_tip:
                below[id(node)] = frozenset((node.name,))
                continue
            clade = frozenset().union(*(below[id(c)] for c in node.children))
            below[id(node)] = clade
            canonical = clade if reference not in clade else taxa - clade
            # Non-trivial unrooted split: both sides hold >= 2 taxa.
            if 2 <= len(canonical) <= len(taxa) - 2:
                seen.add(canonical)
        counts.update(seen)
    n = len(trees)
    return {clade: count / n for clade, count in counts.items()}


def majority_rule_consensus(
    trees: Sequence[Tree], min_frequency: float = 0.5
) -> Tree:
    """Majority-rule consensus of sampled topologies.

    Parameters
    ----------
    min_frequency:
        Keep clades occurring in strictly more than this fraction of the
        samples. Values ≥ 0.5 guarantee the retained clades are mutually
        compatible. Internal nodes of the result are labelled with their
        support (e.g. ``"0.87"``).

    Returns
    -------
    Tree
        A rooted (possibly multifurcating) tree whose root is anchored at
        the reference taxon's side; use
        :meth:`~repro.trees.tree.Tree.resolve_multifurcations` if a
        bifurcating tree is required downstream.
    """
    if min_frequency < 0.5:
        raise ValueError("min_frequency below 0.5 can yield incompatible clades")
    frequencies = split_frequencies(trees)
    taxa = sorted(t.name for t in trees[0].tips())
    kept: List[Tuple[FrozenSet[str], float]] = [
        (clade, freq)
        for clade, freq in frequencies.items()
        if freq > min_frequency
    ]
    # Nest by size: larger clades higher in the tree.
    kept.sort(key=lambda item: -len(item[0]))

    root = Node(None)
    tips = {name: Node(name, 1.0) for name in taxa}
    # owner[frozenset] -> the Node representing that clade.
    clade_nodes: List[Tuple[FrozenSet[str], Node]] = []

    def smallest_container(target: FrozenSet[str]) -> Node:
        best: Tuple[int, Node] = (len(taxa) + 1, root)
        for clade, node in clade_nodes:
            if target < clade and len(clade) < best[0]:
                best = (len(clade), node)
        return best[1]

    for clade, freq in kept:
        node = Node(f"{freq:.2f}", 1.0)
        parent = smallest_container(clade)
        parent.add_child(node)
        clade_nodes.append((clade, node))

    for name in taxa:
        target = frozenset((name,))
        parent = root
        best_size = len(taxa) + 1
        for clade, node in clade_nodes:
            if name in clade and len(clade) < best_size:
                best_size = len(clade)
                parent = node
        parent.add_child(tips[name])

    return Tree(root)
