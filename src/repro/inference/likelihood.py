"""High-level tree-likelihood facade.

:class:`TreeLikelihood` wires together the substrates — tree, model,
pattern data, rate categories, engine instance and execution plan — behind
one object with a ``log_likelihood()`` method, the way BEAST/MrBayes wrap
BEAGLE. It also exposes the paper's knobs: scheduling mode (serial vs
concurrent), manual scaling, and concurrency-optimal rerooting of the
working tree.
"""

from __future__ import annotations

from typing import Optional, Union

from ..beagle.instance import BeagleInstance
from ..core.opsets import count_operation_sets
from ..core.planner import ExecutionPlan, create_instance, execute_plan, make_plan
from ..core.reroot_opt import optimal_reroot_exhaustive, optimal_reroot_fast
from ..data.alignment import Alignment
from ..data.patterns import PatternData, compress
from ..exec.faults import FaultInjector, FaultSpec
from ..exec.resilient import FaultStats, ResilientInstance, RetryPolicy
from ..models.ratematrix import SubstitutionModel
from ..models.siterates import RateCategories
from ..trees import Tree

__all__ = ["TreeLikelihood"]


class TreeLikelihood:
    """Likelihood of an alignment on a tree under a reversible model.

    Parameters
    ----------
    tree:
        Rooted bifurcating tree whose tip names match the data.
    model:
        A reversible substitution model.
    data:
        An :class:`~repro.data.alignment.Alignment` (compressed
        automatically) or ready-made
        :class:`~repro.data.patterns.PatternData`.
    rates:
        Optional among-site rate categories.
    scaling:
        Enable per-node rescaling (needed for large/deep trees).
    mode:
        ``"concurrent"`` (default), ``"serial"`` or ``"level"`` — see
        :func:`repro.core.planner.make_plan`.
    reroot:
        ``"none"`` (default), ``"fast"`` or ``"exhaustive"`` — reroot the
        working tree for maximal concurrency before planning. Likelihood
        is unchanged (pulley principle); only the launch count drops.
    precision:
        ``"double"`` (default) or ``"single"``. Single precision mirrors
        the GPU configuration of the paper; enable ``scaling`` with it on
        deep trees or the partials underflow (§VI-F).
    resilience:
        ``None``/``False`` (default) — the engine fails fast. ``True``
        or a :class:`~repro.exec.resilient.RetryPolicy` — wrap the
        instance in a :class:`~repro.exec.resilient.ResilientInstance`:
        launches retry with backoff, persistently faulting batched sets
        degrade to per-operation launches, and detected underflow
        escalates to rescaling.
    faults:
        Optional :class:`~repro.exec.faults.FaultSpec` — wrap the
        instance in a deterministic
        :class:`~repro.exec.faults.FaultInjector` (testing/chaos runs).
    """

    def __init__(
        self,
        tree: Tree,
        model: SubstitutionModel,
        data: Union[Alignment, PatternData],
        *,
        rates: Optional[RateCategories] = None,
        scaling: bool = False,
        mode: str = "concurrent",
        reroot: str = "none",
        precision: str = "double",
        resilience: Union[RetryPolicy, bool, None] = None,
        faults: Optional[FaultSpec] = None,
    ) -> None:
        import numpy as np

        if isinstance(data, Alignment):
            data = compress(data)
        if precision not in ("double", "single"):
            raise ValueError("precision must be 'double' or 'single'")
        self.model = model
        self.patterns = data
        self.rates = rates
        self.scaling = scaling
        self.mode = mode
        self.precision = precision
        if resilience is True:
            resilience = RetryPolicy()
        elif resilience is False:
            resilience = None
        self.resilience: Optional[RetryPolicy] = resilience
        self.faults = faults
        self._dtype = np.float64 if precision == "double" else np.float32
        if reroot == "fast":
            tree = optimal_reroot_fast(tree).tree
        elif reroot == "exhaustive":
            tree = optimal_reroot_exhaustive(tree).tree
        elif reroot != "none":
            raise ValueError(f"unknown reroot option {reroot!r}")
        self.tree = tree
        self._instance: Optional[BeagleInstance] = None
        self._plan: Optional[ExecutionPlan] = None

    # ------------------------------------------------------------------
    @property
    def instance(self) -> BeagleInstance:
        """The lazily created engine instance.

        With ``faults``/``resilience`` configured, the returned object is
        the wrapped stack (injector and/or resilient facade) — it exposes
        the full ``BeagleInstance`` surface by delegation.
        """
        if self._instance is None:
            instance = create_instance(
                self.tree,
                self.model,
                self.patterns,
                rates=self.rates,
                scaling=self.scaling,
                dtype=self._dtype,
            )
            if self.faults is not None:
                instance = FaultInjector(instance, self.faults)
            if self.resilience is not None:
                instance = ResilientInstance(instance, self.resilience)
            self._instance = instance
        return self._instance

    def bare_instance(self) -> BeagleInstance:
        """A fresh, unwrapped engine instance for this evaluator's case.

        Unlike :attr:`instance` this is never cached and never carries
        the evaluator's own fault/resilience wrappers — it is the raw
        engine a :class:`~repro.exec.pool.LikelihoodPool` worker wraps in
        its *own* stack (per-worker fault stream, deadline guard,
        resilient facade).
        """
        return create_instance(
            self.tree,
            self.model,
            self.patterns,
            rates=self.rates,
            scaling=self.scaling,
            dtype=self._dtype,
        )

    def make_case(self):
        """``(instance, plan)`` factory for pool jobs.

        Matches the ``make_case`` shape of
        :meth:`repro.exec.pool.JobContext.evaluate` and
        :class:`~repro.exec.health.Sentinel`.
        """
        return self.bare_instance(), self.plan

    @property
    def fault_stats(self) -> Optional[FaultStats]:
        """Resilience counters, when resilience is enabled."""
        if isinstance(self._instance, ResilientInstance):
            return self._instance.fault_stats
        return None

    @property
    def plan(self) -> ExecutionPlan:
        if self._plan is None:
            self._plan = make_plan(self.tree, self.mode, scaling=self.scaling)
        return self._plan

    @property
    def n_launches(self) -> int:
        """Kernel launches per evaluation under the current plan."""
        return self.plan.n_launches

    def operation_sets(self) -> int:
        """Concurrent operation sets of the current tree."""
        return count_operation_sets(self.tree)

    def modelled_seconds(self, spec) -> float:
        """Device-model time of one evaluation under the current plan."""
        from ..gpu.perfmodel import WorkloadDims, time_set_sizes

        dims = WorkloadDims(
            patterns=self.patterns.n_patterns,
            states=self.model.n_states,
            categories=self.rates.n_categories if self.rates else 1,
        )
        return time_set_sizes(spec, dims, self.plan.set_sizes).seconds

    # ------------------------------------------------------------------
    def log_likelihood(self) -> float:
        """Evaluate the tree's log-likelihood (full traversal).

        Under ``resilience``, evaluation runs through
        :meth:`~repro.exec.resilient.ResilientInstance.execute`, which
        adds root-level underflow detection and rescaling escalation on
        top of the per-launch retry pipeline.
        """
        instance = self.instance
        if isinstance(instance, ResilientInstance):
            return instance.execute(self.plan)
        return execute_plan(instance, self.plan)

    def with_tree(self, tree: Tree) -> "TreeLikelihood":
        """A new evaluator for a different tree, sharing model and data.

        The engine instance is rebuilt lazily because buffer/tip index
        assignments depend on the tree shape.
        """
        return TreeLikelihood(
            tree,
            self.model,
            self.patterns,
            rates=self.rates,
            scaling=self.scaling,
            mode=self.mode,
            precision=self.precision,
            resilience=self.resilience,
            faults=self.faults,
        )

    def rerooted_for_concurrency(self, algorithm: str = "fast") -> "TreeLikelihood":
        """A new evaluator on the concurrency-optimal rerooting."""
        if algorithm not in ("fast", "exhaustive"):
            raise ValueError("algorithm must be 'fast' or 'exhaustive'")
        return TreeLikelihood(
            self.tree,
            self.model,
            self.patterns,
            rates=self.rates,
            scaling=self.scaling,
            mode=self.mode,
            reroot=algorithm,
            precision=self.precision,
            resilience=self.resilience,
            faults=self.faults,
        )

    def invalidate(self) -> None:
        """Drop cached instance/plan after mutating the tree in place."""
        self._instance = None
        self._plan = None
        self.tree.invalidate_indices()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TreeLikelihood tips={self.tree.n_tips} model={self.model.name} "
            f"patterns={self.patterns.n_patterns} mode={self.mode}>"
        )
