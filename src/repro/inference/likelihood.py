"""High-level tree-likelihood facade.

:class:`TreeLikelihood` wires together the substrates — tree, model,
pattern data, rate categories, engine instance and execution plan — behind
one object with a ``log_likelihood()`` method, the way BEAST/MrBayes wrap
BEAGLE. It also exposes the paper's knobs: scheduling mode (serial vs
concurrent), manual scaling, and concurrency-optimal rerooting of the
working tree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from ..beagle.instance import BeagleInstance
from ..beagle.workspace import TransitionMatrixCache
from ..core.incremental import incremental_plan
from ..core.opsets import count_operation_sets
from ..core.planner import ExecutionPlan, create_instance, execute_plan, make_plan
from ..core.reroot_opt import optimal_reroot_exhaustive, optimal_reroot_fast
from ..data.alignment import Alignment
from ..data.patterns import PatternData, compress
from ..exec.faults import FaultInjector, FaultSpec
from ..exec.resilient import FaultStats, ResilientInstance, RetryPolicy
from ..models.ratematrix import SubstitutionModel
from ..models.siterates import RateCategories
from ..trees import Tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .proposals import Move

__all__ = ["TreeLikelihood"]


class _SnapshotArena:
    """Preallocated save/restore storage for dirty buffers.

    One proposal snapshots the partials slots its dirty path will
    overwrite and the transition matrices it will recompute; a rejection
    copies them straight back. Buffers grow on demand to the deepest
    dirty path seen and are then reused, so steady-state propose/reject
    cycles allocate nothing.
    """

    def __init__(self, instance: BeagleInstance) -> None:
        self._instance = instance
        shape = instance._partials.shape[1:]
        mshape = instance._matrices.shape[1:]
        self._partials = np.empty((0,) + shape, dtype=instance.dtype)
        self._matrices = np.empty((0,) + mshape, dtype=instance.dtype)
        self._slots = np.empty(0, dtype=np.int64)
        self._matrix_indices = np.empty(0, dtype=np.int64)
        self._n_slots = 0
        self._n_matrices = 0

    def save(self, slots, matrix_indices) -> None:
        """Copy the named partials slots and matrix buffers aside."""
        inst = self._instance
        n, m = len(slots), len(matrix_indices)
        if n > self._partials.shape[0]:
            self._partials = np.empty(
                (n,) + inst._partials.shape[1:], dtype=inst.dtype
            )
            self._slots = np.empty(n, dtype=np.int64)
        if m > self._matrices.shape[0]:
            self._matrices = np.empty(
                (m,) + inst._matrices.shape[1:], dtype=inst.dtype
            )
            self._matrix_indices = np.empty(m, dtype=np.int64)
        self._slots[:n] = slots
        self._matrix_indices[:m] = matrix_indices
        np.take(inst._partials, self._slots[:n], axis=0, out=self._partials[:n])
        np.take(
            inst._matrices,
            self._matrix_indices[:m],
            axis=0,
            out=self._matrices[:m],
        )
        self._n_slots = n
        self._n_matrices = m

    def restore(self) -> None:
        """Write the saved buffers back into the instance."""
        inst = self._instance
        n, m = self._n_slots, self._n_matrices
        if n:
            inst._partials[self._slots[:n]] = self._partials[:n]
        if m:
            inst._matrices[self._matrix_indices[:m]] = self._matrices[:m]
        self._n_slots = 0
        self._n_matrices = 0


class TreeLikelihood:
    """Likelihood of an alignment on a tree under a reversible model.

    Parameters
    ----------
    tree:
        Rooted bifurcating tree whose tip names match the data.
    model:
        A reversible substitution model.
    data:
        An :class:`~repro.data.alignment.Alignment` (compressed
        automatically) or ready-made
        :class:`~repro.data.patterns.PatternData`.
    rates:
        Optional among-site rate categories.
    scaling:
        Enable per-node rescaling (needed for large/deep trees).
    mode:
        ``"concurrent"`` (default), ``"serial"`` or ``"level"`` — see
        :func:`repro.core.planner.make_plan`.
    reroot:
        ``"none"`` (default), ``"fast"`` or ``"exhaustive"`` — reroot the
        working tree for maximal concurrency before planning. Likelihood
        is unchanged (pulley principle); only the launch count drops.
    precision:
        ``"double"`` (default) or ``"single"``. Single precision mirrors
        the GPU configuration of the paper; enable ``scaling`` with it on
        deep trees or the partials underflow (§VI-F).
    resilience:
        ``None``/``False`` (default) — the engine fails fast. ``True``
        or a :class:`~repro.exec.resilient.RetryPolicy` — wrap the
        instance in a :class:`~repro.exec.resilient.ResilientInstance`:
        launches retry with backoff, persistently faulting batched sets
        degrade to per-operation launches, and detected underflow
        escalates to rescaling.
    faults:
        Optional :class:`~repro.exec.faults.FaultSpec` — wrap the
        instance in a deterministic
        :class:`~repro.exec.faults.FaultInjector` (testing/chaos runs).
    matrix_cache:
        ``None``/``False`` (default) — transition matrices are always
        recomputed. ``True`` — attach a fresh
        :class:`~repro.beagle.workspace.TransitionMatrixCache` to the
        engine instance. An existing cache object — share it (e.g.
        between the evaluators an MCMC chain creates via
        :meth:`with_tree`, so unchanged branch lengths hit across
        iterations).
    """

    def __init__(
        self,
        tree: Tree,
        model: SubstitutionModel,
        data: Union[Alignment, PatternData],
        *,
        rates: Optional[RateCategories] = None,
        scaling: bool = False,
        mode: str = "concurrent",
        reroot: str = "none",
        precision: str = "double",
        resilience: Union[RetryPolicy, bool, None] = None,
        faults: Optional[FaultSpec] = None,
        matrix_cache: Union[TransitionMatrixCache, bool, None] = None,
        backend=None,
    ) -> None:
        if isinstance(data, Alignment):
            data = compress(data)
        if precision not in ("double", "single"):
            raise ValueError("precision must be 'double' or 'single'")
        self.model = model
        self.patterns = data
        self.rates = rates
        self.scaling = scaling
        self.mode = mode
        self.precision = precision
        if resilience is True:
            resilience = RetryPolicy()
        elif resilience is False:
            resilience = None
        self.resilience: Optional[RetryPolicy] = resilience
        self.faults = faults
        if matrix_cache is True:
            matrix_cache = TransitionMatrixCache()
        elif matrix_cache is False:
            matrix_cache = None
        self.matrix_cache: Optional[TransitionMatrixCache] = matrix_cache
        # Kernel-backend spec (resource name, KernelBackend, or None for
        # the environment/default resolution); forwarded verbatim to
        # every engine instance this evaluator creates.
        self.backend = backend
        self._dtype = np.float64 if precision == "double" else np.float32
        if reroot == "fast":
            tree = optimal_reroot_fast(tree).tree
        elif reroot == "exhaustive":
            tree = optimal_reroot_exhaustive(tree).tree
        elif reroot != "none":
            raise ValueError(f"unknown reroot option {reroot!r}")
        self.tree = tree
        self._instance: Optional[BeagleInstance] = None
        self._plan: Optional[ExecutionPlan] = None
        self._incremental_ready = False
        self._pending: Optional["Move"] = None
        self._snapshot: Optional[_SnapshotArena] = None
        self._last_incremental_plan: Optional[ExecutionPlan] = None

    # ------------------------------------------------------------------
    @property
    def instance(self) -> BeagleInstance:
        """The lazily created engine instance.

        With ``faults``/``resilience`` configured, the returned object is
        the wrapped stack (injector and/or resilient facade) — it exposes
        the full ``BeagleInstance`` surface by delegation.
        """
        if self._instance is None:
            instance = create_instance(
                self.tree,
                self.model,
                self.patterns,
                rates=self.rates,
                scaling=self.scaling,
                dtype=self._dtype,
                backend=self.backend,
            )
            if self.matrix_cache is not None:
                instance.matrix_cache = self.matrix_cache
            if self.faults is not None:
                instance = FaultInjector(instance, self.faults)
            if self.resilience is not None:
                instance = ResilientInstance(instance, self.resilience)
            self._instance = instance
        return self._instance

    def bare_instance(self) -> BeagleInstance:
        """A fresh, unwrapped engine instance for this evaluator's case.

        Unlike :attr:`instance` this is never cached and never carries
        the evaluator's own fault/resilience wrappers — it is the raw
        engine a :class:`~repro.exec.pool.LikelihoodPool` worker wraps in
        its *own* stack (per-worker fault stream, deadline guard,
        resilient facade).
        """
        return create_instance(
            self.tree,
            self.model,
            self.patterns,
            rates=self.rates,
            scaling=self.scaling,
            dtype=self._dtype,
            backend=self.backend,
        )

    def make_case(self):
        """``(instance, plan)`` factory for pool jobs.

        Matches the ``make_case`` shape of
        :meth:`repro.exec.pool.JobContext.evaluate` and
        :class:`~repro.exec.health.Sentinel`.
        """
        return self.bare_instance(), self.plan

    @property
    def fault_stats(self) -> Optional[FaultStats]:
        """Resilience counters, when resilience is enabled."""
        if isinstance(self._instance, ResilientInstance):
            return self._instance.fault_stats
        return None

    @property
    def plan(self) -> ExecutionPlan:
        """The lazily built full-traversal execution plan.

        Plans are backend-agnostic: they name buffer indices and
        operation sets only, so the same plan replays on any registered
        kernel backend. After an accepted in-place topology move the
        plan is rebuilt on the warm instance's frozen index map (see the
        comment below) instead of via :func:`make_plan`.
        """
        if self._plan is None:
            if self._incremental_ready and self._instance is not None:
                # An accepted in-place topology move dropped the cached
                # full plan but kept the warm engine instance, whose
                # buffer indices are frozen. make_plan would reassign
                # indices from the new topology and desynchronize the
                # instance's tip rows, so rebuild full coverage on the
                # frozen index map instead.
                self._plan = self._frozen_full_plan()
            else:
                self._plan = make_plan(
                    self.tree, self.mode, scaling=self.scaling
                )
        return self._plan

    def _frozen_full_plan(self) -> ExecutionPlan:
        """A full-traversal plan on the instance's frozen index map.

        Marking every tip as changed dirties every internal node, and
        listing every edge refreshes every transition matrix — a complete
        evaluation scheduled exactly like a full plan, but without the
        index reassignment :func:`~repro.core.planner.make_plan` performs.
        """
        return incremental_plan(
            self.tree, self.tree.tips(), matrices_for=self.tree.edges()
        )

    @property
    def n_launches(self) -> int:
        """Kernel launches per evaluation under the current plan."""
        return self.plan.n_launches

    def operation_sets(self) -> int:
        """Concurrent operation sets of the current tree."""
        return count_operation_sets(self.tree)

    def modelled_seconds(self, spec) -> float:
        """Device-model time of one evaluation under the current plan."""
        from ..gpu.perfmodel import WorkloadDims, time_set_sizes

        dims = WorkloadDims(
            patterns=self.patterns.n_patterns,
            states=self.model.n_states,
            categories=self.rates.n_categories if self.rates else 1,
        )
        return time_set_sizes(spec, dims, self.plan.set_sizes).seconds

    # ------------------------------------------------------------------
    def log_likelihood(self) -> float:
        """Evaluate the tree's log-likelihood (full traversal).

        Under ``resilience``, evaluation runs through
        :meth:`~repro.exec.resilient.ResilientInstance.execute`, which
        adds root-level underflow detection and rescaling escalation on
        top of the per-launch retry pipeline.
        """
        if self._pending is not None:
            raise RuntimeError(
                "a proposal is pending; accept() or reject() it first"
            )
        instance = self.instance
        if isinstance(instance, ResilientInstance):
            return instance.execute(self.plan)
        value = execute_plan(instance, self.plan)
        self._incremental_ready = True
        return value

    # ------------------------------------------------------------------
    @property
    def proposal_pending(self) -> bool:
        """True between :meth:`propose` and :meth:`accept`/:meth:`reject`."""
        return self._pending is not None

    @property
    def incremental_ready(self) -> bool:
        """True once a full evaluation has populated every partial."""
        return self._incremental_ready

    @property
    def last_incremental_plan(self) -> Optional[ExecutionPlan]:
        """The dirty-path plan of the most recent :meth:`propose`."""
        return self._last_incremental_plan

    def _check_incremental_supported(self) -> None:
        """Raise unless this configuration supports dirty-path proposals."""
        if self.scaling:
            raise ValueError(
                "incremental proposals do not support manual scaling; "
                "rejected proposals would need scale-factor snapshots"
            )
        if self.faults is not None or self.resilience is not None:
            raise ValueError(
                "incremental proposals need a bare engine instance; "
                "disable faults/resilience"
            )

    def propose(self, move: "Move") -> float:
        """Evaluate an already-applied in-place move along its dirty path.

        ``move`` comes from :func:`~repro.inference.proposals.branch_length_move`,
        :func:`~repro.inference.proposals.nni_move` or
        :func:`~repro.inference.proposals.nni_move_at`, which mutate
        :attr:`tree` in place and return the touched nodes. This method
        snapshots the partials slots and transition matrices the dirty
        path will overwrite, executes an
        :func:`~repro.core.incremental.incremental_plan` covering only
        that path, and returns the new log-likelihood. Exactly one of
        :meth:`accept` or :meth:`reject` must follow.

        When no full evaluation has populated the partials yet (first
        call, after :meth:`invalidate`, or after rejecting a cold
        proposal), the move is evaluated by one full traversal instead —
        :attr:`last_incremental_plan` is then ``None``, and rejecting it
        drops :attr:`incremental_ready` because every buffer was
        computed with the move applied.
        """
        self._check_incremental_supported()
        if self._pending is not None:
            raise RuntimeError(
                "a proposal is pending; accept() or reject() it first"
            )
        if not self._incremental_ready:
            # A full traversal with the move already applied IS the
            # proposal's evaluation. Rebuild instance and plan together:
            # make_plan/create_instance reassign buffer indices from the
            # current topology, so reusing one with a fresh copy of the
            # other would desynchronize tip rows. No snapshot could save
            # us on rejection — the move is baked into every buffer — so
            # reject() falls back to the cold state.
            self._instance = None
            self._plan = None
            self._snapshot = None
            value = execute_plan(self.instance, self.plan)
            self._pending = move
            self._last_incremental_plan = None
            return value
        instance = self.instance
        plan = incremental_plan(
            self.tree, move.touched, matrices_for=move.changed_edges
        )
        if self._snapshot is None:
            self._snapshot = _SnapshotArena(instance)
        slots = sorted(
            {
                instance._internal_slot(op.destination)
                for op_set in plan.operation_sets
                for op in op_set
            }
        )
        self._snapshot.save(slots, plan.matrix_indices)
        self._pending = move
        self._last_incremental_plan = plan
        return execute_plan(instance, plan)

    def accept(self) -> None:
        """Keep the pending proposal's tree and buffers."""
        if self._pending is None:
            raise RuntimeError("no proposal is pending")
        self._pending = None
        if self._last_incremental_plan is None:
            # Cold proposal: the full traversal just populated every
            # buffer for the accepted tree, and the cached full plan
            # already matches it.
            self._incremental_ready = True
            return
        if self._snapshot is not None:
            self._snapshot._n_slots = 0
            self._snapshot._n_matrices = 0
        # Topology may have changed; the cached full plan is rebuilt from
        # the current tree on the next full evaluation (buffer indices are
        # frozen, so the engine instance itself stays valid).
        self._plan = None

    def reject(self) -> None:
        """Undo the pending proposal: restore buffers, then the tree."""
        if self._pending is None:
            raise RuntimeError("no proposal is pending")
        move = self._pending
        self._pending = None
        if self._last_incremental_plan is None:
            # Cold proposal: every buffer holds the rejected state, and
            # both instance and plan were built for the rejected
            # topology — drop them so the next evaluation rebuilds a
            # consistent pair for the restored tree.
            self._incremental_ready = False
            self._instance = None
            self._plan = None
            self._snapshot = None
        elif self._snapshot is not None:
            self._snapshot.restore()
        move.undo()

    def modelled_incremental_seconds(self, spec) -> float:
        """Device-model time of the most recent dirty-path evaluation."""
        from ..gpu.perfmodel import WorkloadDims, time_set_sizes

        if self._last_incremental_plan is None:
            raise RuntimeError("no incremental plan has been executed yet")
        dims = WorkloadDims(
            patterns=self.patterns.n_patterns,
            states=self.model.n_states,
            categories=self.rates.n_categories if self.rates else 1,
        )
        return time_set_sizes(
            spec, dims, self._last_incremental_plan.set_sizes
        ).seconds

    def with_tree(self, tree: Tree) -> "TreeLikelihood":
        """A new evaluator for a different tree, sharing model and data.

        The engine instance is rebuilt lazily because buffer/tip index
        assignments depend on the tree shape.
        """
        return TreeLikelihood(
            tree,
            self.model,
            self.patterns,
            rates=self.rates,
            scaling=self.scaling,
            mode=self.mode,
            precision=self.precision,
            resilience=self.resilience,
            faults=self.faults,
            matrix_cache=self.matrix_cache,
            backend=self.backend,
        )

    def sharded(self, n_shards: int = 4, **kwargs):
        """This evaluator's case as a data-parallel sharded evaluation.

        Returns a :class:`~repro.exec.sharding.ShardedLikelihood` over
        the same tree, model, patterns, rates and scheduling mode; extra
        keyword arguments (``pool``, ``retries``, ``speculate``,
        ``checkpoint_path``, ``fault_spec``, ...) pass through. The
        sharded total is bit-identical to this evaluator's
        ``log_likelihood()`` for the unscaled double-precision case —
        the deterministic reduction contract DESIGN.md documents.

        Not available for evaluators with manual ``scaling`` (a sharded
        run starts unscaled and escalates underflowing shards on its
        own) or with ``faults``/``resilience`` wrappers (the shard layer
        brings its own fault machinery through the pool workers).
        """
        if self.scaling:
            raise ValueError(
                "sharded evaluation manages scaling per shard; "
                "construct the evaluator with scaling=False"
            )
        if self.faults is not None or self.resilience is not None:
            raise ValueError(
                "sharded evaluation needs a bare engine case; "
                "disable faults/resilience (the pool workers carry "
                "their own fault and resilience stacks)"
            )
        from ..exec.sharding import ShardedLikelihood

        return ShardedLikelihood(
            self.tree,
            self.model,
            self.patterns,
            n_shards=n_shards,
            rates=self.rates,
            mode=self.mode,
            dtype=self._dtype,
            backend=self.backend,
            **kwargs,
        )

    def rerooted_for_concurrency(self, algorithm: str = "fast") -> "TreeLikelihood":
        """A new evaluator on the concurrency-optimal rerooting."""
        if algorithm not in ("fast", "exhaustive"):
            raise ValueError("algorithm must be 'fast' or 'exhaustive'")
        return TreeLikelihood(
            self.tree,
            self.model,
            self.patterns,
            rates=self.rates,
            scaling=self.scaling,
            mode=self.mode,
            reroot=algorithm,
            precision=self.precision,
            resilience=self.resilience,
            faults=self.faults,
            matrix_cache=self.matrix_cache,
            backend=self.backend,
        )

    def invalidate(self) -> None:
        """Drop cached instance/plan after mutating the tree in place."""
        self._instance = None
        self._plan = None
        self._incremental_ready = False
        self._pending = None
        self._snapshot = None
        self._last_incremental_plan = None
        self.tree.invalidate_indices()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TreeLikelihood tips={self.tree.n_tips} model={self.model.name} "
            f"patterns={self.patterns.n_patterns} mode={self.mode}>"
        )
