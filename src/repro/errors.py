"""Shared typed error machinery for the text-format parsers.

The parsers (Newick, FASTA, PHYLIP) used to surface malformed input as
raw ``ValueError``/``IndexError`` with no indication of *where* the
input broke. :class:`ParseError` is the common, position-carrying base:
it is a ``ValueError`` (so existing ``except ValueError`` call sites
keep working) that records the source format plus ``line``/``column``/
``position`` when known and renders them into the message.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["ParseError", "location_of"]


def location_of(text: str, position: int) -> Tuple[int, int]:
    """1-based ``(line, column)`` of a character offset into ``text``."""
    position = max(0, min(position, len(text)))
    line = text.count("\n", 0, position) + 1
    last_newline = text.rfind("\n", 0, position)
    return line, position - last_newline


class ParseError(ValueError):
    """Malformed input to one of the text-format parsers.

    Parameters
    ----------
    message:
        What is wrong, without location (kept as :attr:`reason`).
    source:
        The format being parsed (``"Newick"``, ``"FASTA"``, ...).
    line, column:
        1-based location of the offending character, when known.
    position:
        0-based character offset into the input, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        source: str = "input",
        line: Optional[int] = None,
        column: Optional[int] = None,
        position: Optional[int] = None,
    ) -> None:
        self.reason = message
        self.source = source
        self.line = line
        self.column = column
        self.position = position
        where = ""
        if line is not None and column is not None:
            where = f" at line {line}, column {column}"
        elif line is not None:
            where = f" at line {line}"
        elif position is not None:
            where = f" at offset {position}"
        super().__init__(f"{source}: {message}{where}")
