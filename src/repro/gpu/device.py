"""GPU device specifications for the timing model.

The paper's empirical results come from an NVIDIA Quadro GP100 (Table I:
3,584 CUDA cores, HBM2 at 720 GB/s). No GPU is available offline, so the
library substitutes an *analytical device model* (see
:mod:`repro.gpu.perfmodel`) whose knobs live here. The defaults are
calibrated so that the 64-OTU/512-pattern benchmark of the paper's
Table III lands in the same regime (balanced trees realise roughly 0.4 of
their theoretical speedup; rerooted pectinate trees realise most of
theirs); absolute GFLOPS are *not* matched — per the reproduction ground
rules only the shape of the results is claimed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "GP100", "QUADRO_P5000", "SMALL_GPU"]


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of the analytical kernel-timing model.

    Attributes
    ----------
    name:
        Human-readable device name.
    cuda_cores:
        Parallel lanes; with ``threads_per_core`` determines how many
        fine-grained threads (one per ``pattern × state × category``
        element) execute concurrently in one *wave*.
    threads_per_core:
        Resident threads a core interleaves per wave at full efficiency.
    launch_overhead_s:
        Fixed host-side cost of one kernel launch — the quantity rerooting
        minimises. Dominates undersaturated workloads.
    wave_time_s:
        Time for one full wave of ``cuda_cores × threads_per_core``
        threads (memory-latency bound for this kernel).
    per_op_overhead_s:
        Extra cost per operation inside a multi-operation launch (pointer
        arithmetic, divergent block setup — §VI-A).
    memory_bandwidth_gbs:
        Reported for completeness (Table I); not used by the timing model
        directly but kept so specs read like real datasheets.
    """

    name: str
    cuda_cores: int
    threads_per_core: int = 2
    launch_overhead_s: float = 4.0e-6
    wave_time_s: float = 2.5e-6
    per_op_overhead_s: float = 5.0e-7
    memory_bandwidth_gbs: float = 0.0

    def __post_init__(self) -> None:
        if self.cuda_cores < 1 or self.threads_per_core < 1:
            raise ValueError("core/thread counts must be positive")
        if min(self.launch_overhead_s, self.wave_time_s) <= 0:
            raise ValueError("time constants must be positive")
        if self.per_op_overhead_s < 0:
            raise ValueError("per-op overhead must be non-negative")

    @property
    def concurrent_threads(self) -> int:
        """Threads resident per wave: the device's saturation point."""
        return self.cuda_cores * self.threads_per_core


#: The paper's benchmark device (Table I): Pascal GP100 chip.
GP100 = DeviceSpec(
    name="NVIDIA Quadro GP100",
    cuda_cores=3584,
    threads_per_core=2,
    memory_bandwidth_gbs=720.0,
)

#: The device of the paper's §VIII MrBayes anecdote.
QUADRO_P5000 = DeviceSpec(
    name="NVIDIA Quadro P5000",
    cuda_cores=2560,
    threads_per_core=2,
    memory_bandwidth_gbs=288.0,
)

#: A deliberately small device: saturates quickly, so concurrency gains
#: vanish early — useful in the ablation benchmarks to show the
#: capacity-dependence the paper's introduction discusses.
SMALL_GPU = DeviceSpec(
    name="small-gpu",
    cuda_cores=256,
    threads_per_core=2,
    memory_bandwidth_gbs=50.0,
)
