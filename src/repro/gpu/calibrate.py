"""Calibrate a :class:`~repro.gpu.device.DeviceSpec` from measurements.

The analytical model prices a k-operation launch as

``t(k) = launch_overhead + k * per_op_overhead
       + wave_time * ceil(k * threads_per_op / concurrent_threads)``

For a CPU backend there is no wave machinery — every "launch" of ``k``
operations simply costs a fixed dispatch overhead plus ``k`` times the
per-operation compute — so measured ``(k, seconds)`` samples fit a
straight line ``t = a + b*k``. :func:`fit_device_spec` runs that
least-squares fit and encodes it as a :class:`DeviceSpec` whose wave
term fires exactly once per operation: ``concurrent_threads`` equals
the workload's ``threads_per_operation``, making ``ceil(k * tpo / ct)``
collapse to ``k``, with ``wave_time_s`` the fitted slope and
``launch_overhead_s`` the fitted intercept.

The payoff: a *measured* kernel backend (reference, blocked, ...)
becomes a first-class device model — ``SimulatedDevice`` and the
``--rsrc 1``-style analyses can then extrapolate set-size schedules for
hardware-free what-if studies, priced off real timings instead of the
paper's published GP100 numbers. ``benchmarks/bench_backend_matrix.py``
prints one calibrated spec per backend.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .device import DeviceSpec
from .perfmodel import WorkloadDims

__all__ = ["fit_device_spec"]

# Floors keep the fitted spec inside DeviceSpec's validity domain even
# for degenerate samples (e.g. a flat or decreasing timing curve).
_MIN_SECONDS = 1e-12


def fit_device_spec(
    name: str,
    dims: WorkloadDims,
    samples: Sequence[Tuple[int, float]],
) -> DeviceSpec:
    """Least-squares fit of ``t = a + b*k`` encoded as a device spec.

    Parameters
    ----------
    name:
        Label for the resulting spec (conventionally the backend name,
        e.g. ``"measured:blocked"``).
    dims:
        The workload the samples were measured on. The fitted spec is
        calibrated *for this shape*: one wave is one operation, so
        re-pricing a different pattern count requires refitting.
    samples:
        ``(set_size, seconds)`` pairs — the measured cost of one launch
        of ``set_size`` operations. At least two distinct set sizes.

    Returns
    -------
    DeviceSpec
        With ``wave_time_s`` the fitted per-operation slope and
        ``launch_overhead_s`` the fitted intercept (both floored to
        stay positive, as the spec's validation requires), and
        ``concurrent_threads == dims.threads_per_operation`` so the
        model's wave count equals the operation count exactly.
    """
    if len(samples) < 2:
        raise ValueError("need at least two (set_size, seconds) samples")
    ks = np.asarray([float(k) for k, _ in samples], dtype=np.float64)
    ts = np.asarray([float(t) for _, t in samples], dtype=np.float64)
    if np.unique(ks).size < 2:
        raise ValueError("samples must cover at least two distinct set sizes")
    if np.any(ts < 0.0):
        raise ValueError("measured seconds must be non-negative")
    design = np.stack([np.ones_like(ks), ks], axis=1)
    (intercept, slope), *_ = np.linalg.lstsq(design, ts, rcond=None)
    return DeviceSpec(
        name=name,
        cuda_cores=dims.threads_per_operation,
        threads_per_core=1,
        launch_overhead_s=max(float(intercept), _MIN_SECONDS),
        wave_time_s=max(float(slope), _MIN_SECONDS),
        per_op_overhead_s=0.0,
    )
