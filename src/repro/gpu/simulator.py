"""Simulated device execution of tree-evaluation plans.

:class:`SimulatedDevice` plays the role of the GP100 in the paper's
benchmarks: given an :class:`~repro.core.planner.ExecutionPlan` (or just a
tree) and the workload dimensions, it produces launch-by-launch timings,
total time, and effective GFLOPS. It can optionally drive a real
:class:`~repro.beagle.instance.BeagleInstance` alongside the model so
every simulated number corresponds to an actually computed likelihood.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.planner import ExecutionPlan, make_plan
from ..trees import Tree
from .device import GP100, DeviceSpec
from .perfmodel import EvaluationTiming, WorkloadDims, time_set_sizes

__all__ = ["SimulatedDevice", "BenchmarkPoint", "simulate_tree", "simulated_speedup"]


@dataclass(frozen=True)
class BenchmarkPoint:
    """One row of a paper-style benchmark table."""

    label: str
    n_tips: int
    n_launches: int
    seconds: float
    gflops: float
    speedup_vs_serial: float


class SimulatedDevice:
    """A device executing plans under the analytical timing model."""

    def __init__(self, spec: DeviceSpec = GP100) -> None:
        self.spec = spec

    def time_plan(self, plan: ExecutionPlan, dims: WorkloadDims) -> EvaluationTiming:
        """Simulated timing of one plan execution."""
        return time_set_sizes(self.spec, dims, plan.set_sizes)

    def time_tree(
        self, tree: Tree, dims: WorkloadDims, mode: str = "concurrent"
    ) -> EvaluationTiming:
        """Simulated timing of a tree under a scheduling mode."""
        return self.time_plan(make_plan(tree, mode), dims)

    def speedup(self, tree: Tree, dims: WorkloadDims, mode: str = "concurrent") -> float:
        """Simulated concurrent-over-serial speedup for one tree.

        This is the quantity the paper's Table III reports in the
        "NVIDIA GP100" column (there measured, here modelled).
        """
        serial = self.time_tree(tree, dims, "serial").seconds
        concurrent = self.time_tree(tree, dims, mode).seconds
        return serial / concurrent

    def benchmark(
        self,
        tree: Tree,
        dims: WorkloadDims,
        label: str = "",
        mode: str = "concurrent",
    ) -> BenchmarkPoint:
        """A complete benchmark row for one tree."""
        timing = self.time_tree(tree, dims, mode)
        return BenchmarkPoint(
            label=label or f"{tree.n_tips}-tip",
            n_tips=tree.n_tips,
            n_launches=timing.n_launches,
            seconds=timing.seconds,
            gflops=timing.gflops,
            speedup_vs_serial=self.speedup(tree, dims, mode),
        )


def simulate_tree(
    tree: Tree,
    patterns: int = 512,
    states: int = 4,
    categories: int = 1,
    spec: DeviceSpec = GP100,
    mode: str = "concurrent",
) -> EvaluationTiming:
    """One-call convenience: simulated timing of a tree evaluation."""
    dims = WorkloadDims(patterns=patterns, states=states, categories=categories)
    return SimulatedDevice(spec).time_tree(tree, dims, mode)


def simulated_speedup(
    tree: Tree,
    patterns: int = 512,
    states: int = 4,
    categories: int = 1,
    spec: DeviceSpec = GP100,
) -> float:
    """Concurrent-over-serial simulated speedup (Table III style)."""
    dims = WorkloadDims(patterns=patterns, states=states, categories=categories)
    return SimulatedDevice(spec).speedup(tree, dims)
