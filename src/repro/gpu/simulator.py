"""Simulated device execution of tree-evaluation plans.

:class:`SimulatedDevice` plays the role of the GP100 in the paper's
benchmarks: given an :class:`~repro.core.planner.ExecutionPlan` (or just a
tree) and the workload dimensions, it produces launch-by-launch timings,
total time, and effective GFLOPS. It can optionally drive a real
:class:`~repro.beagle.instance.BeagleInstance` alongside the model so
every simulated number corresponds to an actually computed likelihood.
"""

from __future__ import annotations

import math
from collections import deque
from itertools import zip_longest
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.faults import FaultSchedule, FaultSpec
    from ..exec.resilient import FaultStats, RetryPolicy

from ..core.planner import ExecutionPlan, GradientPlan, make_plan
from ..obs import get_recorder
from ..obs.profile import PHASE_MODELLED
from ..trees import Tree
from .device import GP100, DeviceSpec
from .perfmodel import (
    EvaluationTiming,
    LaunchTiming,
    WorkloadDims,
    launch_time,
    launch_time_mixed,
    time_set_sizes,
)

__all__ = [
    "SimulatedDevice",
    "BenchmarkPoint",
    "CoalesceTiming",
    "GradientTiming",
    "IncrementalTiming",
    "PoolTiming",
    "ShardTiming",
    "simulate_tree",
    "simulated_speedup",
]


@dataclass(frozen=True)
class BenchmarkPoint:
    """One row of a paper-style benchmark table."""

    label: str
    n_tips: int
    n_launches: int
    seconds: float
    gflops: float
    speedup_vs_serial: float


@dataclass(frozen=True)
class IncrementalTiming:
    """Modelled full-traversal vs dirty-path timing of one proposal.

    Attributes
    ----------
    full:
        Timing of the full-traversal plan (what a non-incremental
        sampler pays per proposal).
    incremental:
        Timing of the dirty-path plan for the same proposal.
    """

    full: EvaluationTiming
    incremental: EvaluationTiming

    @property
    def speedup(self) -> float:
        """Full-traversal seconds over dirty-path seconds."""
        if self.incremental.seconds <= 0.0:
            return float("inf")
        return self.full.seconds / self.incremental.seconds

    @property
    def operations_saved(self) -> int:
        """Partial-likelihood operations the dirty path avoids."""
        full_ops = sum(launch.n_operations for launch in self.full.launches)
        inc_ops = sum(
            launch.n_operations for launch in self.incremental.launches
        )
        return full_ops - inc_ops


@dataclass(frozen=True)
class PoolTiming:
    """Modelled execution of a job batch on a multi-worker pool.

    Attributes
    ----------
    seconds:
        Makespan — the time the last busy worker finishes.
    completed / surfaced / rerouted:
        Job accounting under the modelled fault streams.
    evicted:
        Workers removed after ``failure_threshold`` consecutive failed
        jobs.
    busy_seconds / jobs_per_worker:
        Per-worker load, index-aligned with the pool's workers.
    stats:
        Modelled :class:`~repro.exec.resilient.FaultStats` (detection is
        perfect in the model).
    """

    seconds: float
    n_jobs: int
    n_workers: int
    completed: int
    surfaced: int
    rerouted: int
    evicted: Tuple[int, ...]
    busy_seconds: Tuple[float, ...]
    jobs_per_worker: Tuple[int, ...]
    stats: "FaultStats"

    @property
    def throughput(self) -> float:
        """Completed jobs per modelled second."""
        return self.completed / self.seconds if self.seconds > 0.0 else 0.0


@dataclass(frozen=True)
class CoalesceTiming:
    """Modelled cross-request coalescing economics of one batch.

    Attributes
    ----------
    coalesced_seconds:
        Device time of the lockstep schedule: round ``r`` fuses every
        member's ``r``-th operation set into one launch of their summed
        sizes, so the per-launch fixed cost is paid once per round
        instead of once per member set.
    solo_seconds:
        The same members served one at a time on the same device (the
        uncoalesced baseline).
    coalesced_launches / solo_launches:
        Launch counts of the two schedules.
    width:
        Members in the batch.
    wasted_seconds:
        Device time the coalesced schedule spends on padded lanes —
        nonzero only when the caller passes per-member true pattern
        counts (the serve assembler's ``pad`` mode). It is the padded
        launch cost minus what a width-aware fused launch of the same
        operations at their true widths would cost, summed over rounds.
        Zero while launches stay under device saturation (padding rides
        in the same waves for free), growing once padded lanes force
        extra waves — exactly the regime where ``split`` wins.

    Per-request latency under coalescing is ``coalesced_seconds`` for
    *every* member — nobody's value is ready before the batch finishes —
    while the solo baseline's k-th member waits the cumulative time of
    the members before it. That is the p99-versus-throughput trade the
    serving bench reports.
    """

    coalesced_seconds: float
    solo_seconds: float
    coalesced_launches: int
    solo_launches: int
    width: int
    wasted_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        """Solo seconds over coalesced seconds (aggregate throughput gain).

        When true member widths were priced, the solo baseline ran each
        member at its *own* pattern count, so padding waste no longer
        cancels out of this ratio — ``pad`` has to beat an honest
        unpadded baseline.
        """
        if self.coalesced_seconds <= 0.0:
            return float("inf") if self.solo_seconds > 0.0 else 1.0
        return self.solo_seconds / self.coalesced_seconds

    @property
    def launches_saved(self) -> int:
        """Kernel launches the lockstep schedule avoids."""
        return self.solo_launches - self.coalesced_launches

    @property
    def wasted_fraction(self) -> float:
        """Share of coalesced device time spent on padded lanes."""
        if self.coalesced_seconds <= 0.0:
            return 0.0
        return self.wasted_seconds / self.coalesced_seconds


@dataclass(frozen=True)
class GradientTiming:
    """Modelled one-sweep all-branch gradient vs per-edge rerooting.

    Attributes
    ----------
    one_sweep:
        Timing of the gradient plan — the post-order traversal followed
        by the pre-order upper-partial sets (``3n − 5`` operations
        total).
    per_edge:
        Timing of the baseline that reroots above every canonical edge
        and runs a full post-order traversal per reroot (``(2n − 3) ×
        (n − 1)`` operations) — what per-edge
        :func:`~repro.inference.derivatives.edge_log_likelihood_derivatives`
        calls cost.
    n_edges:
        Canonical edges the gradient covers (``2n − 3``).
    """

    one_sweep: EvaluationTiming
    per_edge: EvaluationTiming
    n_edges: int

    @property
    def speedup(self) -> float:
        """Per-edge-reroot seconds over one-sweep seconds.

        The headline quantity of the gradient bench: linear work against
        quadratic work, so the ratio grows roughly linearly in the taxon
        count.
        """
        if self.one_sweep.seconds <= 0.0:
            return float("inf") if self.per_edge.seconds > 0.0 else 1.0
        return self.per_edge.seconds / self.one_sweep.seconds

    @property
    def launches_saved(self) -> int:
        """Kernel launches the one-sweep schedule avoids."""
        return self.per_edge.n_launches - self.one_sweep.n_launches

    @property
    def operations_saved(self) -> int:
        """Partial-update operations the one-sweep schedule avoids."""
        return self.per_edge.n_operations - self.one_sweep.n_operations


@dataclass(frozen=True)
class ShardTiming:
    """Modelled execution of one sharded likelihood evaluation.

    Attributes
    ----------
    seconds:
        Makespan — when the slowest worker finishes its shards (the
        reduction itself is host-side and modelled as free).
    unsharded_seconds:
        The same evaluation as one full-width instance, for overhead /
        speedup accounting.
    shard_seconds:
        Per-shard device time, in shard order.
    shard_widths:
        Pattern count of each shard (as :func:`repro.exec.sharding.
        plan_shards` would cut them).
    busy_seconds:
        Per-worker load under round-robin shard placement.
    """

    seconds: float
    unsharded_seconds: float
    shard_seconds: Tuple[float, ...]
    shard_widths: Tuple[int, ...]
    busy_seconds: Tuple[float, ...]

    @property
    def n_shards(self) -> int:
        """Number of shards in the modelled evaluation."""
        return len(self.shard_seconds)

    @property
    def speedup(self) -> float:
        """Unsharded seconds over sharded makespan."""
        return self.unsharded_seconds / self.seconds if self.seconds else 0.0

    @property
    def overhead(self) -> float:
        """Total sharded device-seconds over unsharded seconds, minus 1.

        The per-launch fixed cost is paid once per shard instead of
        once, so total device work grows with the shard count even
        though the makespan shrinks — this is the fault-free sharding
        overhead the benchmark gates below 5 % for sane shard widths.
        """
        if not self.unsharded_seconds:
            return 0.0
        return sum(self.shard_seconds) / self.unsharded_seconds - 1.0


class SimulatedDevice:
    """A device executing plans under the analytical timing model."""

    def __init__(self, spec: DeviceSpec = GP100) -> None:
        self.spec = spec

    def time_plan(self, plan: ExecutionPlan, dims: WorkloadDims) -> EvaluationTiming:
        """Simulated timing of one plan execution.

        Modelled device seconds are credited to the profiler's
        :data:`~repro.obs.profile.PHASE_MODELLED` phase, so simulated
        runs fill the same profile table as measured ones.
        """
        timing = time_set_sizes(self.spec, dims, plan.set_sizes)
        obs = get_recorder()
        if obs.enabled:
            obs.add_phase_seconds(
                PHASE_MODELLED, timing.seconds, calls=timing.n_launches
            )
        return timing

    def time_plan_incremental(
        self, plan: ExecutionPlan, dims: WorkloadDims
    ) -> EvaluationTiming:
        """Simulated timing of a dirty-path (incremental) plan.

        Same analytical model as :meth:`time_plan` — incremental plans
        are ordinary :class:`~repro.core.planner.ExecutionPlan` objects,
        just shorter — but the method refuses a full-traversal plan so
        callers cannot silently time the wrong thing. Modelled seconds
        are credited to :data:`~repro.obs.profile.PHASE_MODELLED`.
        """
        if not plan.incremental:
            raise ValueError(
                "plan is a full traversal; use time_plan for it"
            )
        return self.time_plan(plan, dims)

    def incremental_speedup(
        self,
        full_plan: ExecutionPlan,
        incremental_plan: ExecutionPlan,
        dims: WorkloadDims,
    ) -> IncrementalTiming:
        """Modelled economics of one dirty-path proposal.

        Times the full-traversal plan and the incremental plan under the
        same workload dimensions and returns both with the speedup and
        operations-saved accounting — the per-proposal quantity the
        incremental MCMC benchmark aggregates.
        """
        full = self.time_plan(full_plan, dims)
        incremental = self.time_plan_incremental(incremental_plan, dims)
        return IncrementalTiming(full=full, incremental=incremental)

    def _set_cost(
        self, dims: WorkloadDims, k: int, mechanism: str, n_streams: int
    ) -> LaunchTiming:
        """Modelled cost of one operation set under a launch mechanism."""
        if mechanism == "streams":
            from .streams import streams_set_time

            return streams_set_time(self.spec, dims, k, n_streams)
        if mechanism != "kernel":
            raise ValueError(f"unknown launch mechanism {mechanism!r}")
        return launch_time(self.spec, dims, k)

    def time_plan_resilient(
        self,
        plan: ExecutionPlan,
        dims: WorkloadDims,
        faults: Union["FaultSpec", "FaultSchedule"],
        policy: Optional["RetryPolicy"] = None,
        *,
        mechanism: str = "kernel",
        n_streams: int = 4,
    ) -> Tuple[EvaluationTiming, "FaultStats"]:
        """Simulated timing of one plan under faults and recovery.

        Replays the same seeded :class:`~repro.exec.faults.FaultSchedule`
        the engine-side :class:`~repro.exec.faults.FaultInjector` would
        consume — attempt ``i`` of the model faults exactly when attempt
        ``i`` of a real run would — and charges every attempt (including
        ones that fault) a full launch under the analytical model, the
        pessimistic assumption that a fault is discovered only at launch
        completion. Batched sets that exhaust their retry budget degrade
        to per-operation launches when the policy allows, so the returned
        timing quantifies what resilience costs in device time.

        ``mechanism`` selects the launch model: ``"kernel"`` is the
        paper's multi-operation kernel; ``"streams"`` issues each set
        through :func:`repro.gpu.streams.streams_set_time` (a faulting
        attempt re-pays the whole stream round, which is why the streams
        ablation degrades faster under faults).

        Returns the timing plus the modelled
        :class:`~repro.exec.resilient.FaultStats` (detection is perfect
        in the model: every injected fault is detected).
        """
        from ..exec.faults import FaultSchedule, FaultSpec
        from ..exec.resilient import FaultStats, RetryPolicy

        schedule = FaultSchedule(faults) if isinstance(faults, FaultSpec) else faults
        policy = policy or RetryPolicy()
        stats = FaultStats()
        launches: List[LaunchTiming] = []
        self._model_plan(
            plan, dims, schedule, policy, stats, launches, mechanism, n_streams
        )
        stats.injected = schedule.injected
        stats.injected_by_class = dict(schedule.by_class)
        return EvaluationTiming(launches=launches, dims=dims), stats

    def _model_plan(
        self,
        plan: ExecutionPlan,
        dims: WorkloadDims,
        schedule: "FaultSchedule",
        policy: "RetryPolicy",
        stats: "FaultStats",
        launches: List[LaunchTiming],
        mechanism: str,
        n_streams: int,
    ) -> bool:
        """Model one plan evaluation; returns False if any set errored."""

        def run_launch(k: int, batched: bool) -> bool:
            failures = 0
            underflows = 0
            while True:
                launches.append(self._set_cost(dims, k, mechanism, n_streams))
                fault = schedule.draw(batched=batched)
                if fault is None:
                    return True
                stats.detected += 1
                stats.detected_by_class[fault] = (
                    stats.detected_by_class.get(fault, 0) + 1
                )
                failures += 1
                if fault == "underflow":
                    underflows += 1
                    if underflows > policy.underflow_retries:
                        return False
                if failures > policy.max_retries:
                    return False
                stats.retried += 1

        succeeded = True
        for size in plan.set_sizes:
            if run_launch(size, batched=size > 1):
                continue
            if policy.degrade and size > 1:
                stats.degraded += 1
                if not all(run_launch(1, batched=False) for _ in range(size)):
                    stats.errors += 1
                    succeeded = False
            else:
                stats.errors += 1
                succeeded = False
        return succeeded

    # ------------------------------------------------------------------
    # Pool-level models (paper-style throughput of a degraded fleet)
    # ------------------------------------------------------------------
    def time_pool(
        self,
        plan: ExecutionPlan,
        dims: WorkloadDims,
        n_jobs: int,
        n_workers: int,
        *,
        worker_fault_specs: Optional[Sequence[Optional["FaultSpec"]]] = None,
        policy: Optional["RetryPolicy"] = None,
        failure_threshold: int = 3,
        mechanism: str = "kernel",
        n_streams: int = 4,
    ) -> PoolTiming:
        """List-scheduled timing of ``n_jobs`` identical evaluations on a
        pool of ``n_workers`` modelled devices.

        Mirrors :class:`~repro.exec.pool.LikelihoodPool` semantics in the
        analytical model: each job goes to the earliest-available worker
        that has not already failed it; each worker consumes its own
        persistent seeded :class:`~repro.exec.faults.FaultSchedule`; a
        job whose recovery pipeline is exhausted fails the worker and
        reroutes; ``failure_threshold`` consecutive failed jobs evict the
        worker (the model folds the breaker's open → half-open → evicted
        path into one step, since a modelled fault stream that exhausts
        retries would also fail the probe). Attempt-level faulting and
        recovery costs replay :meth:`time_plan_resilient` exactly.
        """
        from ..exec.faults import FaultSchedule
        from ..exec.resilient import FaultStats, RetryPolicy

        if n_jobs < 0:
            raise ValueError("n_jobs must be non-negative")
        if n_workers < 1:
            raise ValueError("need at least one worker")
        specs: List[Optional["FaultSpec"]] = list(worker_fault_specs or [])
        if len(specs) > n_workers:
            raise ValueError(f"{len(specs)} fault specs for {n_workers} workers")
        specs += [None] * (n_workers - len(specs))
        policy = policy or RetryPolicy()
        schedules = [
            FaultSchedule(spec) if spec is not None and spec.rate > 0.0 else None
            for spec in specs
        ]
        stats = FaultStats()
        available = [0.0] * n_workers
        busy = [0.0] * n_workers
        jobs_done = [0] * n_workers
        consecutive = [0] * n_workers
        alive = [True] * n_workers
        evicted: List[int] = []
        tried: Dict[int, Set[int]] = {j: set() for j in range(n_jobs)}
        completed = 0
        surfaced = 0
        rerouted = 0

        queue = deque(range(n_jobs))
        clean_seconds: Optional[float] = None
        while queue:
            job = queue.popleft()
            candidates = [
                i for i in range(n_workers) if alive[i] and i not in tried[job]
            ]
            if not candidates:
                surfaced += 1
                stats.surfaced += 1
                continue
            worker = min(candidates, key=lambda i: (available[i], i))
            schedule = schedules[worker]
            if schedule is None:
                # Healthy worker: every job costs the clean plan time.
                if clean_seconds is None:
                    clean_seconds = self.time_plan(plan, dims).seconds
                elapsed, ok = clean_seconds, True
            else:
                launches: List[LaunchTiming] = []
                ok = self._model_plan(
                    plan,
                    dims,
                    schedule,
                    policy,
                    stats,
                    launches,
                    mechanism,
                    n_streams,
                )
                elapsed = sum(launch.seconds for launch in launches)
            available[worker] += elapsed
            busy[worker] += elapsed
            if ok:
                jobs_done[worker] += 1
                consecutive[worker] = 0
                completed += 1
                continue
            consecutive[worker] += 1
            tried[job].add(worker)
            if consecutive[worker] >= failure_threshold:
                alive[worker] = False
                evicted.append(worker)
            if any(alive[i] and i not in tried[job] for i in range(n_workers)):
                rerouted += 1
                stats.rerouted += 1
                queue.append(job)
            else:
                surfaced += 1
                stats.surfaced += 1

        for schedule in schedules:
            if schedule is not None:
                stats.injected += schedule.injected
                for label, count in schedule.by_class.items():
                    stats.injected_by_class[label] = (
                        stats.injected_by_class.get(label, 0) + count
                    )
        return PoolTiming(
            seconds=max(busy) if any(busy) else 0.0,
            n_jobs=n_jobs,
            n_workers=n_workers,
            completed=completed,
            surfaced=surfaced,
            rerouted=rerouted,
            evicted=tuple(evicted),
            busy_seconds=tuple(busy),
            jobs_per_worker=tuple(jobs_done),
            stats=stats,
        )

    def degraded_fleet_curve(
        self,
        plan: ExecutionPlan,
        dims: WorkloadDims,
        n_jobs: int,
        n_workers: int,
        *,
        mechanism: str = "kernel",
        n_streams: int = 4,
    ) -> List[Tuple[int, float]]:
        """Throughput (jobs/s) of a clean pool as workers are evicted.

        Returns ``(evicted_count, throughput)`` for 0 … ``n_workers − 1``
        evictions. With identical jobs, list scheduling gives makespan
        ``ceil(n_jobs / survivors) · job_seconds``, so the curve is
        monotone non-increasing by construction — the reference shape the
        real pool's degradation benchmark is compared against.
        """
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if n_jobs < 1:
            raise ValueError("need at least one job")
        job_seconds = EvaluationTiming(
            launches=[
                self._set_cost(dims, k, mechanism, n_streams)
                for k in plan.set_sizes
            ],
            dims=dims,
        ).seconds
        curve: List[Tuple[int, float]] = []
        for evicted_count in range(n_workers):
            survivors = n_workers - evicted_count
            makespan = math.ceil(n_jobs / survivors) * job_seconds
            curve.append((evicted_count, n_jobs / makespan))
        return curve

    # ------------------------------------------------------------------
    # Cross-request coalescing (likelihood-as-a-service batches)
    # ------------------------------------------------------------------
    def time_coalesced(
        self,
        member_set_sizes: Sequence[Sequence[int]],
        dims: WorkloadDims,
        *,
        mechanism: str = "kernel",
        n_streams: int = 4,
        member_patterns: Optional[Sequence[int]] = None,
    ) -> CoalesceTiming:
        """Modelled timing of one coalesced cross-request batch.

        ``member_set_sizes`` holds each member's plan set sizes (the
        shape :class:`~repro.serve.coalesce.CoalescedBatch` exposes).
        The coalesced schedule runs members in lockstep — round ``r``
        fuses every member's ``r``-th set into one launch of the summed
        operation count, the BEAGLE 4.1 multi-client picture — while the
        solo baseline launches every member's every set separately. All
        members share ``dims``: the assembler only coalesces requests
        whose dimensions agree.

        For the assembler's ``"pad"`` mode pass the bucket's padded
        pattern count as ``dims.patterns`` *and* each member's true
        pattern count in ``member_patterns``. The coalesced schedule
        then runs at the padded width (every lane is padded), but the
        solo baseline runs each member at its own true width — a solo
        request never pads — and ``wasted_seconds`` reports the padded
        lanes' device-time cost, so ``pad`` vs ``split`` is an honest
        trade-off instead of padding waste cancelling out of the
        speedup. True-width pricing needs the additive launch model, so
        ``member_patterns`` requires the ``"kernel"`` mechanism.
        """
        members = [list(sizes) for sizes in member_set_sizes]
        if not members or any(not sizes for sizes in members):
            raise ValueError("every member needs a non-empty set-size list")
        if member_patterns is not None:
            if mechanism != "kernel":
                raise ValueError(
                    "member_patterns pricing requires the 'kernel' mechanism"
                )
            if len(member_patterns) != len(members):
                raise ValueError(
                    "member_patterns must give one pattern count per member"
                )
            member_dims = [
                WorkloadDims(
                    patterns=patterns,
                    states=dims.states,
                    categories=dims.categories,
                )
                for patterns in member_patterns
            ]
            if any(d.patterns > dims.patterns for d in member_dims):
                raise ValueError(
                    "a member's true pattern count exceeds the padded width"
                )
        rounds: List[List[Tuple[int, int]]] = []
        for sizes in zip_longest(*members):
            rounds.append(
                [(i, k) for i, k in enumerate(sizes) if k is not None]
            )
        coalesced = [
            self._set_cost(
                dims, sum(k for _, k in round_ops), mechanism, n_streams
            )
            for round_ops in rounds
        ]
        wasted = 0.0
        if member_patterns is None:
            solo = [
                self._set_cost(dims, k, mechanism, n_streams)
                for sizes in members
                for k in sizes
            ]
        else:
            solo = [
                self._set_cost(member_dims[i], k, mechanism, n_streams)
                for i, sizes in enumerate(members)
                for k in sizes
            ]
            # Padded launch cost minus a width-aware fused launch of the
            # same operations at their true widths: the padded lanes'
            # device time, per round.
            for round_ops, padded in zip(rounds, coalesced):
                n_ops = sum(k for _, k in round_ops)
                true_threads = sum(
                    k * member_dims[i].threads_per_operation
                    for i, k in round_ops
                )
                true_flops = sum(
                    k * member_dims[i].flops_per_operation
                    for i, k in round_ops
                )
                ideal = launch_time_mixed(
                    self.spec, n_ops, true_threads, true_flops
                )
                wasted += padded.seconds - ideal.seconds
        return CoalesceTiming(
            coalesced_seconds=sum(t.seconds for t in coalesced),
            solo_seconds=sum(t.seconds for t in solo),
            coalesced_launches=len(coalesced),
            solo_launches=len(solo),
            width=len(members),
            wasted_seconds=wasted,
        )

    def coalescing_curve(
        self,
        set_sizes: Sequence[int],
        dims: WorkloadDims,
        widths: Sequence[int],
        *,
        mechanism: str = "kernel",
        n_streams: int = 4,
    ) -> List[Tuple[int, float, float]]:
        """Throughput and per-request latency as batch width grows.

        Returns ``(width, requests_per_second, per_request_seconds)``
        for homogeneous batches of ``width`` identical members with the
        given ``set_sizes``. Throughput rises as the per-launch fixed
        cost amortises across members; per-request latency *also* rises,
        because every member waits for the whole batch — the curve the
        serving bench plots and the brownout widen-first policy banks
        on.
        """
        curve: List[Tuple[int, float, float]] = []
        for width in widths:
            if width < 1:
                raise ValueError("widths must be positive")
            timing = self.time_coalesced(
                [list(set_sizes)] * width,
                dims,
                mechanism=mechanism,
                n_streams=n_streams,
            )
            seconds = timing.coalesced_seconds
            curve.append(
                (width, width / seconds if seconds > 0.0 else 0.0, seconds)
            )
        return curve

    # ------------------------------------------------------------------
    # Shard-count scaling (data-parallel site sharding)
    # ------------------------------------------------------------------
    def time_sharded(
        self,
        plan: ExecutionPlan,
        dims: WorkloadDims,
        n_shards: int,
        *,
        n_workers: int = 1,
        min_width: Optional[int] = None,
    ) -> ShardTiming:
        """Modelled timing of one sharded evaluation.

        Shard widths come from :func:`repro.exec.sharding.plan_shards`
        (even weights), so the model cuts the pattern axis exactly where
        :class:`~repro.exec.sharding.ShardedLikelihood` would, including
        the minimum-width floor. Each shard runs the *same* plan — the
        tree does not change, only the pattern count per launch — and
        shards are placed round-robin on ``n_workers`` modelled devices.
        The deterministic host-side reduction is modelled as free: its
        cost is ``O(n_patterns)`` additions against ``O(patterns ×
        states² × tips)`` device work.
        """
        from ..exec.sharding import MIN_SHARD_WIDTH, plan_shards

        if n_workers < 1:
            raise ValueError("need at least one worker")
        shards = plan_shards(
            dims.patterns,
            n_shards,
            min_width=MIN_SHARD_WIDTH if min_width is None else min_width,
        )
        shard_seconds: List[float] = []
        for shard in shards:
            shard_dims = WorkloadDims(
                patterns=shard.width,
                states=dims.states,
                categories=dims.categories,
            )
            shard_seconds.append(
                time_set_sizes(self.spec, shard_dims, plan.set_sizes).seconds
            )
        busy = [0.0] * n_workers
        for index, seconds in enumerate(shard_seconds):
            busy[index % n_workers] += seconds
        return ShardTiming(
            seconds=max(busy),
            unsharded_seconds=time_set_sizes(
                self.spec, dims, plan.set_sizes
            ).seconds,
            shard_seconds=tuple(shard_seconds),
            shard_widths=tuple(shard.width for shard in shards),
            busy_seconds=tuple(busy),
        )

    def shard_scaling_curve(
        self,
        plan: ExecutionPlan,
        dims: WorkloadDims,
        shard_counts: Sequence[int],
        *,
        workers_per_shard: bool = True,
        n_workers: int = 1,
    ) -> List[Tuple[int, float]]:
        """Patterns/second as the shard count grows.

        Returns ``(n_shards, patterns_per_second)`` pairs. With
        ``workers_per_shard`` every shard gets its own modelled device
        (the scaling ceiling); otherwise shards share ``n_workers``
        round-robin. The curve bends where the per-launch fixed cost —
        paid once per shard per operation set — stops being amortised
        by the shrinking shard width: the model's version of the
        benchmark's throughput-vs-worker-count plot.
        """
        curve: List[Tuple[int, float]] = []
        for count in shard_counts:
            timing = self.time_sharded(
                plan,
                dims,
                count,
                n_workers=count if workers_per_shard else n_workers,
            )
            curve.append(
                (count, dims.patterns / timing.seconds if timing.seconds else 0.0)
            )
        return curve

    def time_tree(
        self, tree: Tree, dims: WorkloadDims, mode: str = "concurrent"
    ) -> EvaluationTiming:
        """Simulated timing of a tree under a scheduling mode."""
        return self.time_plan(make_plan(tree, mode), dims)

    def speedup(self, tree: Tree, dims: WorkloadDims, mode: str = "concurrent") -> float:
        """Simulated concurrent-over-serial speedup for one tree.

        This is the quantity the paper's Table III reports in the
        "NVIDIA GP100" column (there measured, here modelled).
        """
        serial = self.time_tree(tree, dims, "serial").seconds
        concurrent = self.time_tree(tree, dims, mode).seconds
        return serial / concurrent

    def time_gradient(
        self,
        tree: Tree,
        dims: WorkloadDims,
        mode: str = "concurrent",
        *,
        plan: Optional[GradientPlan] = None,
    ) -> GradientTiming:
        """Modelled all-branch derivative economics for one tree.

        Times the one-sweep gradient plan (post-order traversal plus
        pre-order upper-partial sets, ``3n − 5`` operations) against the
        per-edge baseline that reroots above every canonical edge and
        pays a full post-order traversal each time — the exact schedule
        per-edge :func:`~repro.inference.derivatives.
        edge_log_likelihood_derivatives` calls execute, built with
        :func:`~repro.trees.reroot.reroot_above` per edge so the
        baseline's set structure is real, not assumed. Both schedules
        are timed under the same ``dims`` and ``mode``; modelled seconds
        of the one-sweep schedule are credited to
        :data:`~repro.obs.profile.PHASE_MODELLED`.
        """
        from ..core.planner import make_gradient_plan
        from ..inference.derivatives import canonical_edges
        from ..trees.reroot import reroot_above

        gplan = plan if plan is not None else make_gradient_plan(tree, mode)
        sweep_sizes = list(gplan.post.set_sizes) + list(gplan.upper_set_sizes)
        one_sweep = time_set_sizes(self.spec, dims, sweep_sizes)
        launches: List[LaunchTiming] = []
        edges = canonical_edges(gplan.tree)
        for edge in edges:
            rerooted = reroot_above(gplan.tree, edge, fraction=0.0)
            edge_plan = make_plan(rerooted, mode, scaling=False)
            launches.extend(
                time_set_sizes(self.spec, dims, edge_plan.set_sizes).launches
            )
        per_edge = EvaluationTiming(launches=launches, dims=dims)
        obs = get_recorder()
        if obs.enabled:
            obs.add_phase_seconds(
                PHASE_MODELLED, one_sweep.seconds, calls=one_sweep.n_launches
            )
        return GradientTiming(
            one_sweep=one_sweep, per_edge=per_edge, n_edges=len(edges)
        )

    def benchmark(
        self,
        tree: Tree,
        dims: WorkloadDims,
        label: str = "",
        mode: str = "concurrent",
    ) -> BenchmarkPoint:
        """A complete benchmark row for one tree."""
        timing = self.time_tree(tree, dims, mode)
        return BenchmarkPoint(
            label=label or f"{tree.n_tips}-tip",
            n_tips=tree.n_tips,
            n_launches=timing.n_launches,
            seconds=timing.seconds,
            gflops=timing.gflops,
            speedup_vs_serial=self.speedup(tree, dims, mode),
        )


def simulate_tree(
    tree: Tree,
    patterns: int = 512,
    states: int = 4,
    categories: int = 1,
    spec: DeviceSpec = GP100,
    mode: str = "concurrent",
) -> EvaluationTiming:
    """One-call convenience: simulated timing of a tree evaluation."""
    dims = WorkloadDims(patterns=patterns, states=states, categories=categories)
    return SimulatedDevice(spec).time_tree(tree, dims, mode)


def simulated_speedup(
    tree: Tree,
    patterns: int = 512,
    states: int = 4,
    categories: int = 1,
    spec: DeviceSpec = GP100,
) -> float:
    """Concurrent-over-serial simulated speedup (Table III style)."""
    dims = WorkloadDims(patterns=patterns, states=states, categories=categories)
    return SimulatedDevice(spec).speedup(tree, dims)
