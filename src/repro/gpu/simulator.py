"""Simulated device execution of tree-evaluation plans.

:class:`SimulatedDevice` plays the role of the GP100 in the paper's
benchmarks: given an :class:`~repro.core.planner.ExecutionPlan` (or just a
tree) and the workload dimensions, it produces launch-by-launch timings,
total time, and effective GFLOPS. It can optionally drive a real
:class:`~repro.beagle.instance.BeagleInstance` alongside the model so
every simulated number corresponds to an actually computed likelihood.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.faults import FaultSchedule, FaultSpec
    from ..exec.resilient import FaultStats, RetryPolicy

from ..core.planner import ExecutionPlan, make_plan
from ..trees import Tree
from .device import GP100, DeviceSpec
from .perfmodel import (
    EvaluationTiming,
    LaunchTiming,
    WorkloadDims,
    launch_time,
    time_set_sizes,
)

__all__ = ["SimulatedDevice", "BenchmarkPoint", "simulate_tree", "simulated_speedup"]


@dataclass(frozen=True)
class BenchmarkPoint:
    """One row of a paper-style benchmark table."""

    label: str
    n_tips: int
    n_launches: int
    seconds: float
    gflops: float
    speedup_vs_serial: float


class SimulatedDevice:
    """A device executing plans under the analytical timing model."""

    def __init__(self, spec: DeviceSpec = GP100) -> None:
        self.spec = spec

    def time_plan(self, plan: ExecutionPlan, dims: WorkloadDims) -> EvaluationTiming:
        """Simulated timing of one plan execution."""
        return time_set_sizes(self.spec, dims, plan.set_sizes)

    def time_plan_resilient(
        self,
        plan: ExecutionPlan,
        dims: WorkloadDims,
        faults: Union["FaultSpec", "FaultSchedule"],
        policy: Optional["RetryPolicy"] = None,
    ) -> Tuple[EvaluationTiming, "FaultStats"]:
        """Simulated timing of one plan under faults and recovery.

        Replays the same seeded :class:`~repro.exec.faults.FaultSchedule`
        the engine-side :class:`~repro.exec.faults.FaultInjector` would
        consume — attempt ``i`` of the model faults exactly when attempt
        ``i`` of a real run would — and charges every attempt (including
        ones that fault) a full launch under the analytical model, the
        pessimistic assumption that a fault is discovered only at launch
        completion. Batched sets that exhaust their retry budget degrade
        to per-operation launches when the policy allows, so the returned
        timing quantifies what resilience costs in device time.

        Returns the timing plus the modelled
        :class:`~repro.exec.resilient.FaultStats` (detection is perfect
        in the model: every injected fault is detected).
        """
        from ..exec.faults import FaultSchedule, FaultSpec
        from ..exec.resilient import FaultStats, RetryPolicy

        schedule = FaultSchedule(faults) if isinstance(faults, FaultSpec) else faults
        policy = policy or RetryPolicy()
        stats = FaultStats()
        launches: List[LaunchTiming] = []

        def run_launch(k: int, batched: bool) -> bool:
            failures = 0
            underflows = 0
            while True:
                launches.append(launch_time(self.spec, dims, k))
                fault = schedule.draw(batched=batched)
                if fault is None:
                    return True
                stats.detected += 1
                stats.detected_by_class[fault] = (
                    stats.detected_by_class.get(fault, 0) + 1
                )
                failures += 1
                if fault == "underflow":
                    underflows += 1
                    if underflows > policy.underflow_retries:
                        return False
                if failures > policy.max_retries:
                    return False
                stats.retried += 1

        for size in plan.set_sizes:
            if run_launch(size, batched=size > 1):
                continue
            if policy.degrade and size > 1:
                stats.degraded += 1
                if not all(run_launch(1, batched=False) for _ in range(size)):
                    stats.errors += 1
            else:
                stats.errors += 1

        stats.injected = schedule.injected
        stats.injected_by_class = dict(schedule.by_class)
        return EvaluationTiming(launches=launches, dims=dims), stats

    def time_tree(
        self, tree: Tree, dims: WorkloadDims, mode: str = "concurrent"
    ) -> EvaluationTiming:
        """Simulated timing of a tree under a scheduling mode."""
        return self.time_plan(make_plan(tree, mode), dims)

    def speedup(self, tree: Tree, dims: WorkloadDims, mode: str = "concurrent") -> float:
        """Simulated concurrent-over-serial speedup for one tree.

        This is the quantity the paper's Table III reports in the
        "NVIDIA GP100" column (there measured, here modelled).
        """
        serial = self.time_tree(tree, dims, "serial").seconds
        concurrent = self.time_tree(tree, dims, mode).seconds
        return serial / concurrent

    def benchmark(
        self,
        tree: Tree,
        dims: WorkloadDims,
        label: str = "",
        mode: str = "concurrent",
    ) -> BenchmarkPoint:
        """A complete benchmark row for one tree."""
        timing = self.time_tree(tree, dims, mode)
        return BenchmarkPoint(
            label=label or f"{tree.n_tips}-tip",
            n_tips=tree.n_tips,
            n_launches=timing.n_launches,
            seconds=timing.seconds,
            gflops=timing.gflops,
            speedup_vs_serial=self.speedup(tree, dims, mode),
        )


def simulate_tree(
    tree: Tree,
    patterns: int = 512,
    states: int = 4,
    categories: int = 1,
    spec: DeviceSpec = GP100,
    mode: str = "concurrent",
) -> EvaluationTiming:
    """One-call convenience: simulated timing of a tree evaluation."""
    dims = WorkloadDims(patterns=patterns, states=states, categories=categories)
    return SimulatedDevice(spec).time_tree(tree, dims, mode)


def simulated_speedup(
    tree: Tree,
    patterns: int = 512,
    states: int = 4,
    categories: int = 1,
    spec: DeviceSpec = GP100,
) -> float:
    """Concurrent-over-serial simulated speedup (Table III style)."""
    dims = WorkloadDims(patterns=patterns, states=states, categories=categories)
    return SimulatedDevice(spec).speedup(tree, dims)
