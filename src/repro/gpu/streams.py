"""Streams-based concurrent execution model (paper §IV-B alternative).

BEAGLE can exploit subtree concurrency two ways: the *multi-operation
kernel* (one launch per operation set — the mechanism modelled in
:mod:`repro.gpu.perfmodel`) or a set of CUDA *streams* / OpenCL queues,
where each operation is launched separately but launches into different
streams overlap on the device. The paper's reference [2] found the
multi-operation kernel the most efficient for CUDA; this module models
the streams alternative so the comparison can be reproduced as an
ablation.

Model of one operation set of ``k`` independent operations over ``S``
streams:

* the host issues ``k`` asynchronous launches; issuing is cheaper than a
  synchronous launch by ``ASYNC_ISSUE_FRACTION`` but still serial, so the
  host-side floor is ``k · launch_overhead · fraction`` — for the small
  kernels of this domain the host is the bottleneck, which is exactly why
  reference [2] found the multi-operation kernel superior;
* the device executes up to ``S`` operations concurrently; total device
  time is wave-quantised over all threads but at least one wave per
  ``ceil(k / S)`` round;
* host issue and device execution overlap; the set completes when both
  are done, plus one synchronisation of ``launch_overhead``.
"""

from __future__ import annotations

import math
from typing import Sequence

from .device import DeviceSpec
from .perfmodel import EvaluationTiming, LaunchTiming, WorkloadDims

__all__ = ["ASYNC_ISSUE_FRACTION", "streams_set_time", "streams_time_set_sizes"]

#: Relative cost of issuing an asynchronous (stream) launch compared to a
#: synchronous kernel launch.
ASYNC_ISSUE_FRACTION = 0.75


def streams_set_time(
    spec: DeviceSpec,
    dims: WorkloadDims,
    n_operations: int,
    n_streams: int,
) -> LaunchTiming:
    """Simulated time of one operation set executed via streams."""
    if n_operations < 1:
        raise ValueError("a set needs at least one operation")
    if n_streams < 1:
        raise ValueError("need at least one stream")
    rounds = math.ceil(n_operations / n_streams)
    total_waves = max(
        rounds,
        math.ceil(
            n_operations * dims.threads_per_operation / spec.concurrent_threads
        ),
    )
    execution = total_waves * spec.wave_time_s
    host = n_operations * spec.launch_overhead_s * ASYNC_ISSUE_FRACTION
    seconds = max(host, execution) + spec.launch_overhead_s
    return LaunchTiming(
        n_operations=n_operations,
        n_waves=total_waves,
        seconds=seconds,
        flops=n_operations * dims.flops_per_operation,
    )


def streams_time_set_sizes(
    spec: DeviceSpec,
    dims: WorkloadDims,
    set_sizes: Sequence[int],
    n_streams: int = 4,
) -> EvaluationTiming:
    """Simulated timing of a whole evaluation under stream scheduling."""
    launches = [
        streams_set_time(spec, dims, k, n_streams) for k in set_sizes
    ]
    return EvaluationTiming(launches=launches, dims=dims)
