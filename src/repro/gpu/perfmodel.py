"""Analytical kernel-timing model.

The model captures the three effects that determine the paper's results
— and nothing more:

1. **Kernel-launch overhead.** Every operation set costs a fixed
   ``launch_overhead_s``. Serial evaluation pays it ``n − 1`` times;
   concurrent evaluation once per set. This is the term rerooting
   attacks.
2. **Wave-quantised execution.** A launch with ``k`` operations runs
   ``k · categories · patterns · states`` fine-grained threads. The device
   executes ``concurrent_threads`` of them per wave; a launch takes
   ``ceil(threads / concurrent_threads)`` waves of ``wave_time_s`` each.
   Undersaturated launches (the paper's regime: 512 patterns × 4 states =
   2,048 threads on a 7,168-thread device) take one wave regardless of
   size — which is precisely why batching independent operations is free
   until saturation, and why gains flatten for very large sets (paper
   §VII-D's observation that device saturation hits balanced trees
   hardest).
3. **Per-operation scheduling cost** inside a multi-operation launch
   (pointer arithmetic, block setup — §VI-A), which is why realised
   speedups stay below the theoretical ``(n−1)/sets`` bound.

Time of one launch with ``k`` operations::

    t(k) = launch_overhead + k · per_op_overhead
           + wave_time · ceil(k·C·P·S / concurrent_threads)

Throughput is reported as effective GFLOPS over the whole evaluation,
using the same FLOP accounting as the real kernels
(:func:`repro.beagle.kernels.operation_flops`) — the paper's §VI-C metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..beagle.kernels import operation_flops
from .device import DeviceSpec

__all__ = [
    "WorkloadDims",
    "launch_time",
    "launch_time_mixed",
    "LaunchTiming",
    "EvaluationTiming",
    "time_set_sizes",
]


@dataclass(frozen=True)
class WorkloadDims:
    """Problem dimensions of one likelihood evaluation."""

    patterns: int
    states: int = 4
    categories: int = 1

    def __post_init__(self) -> None:
        if min(self.patterns, self.states, self.categories) < 1:
            raise ValueError("workload dimensions must be positive")

    @property
    def threads_per_operation(self) -> int:
        """Fine-grained threads per operation: one per grid element."""
        return self.patterns * self.states * self.categories

    @property
    def flops_per_operation(self) -> int:
        """Floating-point operations one partials operation costs."""
        return operation_flops(self.patterns, self.states, self.categories)


@dataclass(frozen=True)
class LaunchTiming:
    """Breakdown of one simulated kernel launch."""

    n_operations: int
    n_waves: int
    seconds: float
    flops: int = 0
    occupancy: float = 0.0


@dataclass(frozen=True)
class EvaluationTiming:
    """Timing of a full tree evaluation (a sequence of launches)."""

    launches: List[LaunchTiming]
    dims: Optional[WorkloadDims] = None

    @property
    def n_launches(self) -> int:
        """Kernel launches in the evaluation."""
        return len(self.launches)

    @property
    def n_operations(self) -> int:
        """Operations summed over all launches."""
        return sum(l.n_operations for l in self.launches)

    @property
    def seconds(self) -> float:
        """Modelled seconds summed over all launches."""
        return sum(l.seconds for l in self.launches)

    @property
    def flops(self) -> int:
        """Floating-point operations summed over all launches."""
        return sum(l.flops for l in self.launches)

    @property
    def gflops(self) -> float:
        """Effective throughput of the partials kernel (paper §VI-C)."""
        if self.seconds <= 0:
            return 0.0
        return self.flops / self.seconds / 1e9

    @property
    def mean_occupancy(self) -> float:
        """Time-weighted achieved occupancy over the evaluation.

        The paper's §I frames the whole optimisation as raising *achieved*
        occupancy toward the theoretical limit: serial schedules leave the
        device mostly idle, rerooting fills it. 1.0 means every wave of
        every launch ran with a full complement of threads.
        """
        if self.seconds <= 0:
            return 0.0
        weighted = sum(l.occupancy * l.seconds for l in self.launches)
        return weighted / self.seconds


def launch_time(spec: DeviceSpec, dims: WorkloadDims, n_operations: int) -> LaunchTiming:
    """Simulated time of one launch computing ``n_operations`` partials."""
    if n_operations < 1:
        raise ValueError("a launch needs at least one operation")
    return launch_time_mixed(
        spec,
        n_operations,
        n_operations * dims.threads_per_operation,
        n_operations * dims.flops_per_operation,
    )


def launch_time_mixed(
    spec: DeviceSpec, n_operations: int, total_threads: int, total_flops: int
) -> LaunchTiming:
    """Launch timing for heterogeneous operations (partitioned analyses).

    A multi-operation launch may mix operations of different partitions —
    different pattern counts, states, even categories (paper §IV-A). Only
    the totals matter to the model: thread count sets the wave count,
    operation count sets the scheduling overhead.
    """
    if n_operations < 1:
        raise ValueError("a launch needs at least one operation")
    if total_threads < 1 or total_flops < 0:
        raise ValueError("invalid launch totals")
    waves = math.ceil(total_threads / spec.concurrent_threads)
    seconds = (
        spec.launch_overhead_s
        + n_operations * spec.per_op_overhead_s
        + waves * spec.wave_time_s
    )
    # Achieved occupancy: fraction of the device's thread slots used over
    # the launch's waves.
    occupancy = total_threads / (waves * spec.concurrent_threads)
    return LaunchTiming(
        n_operations=n_operations,
        n_waves=waves,
        seconds=seconds,
        flops=total_flops,
        occupancy=occupancy,
    )


def time_set_sizes(
    spec: DeviceSpec, dims: WorkloadDims, set_sizes: Sequence[int]
) -> EvaluationTiming:
    """Simulated timing of an evaluation given its operation-set sizes."""
    launches = [launch_time(spec, dims, k) for k in set_sizes]
    return EvaluationTiming(launches=launches, dims=dims)
