"""Simulated-GPU substrate: device specs and the analytical timing model."""

from .calibrate import fit_device_spec
from .device import GP100, QUADRO_P5000, SMALL_GPU, DeviceSpec
from .perfmodel import (
    launch_time_mixed,
    EvaluationTiming,
    LaunchTiming,
    WorkloadDims,
    launch_time,
    time_set_sizes,
)
from .streams import (
    ASYNC_ISSUE_FRACTION,
    streams_set_time,
    streams_time_set_sizes,
)
from .simulator import (
    BenchmarkPoint,
    IncrementalTiming,
    ShardTiming,
    SimulatedDevice,
    simulate_tree,
    simulated_speedup,
)

__all__ = [
    "DeviceSpec",
    "GP100",
    "QUADRO_P5000",
    "SMALL_GPU",
    "WorkloadDims",
    "LaunchTiming",
    "EvaluationTiming",
    "launch_time",
    "launch_time_mixed",
    "time_set_sizes",
    "ASYNC_ISSUE_FRACTION",
    "streams_set_time",
    "streams_time_set_sizes",
    "SimulatedDevice",
    "BenchmarkPoint",
    "ShardTiming",
    "IncrementalTiming",
    "simulate_tree",
    "simulated_speedup",
    "fit_device_spec",
]
