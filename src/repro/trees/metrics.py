"""Tree shape statistics.

The paper's effect sizes are governed entirely by topology, so the
benchmarks and tests lean on these statistics to characterise how
balanced or pectinate a tree is.
"""

from __future__ import annotations

from typing import Dict

from .tree import Tree
from .traversal import node_depths, node_heights

__all__ = [
    "tree_height",
    "colless_index",
    "normalized_colless",
    "sackin_index",
    "n_cherries",
    "is_pectinate",
    "is_perfectly_balanced",
    "root_tip_split",
    "shape_summary",
]


def tree_height(tree: Tree) -> int:
    """Maximum edge-count depth of any node (0 for a single tip)."""
    return max(node_depths(tree).values())


def _subtree_tip_counts(tree: Tree) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for node in tree.root.traverse_postorder():
        if node.is_tip:
            counts[id(node)] = 1
        else:
            counts[id(node)] = sum(counts[id(c)] for c in node.children)
    return counts


def colless_index(tree: Tree) -> int:
    """Colless imbalance: sum over internal nodes of |tips(left) − tips(right)|.

    0 for a perfectly balanced tree with 2^k tips; maximal,
    ``(n−1)(n−2)/2``, for a pectinate tree.
    """
    counts = _subtree_tip_counts(tree)
    total = 0
    for node in tree.root.traverse_postorder():
        if not node.is_tip:
            if len(node.children) != 2:
                raise ValueError("Colless index requires a bifurcating tree")
            a, b = (counts[id(c)] for c in node.children)
            total += abs(a - b)
    return total


def normalized_colless(tree: Tree) -> float:
    """Colless index scaled to [0, 1] by the pectinate maximum."""
    n = tree.n_tips
    if n < 3:
        return 0.0
    return colless_index(tree) / ((n - 1) * (n - 2) / 2)


def sackin_index(tree: Tree) -> int:
    """Sackin imbalance: sum of tip depths."""
    depths = node_depths(tree)
    return sum(depths[id(t)] for t in tree.tips())


def n_cherries(tree: Tree) -> int:
    """Number of internal nodes whose two children are both tips."""
    return sum(
        1
        for node in tree.root.traverse_postorder()
        if not node.is_tip and all(c.is_tip for c in node.children)
    )


def is_pectinate(tree: Tree) -> bool:
    """True for a caterpillar: every internal node has at least one tip child."""
    if tree.n_tips <= 2:
        return True
    return all(
        any(c.is_tip for c in node.children)
        for node in tree.root.traverse_postorder()
        if not node.is_tip
    ) and n_cherries(tree) == 1


def is_perfectly_balanced(tree: Tree) -> bool:
    """True when all tips sit at equal depth and every split is even."""
    counts = _subtree_tip_counts(tree)
    for node in tree.root.traverse_postorder():
        if node.is_tip:
            continue
        child_counts = [counts[id(c)] for c in node.children]
        if max(child_counts) - min(child_counts) > 0:
            return False
    return True


def root_tip_split(tree: Tree) -> tuple[int, int]:
    """Number of tips on each side of the root (sorted ascending).

    The paper's rerooting criterion (§V-B): an optimally rerooted tree has
    ``floor(n/2)`` tips on one side.
    """
    if tree.root.is_tip:
        return (0, 1)
    counts = _subtree_tip_counts(tree)
    sides = sorted(counts[id(c)] for c in tree.root.children)
    if len(sides) != 2:
        raise ValueError("root_tip_split requires a bifurcating root")
    return (sides[0], sides[1])


def shape_summary(tree: Tree) -> Dict[str, float]:
    """A dict of the shape statistics used in benchmark tables."""
    heights = node_heights(tree)
    return {
        "n_tips": tree.n_tips,
        "height": tree_height(tree),
        "root_height": heights[id(tree.root)],
        "colless": colless_index(tree),
        "normalized_colless": normalized_colless(tree),
        "sackin": sackin_index(tree),
        "cherries": n_cherries(tree),
    }
