"""Tree traversal orders.

The likelihood engine consumes internal-node operations in a specific
order; the order determines how much subtree concurrency is available
(paper §IV-B):

* **post-order** — the prevailing serial order: each internal node right
  after its children. Yields ``n - 1`` dependent operations for ``n`` tips.
* **reverse level-order** (breadth-first from the deepest level upward) —
  the order BEAGLE requires to discover independent operations; nodes of
  equal depth are adjacent, so the greedy operation-set builder
  (:mod:`repro.core.opsets`) can batch them.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List

from .node import Node
from .tree import Tree

__all__ = [
    "postorder",
    "preorder",
    "levelorder",
    "reverse_levelorder",
    "levels",
    "node_depths",
    "node_heights",
]


def postorder(tree: Tree) -> Iterator[Node]:
    """Children-before-parents order over all nodes."""
    return tree.root.traverse_postorder()


def preorder(tree: Tree) -> Iterator[Node]:
    """Parents-before-children order over all nodes."""
    return tree.root.traverse_preorder()


def levelorder(tree: Tree) -> Iterator[Node]:
    """Breadth-first order from the root downward."""
    queue = deque([tree.root])
    while queue:
        node = queue.popleft()
        yield node
        queue.extend(node.children)


def reverse_levelorder(tree: Tree) -> List[Node]:
    """Breadth-first order from the deepest level upward.

    Nodes within one level keep the left-to-right order of a forward
    breadth-first pass. This is the submission order the BEAGLE library
    requires for its dependency-aware operation batching.
    """
    ordered = list(levelorder(tree))
    depths = node_depths(tree)
    # Stable sort by decreasing depth preserves within-level order.
    ordered.sort(key=lambda n: -depths[id(n)])
    return ordered


def levels(tree: Tree) -> List[List[Node]]:
    """Nodes grouped by depth: ``levels(t)[d]`` is every node at depth d."""
    grouped: List[List[Node]] = []
    queue = deque([(tree.root, 0)])
    while queue:
        node, d = queue.popleft()
        while len(grouped) <= d:
            grouped.append([])
        grouped[d].append(node)
        queue.extend((c, d + 1) for c in node.children)
    return grouped


def node_depths(tree: Tree) -> Dict[int, int]:
    """Edge-count depth of every node, keyed by ``id(node)``."""
    depths: Dict[int, int] = {id(tree.root): 0}
    for node in levelorder(tree):
        d = depths[id(node)]
        for child in node.children:
            depths[id(child)] = d + 1
    return depths


def node_heights(tree: Tree) -> Dict[int, int]:
    """Topological height of every node, keyed by ``id(node)``.

    Tips have height 0; an internal node has height
    ``1 + max(child heights)``. The root's height is the minimum possible
    number of dependent computation rounds for the tree — the lower bound
    on the number of operation sets for this rooting (see
    :func:`repro.core.opsets.build_operation_sets`).
    """
    heights: Dict[int, int] = {}
    for node in tree.root.traverse_postorder():
        if node.is_tip:
            heights[id(node)] = 0
        else:
            heights[id(node)] = 1 + max(heights[id(c)] for c in node.children)
    return heights
