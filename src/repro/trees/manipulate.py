"""Tree manipulation utilities.

The editing operations real workflows need around the core analyses:
restricting a tree to a taxon subset (:func:`prune_to_taxa`), lifting a
clade out as its own tree (:func:`extract_clade`), and canonical display
ordering (:func:`ladderize`). All three return new trees; inputs are
never mutated — the same no-undo discipline as the proposal moves.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .node import Node
from .tree import Tree

__all__ = ["prune_to_taxa", "extract_clade", "ladderize", "common_ancestor"]


def prune_to_taxa(tree: Tree, keep: Iterable[str]) -> Tree:
    """A copy of the tree restricted to the given tip names.

    Internal nodes left with one child are spliced out with their branch
    lengths merged, so path lengths among the kept taxa — and therefore
    reversible-model likelihoods on the restricted data — are preserved.

    Raises
    ------
    KeyError
        If a requested name is not a tip of the tree.
    ValueError
        If fewer than two names are kept.
    """
    names = set(keep)
    present = {t.name for t in tree.tips()}
    missing = names - present
    if missing:
        raise KeyError(f"tips not in tree: {sorted(missing)}")
    if len(names) < 2:
        raise ValueError("keep at least two taxa")

    duplicate = tree.copy()
    # Iteratively drop unwanted tips, then clean up unary nodes.
    changed = True
    while changed:
        changed = False
        for leaf in [n for n in duplicate.root.traverse_postorder() if n.is_tip]:
            if leaf.name not in names and leaf.parent is not None:
                leaf.parent.remove_child(leaf)
                changed = True
    duplicate.suppress_unary()
    duplicate.invalidate_indices()
    return duplicate


def common_ancestor(tree: Tree, names: Sequence[str]) -> Node:
    """The most recent common ancestor of the named tips."""
    if not names:
        raise ValueError("need at least one name")
    paths = []
    for name in names:
        node = tree.find(name)
        path = [node] + list(node.ancestors())
        paths.append({id(x) for x in path})
    shared = set.intersection(*paths)
    # The MRCA is the deepest shared node: walk up from the first tip.
    node = tree.find(names[0])
    while node is not None:
        if id(node) in shared:
            return node
        node = node.parent
    raise RuntimeError("no common ancestor found (corrupt tree)")  # pragma: no cover


def extract_clade(tree: Tree, names: Sequence[str]) -> Tree:
    """The subtree rooted at the MRCA of ``names``, as a new tree.

    The extracted root keeps its subtree branch lengths; its own branch
    (to the removed parent) is dropped.
    """
    ancestor = common_ancestor(tree, names)
    scratch = Tree(ancestor)
    duplicate = scratch.copy()
    duplicate.root.length = 0.0
    return duplicate


def ladderize(tree: Tree, *, ascending: bool = True) -> Tree:
    """A copy with children ordered by subtree size (display canonical).

    ``ascending`` puts smaller subtrees first — the familiar staircase
    look; the unrooted topology and all branch lengths are untouched.
    """
    duplicate = tree.copy()
    sizes = {}
    for node in duplicate.root.traverse_postorder():
        sizes[id(node)] = (
            1 if node.is_tip else sum(sizes[id(c)] for c in node.children)
        )
    for node in duplicate.root.traverse_postorder():
        if not node.is_tip:
            node.children.sort(
                key=lambda c: (sizes[id(c)], c.name or ""),
                reverse=not ascending,
            )
    duplicate.invalidate_indices()
    return duplicate
