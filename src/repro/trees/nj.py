"""Neighbor joining (Saitou & Nei 1987).

The standard distance-based tree construction: repeatedly join the pair
minimising the Q criterion

    Q(i, j) = (r − 2) d(i, j) − Σ_k d(i, k) − Σ_k d(j, k)

until three clusters remain, then close the star. NJ is consistent (it
recovers the true topology from additive distances) and is the usual
source of starting trees for likelihood searches — which is how the
examples here use it.

The classic algorithm yields an *unrooted* (trifurcating-center) tree;
this implementation roots it at the final join so the result plugs
directly into the bifurcating likelihood machinery after
:meth:`~repro.trees.tree.Tree.resolve_multifurcations` (the center node
is resolved with a zero-length branch, which is likelihood-neutral).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .node import Node
from .tree import Tree

__all__ = ["neighbor_joining"]


def neighbor_joining(
    names: Sequence[str],
    distances: np.ndarray,
    *,
    bifurcating: bool = True,
) -> Tree:
    """Build a tree from a distance matrix by neighbor joining.

    Parameters
    ----------
    names:
        Taxon labels, one per matrix row.
    distances:
        Symmetric non-negative ``(n, n)`` matrix with zero diagonal.
    bifurcating:
        Resolve the central trifurcation with a zero-length branch so the
        result is strictly bifurcating (default True).

    Notes
    -----
    Negative branch-length estimates (possible for noisy data, as in the
    original algorithm) are clamped to zero, the common practice.
    """
    D = np.array(distances, dtype=float)
    n = len(names)
    if D.shape != (n, n):
        raise ValueError("distance matrix shape must match the name count")
    if n < 2:
        raise ValueError("need at least two taxa")
    if np.any(np.abs(D - D.T) > 1e-9):
        raise ValueError("distance matrix must be symmetric")
    if np.any(np.diag(D) != 0):
        raise ValueError("distance matrix diagonal must be zero")
    if np.any(D < 0):
        raise ValueError("distances must be non-negative")

    nodes: List[Node] = [Node(name) for name in names]
    if n == 2:
        root = Node()
        nodes[0].length = D[0, 1] / 2
        nodes[1].length = D[0, 1] / 2
        root.add_child(nodes[0])
        root.add_child(nodes[1])
        return Tree(root)

    active = list(range(n))
    while len(active) > 3:
        r = len(active)
        sub = D[np.ix_(active, active)]
        sums = sub.sum(axis=1)
        Q = (r - 2) * sub - sums[:, None] - sums[None, :]
        np.fill_diagonal(Q, np.inf)
        flat = int(np.argmin(Q))
        ai, aj = divmod(flat, r)
        if ai > aj:
            ai, aj = aj, ai
        i, j = active[ai], active[aj]

        dij = D[i, j]
        limb_i = 0.5 * dij + (sums[ai] - sums[aj]) / (2 * (r - 2))
        limb_j = dij - limb_i
        limb_i = max(limb_i, 0.0)
        limb_j = max(limb_j, 0.0)

        parent = Node()
        nodes[i].length = limb_i
        nodes[j].length = limb_j
        parent.add_child(nodes[i])
        parent.add_child(nodes[j])

        # New cluster distances: d(u, k) = (d(i,k) + d(j,k) − d(i,j)) / 2.
        new_row = 0.5 * (D[i] + D[j] - dij)
        D = np.vstack([D, new_row])
        new_col = np.append(new_row, 0.0)
        D = np.column_stack([D, new_col])
        nodes.append(parent)
        active.remove(i)
        active.remove(j)
        active.append(len(nodes) - 1)

    # Close the star over the last three clusters.
    i, j, k = active
    root = Node()
    li = 0.5 * (D[i, j] + D[i, k] - D[j, k])
    lj = 0.5 * (D[i, j] + D[j, k] - D[i, k])
    lk = 0.5 * (D[i, k] + D[j, k] - D[i, j])
    for index, limb in ((i, li), (j, lj), (k, lk)):
        nodes[index].length = max(limb, 0.0)
        root.add_child(nodes[index])
    tree = Tree(root)
    if bifurcating:
        tree.resolve_multifurcations()
    return tree
