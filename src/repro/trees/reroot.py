"""Mechanical rerooting of trees.

For time-reversible substitution models the tree likelihood does not
depend on the root position (Felsenstein's pulley principle), which is the
property the paper exploits (§V). This module implements the *mechanics*
of rerooting: viewing the rooted tree as an unrooted one (the old
degree-two root is suppressed, its two incident branches merged) and
re-orienting it from a new root placed on any chosen edge.

The *choice* of the optimal edge lives in :mod:`repro.core.reroot_opt`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from .node import Node
from .tree import Tree

__all__ = [
    "unrooted_adjacency",
    "unrooted_edges",
    "reroot_on_edge",
    "reroot_above",
]


Adjacency = Dict[int, List[Tuple[Node, float]]]


def unrooted_adjacency(tree: Tree) -> Tuple[Adjacency, Dict[int, Node]]:
    """Undirected adjacency of the tree with the root suppressed.

    Returns
    -------
    adjacency:
        ``id(node) -> [(neighbor, branch_length), ...]``. When the root has
        exactly two children the root itself does not appear; its children
        are joined directly by an edge whose length is the sum of the two
        root branches (the "pulley" edge).
    nodes:
        ``id(node) -> node`` for every node present in the adjacency.
    """
    adjacency: Adjacency = {}
    nodes: Dict[int, Node] = {}

    def add_edge(a: Node, b: Node, length: float) -> None:
        adjacency.setdefault(id(a), []).append((b, length))
        adjacency.setdefault(id(b), []).append((a, length))
        nodes[id(a)] = a
        nodes[id(b)] = b

    root = tree.root
    suppress = len(root.children) == 2
    for node in root.traverse_postorder():
        if node.parent is None:
            continue
        if suppress and node.parent is root:
            continue  # handled by the merged pulley edge below
        add_edge(node, node.parent, node.length)
    if suppress:
        a, b = root.children
        add_edge(a, b, a.length + b.length)
    elif not root.children:
        nodes[id(root)] = root
        adjacency[id(root)] = []
    return adjacency, nodes


def unrooted_edges(tree: Tree) -> List[Tuple[Node, Node, float]]:
    """Every undirected edge of the unrooted view, once each.

    For a bifurcating tree of ``n`` tips this has ``2n - 3`` entries — the
    number of distinct rootings the paper's exhaustive search evaluates.
    """
    adjacency, _ = unrooted_adjacency(tree)
    seen = set()
    edges: List[Tuple[Node, Node, float]] = []
    # Walk deterministically in post-order for stable edge enumeration.
    for node in tree.root.traverse_postorder():
        for neighbor, length in adjacency.get(id(node), ()):  # type: ignore[arg-type]
            key = frozenset((id(node), id(neighbor)))
            if key in seen:
                continue
            seen.add(key)
            edges.append((node, neighbor, length))
    return edges


def reroot_on_edge(tree: Tree, u: Node, v: Node, fraction: float = 0.5) -> Tree:
    """Return a new tree rooted on the unrooted edge ``{u, v}``.

    The new root splits the edge at ``fraction`` of its length measured
    from ``u``. The input tree is left untouched; all nodes in the result
    are fresh copies carrying the same names and branch lengths, so the
    unrooted branch-length multiset (and therefore any reversible-model
    likelihood) is preserved.

    Parameters
    ----------
    u, v:
        Endpoint nodes of an edge of the *unrooted* view of ``tree``
        (see :func:`unrooted_edges`).
    fraction:
        Position of the root along the edge, in ``[0, 1]``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    adjacency, _ = unrooted_adjacency(tree)
    neighbor_ids = {id(n) for n, _ in adjacency.get(id(u), ())}
    if id(v) not in neighbor_ids:
        raise ValueError("u and v are not adjacent in the unrooted tree")
    edge_length = next(L for n, L in adjacency[id(u)] if n is v)

    root = Node()
    clones: Dict[int, Node] = {}

    def clone(node: Node, length: float) -> Node:
        fresh = Node(node.name, length)
        clones[id(node)] = fresh
        return fresh

    root.add_child(clone(u, edge_length * fraction))
    root.add_child(clone(v, edge_length * (1.0 - fraction)))

    # Orient all remaining edges away from the new root with a BFS.
    queue = deque([u, v])
    visited = {id(u), id(v)}
    while queue:
        node = queue.popleft()
        parent_clone = clones[id(node)]
        for neighbor, length in adjacency[id(node)]:
            if id(neighbor) in visited:
                continue
            visited.add(id(neighbor))
            parent_clone.add_child(clone(neighbor, length))
            queue.append(neighbor)
    return Tree(root)


def reroot_above(tree: Tree, child: Node, fraction: float = 0.5) -> Tree:
    """Reroot on the branch directly above ``child`` in the rooted tree.

    When ``child`` is a child of the (suppressed) root the branch in the
    unrooted view is the merged pulley edge, and ``fraction`` is measured
    from ``child`` along that merged edge.
    """
    if child.parent is None:
        raise ValueError("the root has no branch above it")
    parent = child.parent
    if parent is tree.root and len(tree.root.children) == 2:
        other = child.sibling()
        assert other is not None
        return reroot_on_edge(tree, child, other, fraction)
    return reroot_on_edge(tree, child, parent, fraction)
