"""Tree substrate: structures, IO, generation, traversal, and rerooting.

This package is the library's replacement for ete3/dendropy-style tree
handling (neither is available offline): a rooted bifurcating
:class:`~repro.trees.tree.Tree` of :class:`~repro.trees.node.Node` objects,
Newick IO, the paper's topology generators, the traversal orders that
govern subtree concurrency, shape metrics, and mechanical rerooting.
"""

from .node import Node
from .tree import Tree
from .newick import NewickError, parse_newick, write_newick
from .generate import (
    birth_death_tree,
    balanced_tree,
    coalescent_tree,
    pectinate_tree,
    random_attachment_tree,
    tip_labels,
    yule_tree,
)
from .traversal import (
    levelorder,
    levels,
    node_depths,
    node_heights,
    postorder,
    preorder,
    reverse_levelorder,
)
from .metrics import (
    colless_index,
    is_pectinate,
    is_perfectly_balanced,
    n_cherries,
    normalized_colless,
    root_tip_split,
    sackin_index,
    shape_summary,
    tree_height,
)
from .reroot import reroot_above, reroot_on_edge, unrooted_adjacency, unrooted_edges
from .distance import (
    bipartitions,
    branch_score_distance,
    robinson_foulds,
    same_unrooted_topology,
)
from .render import render_ascii, render_schedule
from .distances_seq import (
    distance_matrix,
    gamma_jc_distance,
    jc_distance,
    p_distance,
)
from .nj import neighbor_joining
from .manipulate import (
    common_ancestor,
    extract_clade,
    ladderize,
    prune_to_taxa,
)
from .enumerate import (
    all_unrooted_topologies,
    n_rooted_topologies,
    n_unrooted_topologies,
)

__all__ = [
    "Node",
    "Tree",
    "NewickError",
    "parse_newick",
    "write_newick",
    "balanced_tree",
    "pectinate_tree",
    "random_attachment_tree",
    "yule_tree",
    "coalescent_tree",
    "birth_death_tree",
    "tip_labels",
    "postorder",
    "preorder",
    "levelorder",
    "reverse_levelorder",
    "levels",
    "node_depths",
    "node_heights",
    "tree_height",
    "colless_index",
    "normalized_colless",
    "sackin_index",
    "n_cherries",
    "is_pectinate",
    "is_perfectly_balanced",
    "root_tip_split",
    "shape_summary",
    "reroot_on_edge",
    "reroot_above",
    "unrooted_adjacency",
    "unrooted_edges",
    "bipartitions",
    "robinson_foulds",
    "branch_score_distance",
    "same_unrooted_topology",
    "render_ascii",
    "p_distance",
    "jc_distance",
    "gamma_jc_distance",
    "distance_matrix",
    "neighbor_joining",
    "prune_to_taxa",
    "extract_clade",
    "ladderize",
    "common_ancestor",
    "n_unrooted_topologies",
    "n_rooted_topologies",
    "all_unrooted_topologies",
    "render_schedule",
]
