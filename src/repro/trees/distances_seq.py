"""Pairwise evolutionary distances from sequence data.

Distance matrices feed the neighbor-joining construction
(:mod:`repro.trees.nj`) that real inference pipelines use for starting
trees — a better-than-random launch pad for the ML search and MCMC of
:mod:`repro.inference`.

Implemented estimators:

* :func:`p_distance` — raw mismatch proportion.
* :func:`jc_distance` — Jukes–Cantor ML correction
  ``−(s−1)/s · ln(1 − s/(s−1) · p)`` for an ``s``-state alphabet.
* :func:`gamma_jc_distance` — JC with Gamma(α) rate heterogeneity:
  ``(s−1)/s · α · ((1 − s/(s−1)·p)^(−1/α) − 1)``.

Sites where either sequence is ambiguous (anything that is not a single
canonical state) are excluded pairwise.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..data.alignment import Alignment

__all__ = ["p_distance", "jc_distance", "gamma_jc_distance", "distance_matrix"]

#: Distance assigned when the observed divergence exceeds the estimator's
#: domain (saturation): large but finite so NJ stays well behaved.
MAX_DISTANCE = 10.0


def _comparable_columns(
    alignment: Alignment, a: str, b: str
) -> Tuple[np.ndarray, np.ndarray]:
    alphabet = alignment.alphabet
    row_a = alignment.sequence(a)
    row_b = alignment.sequence(b)
    keep_a: List[int] = []
    keep_b: List[int] = []
    for x, y in zip(row_a, row_b):
        if not alphabet.is_ambiguous(x) and not alphabet.is_ambiguous(y):
            keep_a.append(alphabet.index(x))
            keep_b.append(alphabet.index(y))
    return np.asarray(keep_a), np.asarray(keep_b)


def p_distance(alignment: Alignment, a: str, b: str) -> float:
    """Mismatch proportion over unambiguous shared sites."""
    xa, xb = _comparable_columns(alignment, a, b)
    if xa.size == 0:
        raise ValueError(f"no comparable sites between {a!r} and {b!r}")
    return float(np.mean(xa != xb))


def jc_distance(alignment: Alignment, a: str, b: str) -> float:
    """Jukes–Cantor ML distance, generalised to the alignment's state count."""
    s = alignment.alphabet.n_states
    p = p_distance(alignment, a, b)
    ceiling = (s - 1) / s
    if p >= ceiling:
        return MAX_DISTANCE
    return float(-ceiling * math.log(1.0 - p / ceiling))


def gamma_jc_distance(
    alignment: Alignment, a: str, b: str, alpha: float = 1.0
) -> float:
    """JC distance under Gamma(α)-distributed rates."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    s = alignment.alphabet.n_states
    p = p_distance(alignment, a, b)
    ceiling = (s - 1) / s
    if p >= ceiling:
        return MAX_DISTANCE
    return float(ceiling * alpha * ((1.0 - p / ceiling) ** (-1.0 / alpha) - 1.0))


def distance_matrix(
    alignment: Alignment, method: str = "jc", alpha: float = 1.0
) -> Tuple[List[str], np.ndarray]:
    """Full pairwise distance matrix.

    Parameters
    ----------
    method:
        ``"p"``, ``"jc"`` or ``"gamma_jc"``.

    Returns
    -------
    (names, matrix)
        Taxon names and the symmetric ``(n, n)`` distance matrix.
    """
    names = alignment.names
    n = len(names)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            if method == "p":
                d = p_distance(alignment, names[i], names[j])
            elif method == "jc":
                d = jc_distance(alignment, names[i], names[j])
            elif method == "gamma_jc":
                d = gamma_jc_distance(alignment, names[i], names[j], alpha)
            else:
                raise ValueError(f"unknown distance method {method!r}")
            matrix[i, j] = matrix[j, i] = d
    return names, matrix
