"""Tree-space counting and exhaustive enumeration.

The paper motivates heuristic search with the size of tree space: the
number of unrooted topologies for ``n`` OTUs is the double factorial
``(2n − 5)!!`` (§II-A, citing Felsenstein 1978). This module provides
those counts and, for small ``n``, an exhaustive generator of all
unrooted topologies — which turns the likelihood engine into an *exact*
maximum-likelihood method usable as a test oracle for the heuristic
search.

Enumeration uses the classic stepwise-addition bijection: every unrooted
topology on ``k + 1`` taxa arises exactly once by inserting the new taxon
into one of the ``2k − 3`` branches of a topology on ``k`` taxa.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from .node import Node
from .tree import Tree

__all__ = [
    "n_unrooted_topologies",
    "n_rooted_topologies",
    "all_unrooted_topologies",
]


def _double_factorial(k: int) -> int:
    result = 1
    while k > 1:
        result *= k
        k -= 2
    return result


def n_unrooted_topologies(n_tips: int) -> int:
    """Number of unrooted bifurcating topologies: ``(2n − 5)!!``."""
    if n_tips < 1:
        raise ValueError("need at least one tip")
    if n_tips <= 3:
        return 1
    return _double_factorial(2 * n_tips - 5)


def n_rooted_topologies(n_tips: int) -> int:
    """Number of rooted bifurcating topologies: ``(2n − 3)!!``."""
    if n_tips < 1:
        raise ValueError("need at least one tip")
    if n_tips <= 2:
        return 1
    return _double_factorial(2 * n_tips - 3)


def _insert_on_branch(tree: Tree, branch_child: Node, label: str) -> Tree:
    """A copy of ``tree`` with a new tip grafted onto one branch."""
    duplicate = tree.copy()
    # Locate the corresponding node in the copy by traversal position.
    originals = list(tree.root.traverse_postorder())
    copies = list(duplicate.root.traverse_postorder())
    target = copies[originals.index(branch_child)]
    parent = target.parent
    assert parent is not None
    position = parent.children.index(target)
    parent.remove_child(target)
    junction = Node(None, target.length / 2)
    target.length = target.length / 2
    junction.add_child(target)
    junction.add_child(Node(label, 0.1))
    junction.parent = parent
    parent.children.insert(position, junction)
    duplicate.invalidate_indices()
    return duplicate


def all_unrooted_topologies(
    names: Sequence[str],
    *,
    branch_length: float = 0.1,
    limit: Optional[int] = None,
) -> Iterator[Tree]:
    """Yield every unrooted topology over the given taxa exactly once.

    Trees are emitted as rooted bifurcating representations (arbitrary
    rooting), ready for the likelihood engine. The count of emitted trees
    is ``(2n − 5)!!``; a guard refuses ``n > 9`` (2,027,025 topologies)
    unless ``limit`` bounds the enumeration.

    Parameters
    ----------
    limit:
        Stop after this many topologies (useful for sampling the start of
        the enumeration in tests).
    """
    names = list(names)
    if len(names) < 3:
        raise ValueError("enumeration needs at least three taxa")
    if len(set(names)) != len(names):
        raise ValueError("taxon names must be unique")
    if len(names) > 9 and limit is None:
        raise ValueError(
            f"{n_unrooted_topologies(len(names)):,} topologies for "
            f"{len(names)} taxa; pass limit= to bound the enumeration"
        )

    # Base: the single topology on the first three taxa.
    root = Node()
    inner = Node(None, branch_length)
    inner.add_child(Node(names[1], branch_length))
    inner.add_child(Node(names[2], branch_length))
    root.add_child(Node(names[0], branch_length))
    root.add_child(inner)
    current: List[Tree] = [Tree(root)]

    emitted = 0
    if len(names) == 3:
        for tree in current:
            yield tree
        return

    for index in range(3, len(names)):
        label = names[index]
        extended: List[Tree] = []
        last_round = index == len(names) - 1
        for tree in current:
            # Branch set of the unrooted view: every non-root node except
            # one of the two root children (the pulley edge is a single
            # unrooted branch; skip the second root child to avoid
            # generating the same insertion twice).
            root_children = tree.root.children
            skip = id(root_children[1]) if len(root_children) == 2 else None
            for node in tree.root.traverse_postorder():
                if node.parent is None or id(node) == skip:
                    continue
                candidate = _insert_on_branch(tree, node, label)
                if last_round:
                    yield candidate
                    emitted += 1
                    if limit is not None and emitted >= limit:
                        return
                else:
                    extended.append(candidate)
        current = extended
