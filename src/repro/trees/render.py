"""ASCII tree rendering for examples and debugging.

Draws rooted trees in the familiar left-to-right style::

         /-a
      /-|
     |   \\-b
   --|
     |   /-c
      \\-|
         \\-d

and can annotate nodes with their operation-set assignment so that the
Figure 2/3 traversal diagrams from the paper can be reproduced in a
terminal (see :func:`render_schedule`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .node import Node
from .tree import Tree

__all__ = ["render_ascii", "render_schedule"]

_PAD = 3  # width of one tree level in characters


def _compose(
    child_blocks: List[Tuple[List[str], int]],
    connector: str,
    label: str,
) -> Tuple[List[str], int]:
    """Stack child blocks and attach them with a vertical spine."""
    lines: List[str] = []
    mids: List[int] = []
    for i, (block, mid) in enumerate(child_blocks):
        mids.append(mid + len(lines))
        lines.extend(block)
        if i != len(child_blocks) - 1:
            lines.append("")
    lo, hi = mids[0], mids[-1]
    mid = (lo + hi) // 2
    prefixed: List[str] = []
    for row, line in enumerate(lines):
        if row == mid:
            stem = connector + "-" * max(0, _PAD - 1 - len(label)) + label
            if lo <= row <= hi and lo != hi:
                stem += "|"
            else:
                stem += "-"
            prefix = stem
        elif lo < row < hi:
            prefix = " " * _PAD + "|"
        else:
            prefix = " " * (_PAD + 1)
        prefixed.append(prefix + line)
    return prefixed, mid


def render_ascii(
    tree: Tree,
    *,
    label: Optional[Callable[[Node], str]] = None,
) -> str:
    """Render the tree as ASCII art.

    Parameters
    ----------
    label:
        Callable producing the text shown at each node: the node name for
        tips, empty for internal nodes by default.
    """

    def default_label(node: Node) -> str:
        return node.name or ""

    fn = label or default_label
    blocks: Dict[int, Tuple[List[str], int]] = {}
    for node in tree.root.traverse_postorder():
        if node.is_tip:
            blocks[id(node)] = ([f"-{fn(node)}"], 0)
            continue
        children = []
        for i, child in enumerate(node.children):
            block, mid = blocks[id(child)]
            if i == 0:
                corner = "/"
            elif i == len(node.children) - 1:
                corner = "\\"
            else:
                corner = "+"
            # Re-prefix the child's first column with its corner glyph.
            rows = []
            for r, line in enumerate(block):
                glyph = corner if r == mid else " "
                rows.append(glyph + line)
            children.append((rows, mid))
        blocks[id(node)] = _compose(children, "-", fn(node))
    lines, _ = blocks[id(tree.root)]
    return "\n".join(line.rstrip() for line in lines)


def render_schedule(tree: Tree, set_of_node: Dict[int, int]) -> str:
    """Render the tree annotating each internal node with its operation set.

    Parameters
    ----------
    set_of_node:
        Mapping ``id(node) -> operation-set index`` as produced by
        :func:`repro.core.opsets.build_operation_sets`. The rendering shows
        ``[k]`` at each internal node: all nodes sharing a ``k`` are
        computed in the same (concurrent) kernel launch.
    """

    def label(node: Node) -> str:
        if node.is_tip:
            return node.name or ""
        s = set_of_node.get(id(node))
        return f"[{s}]" if s is not None else ""

    return render_ascii(tree, label=label)
