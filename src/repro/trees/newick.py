"""Newick parsing and writing.

Supports the common Newick dialect: nested parentheses, node labels
(optionally single-quoted with ``''`` escaping), branch lengths after a
colon, bracketed comments (skipped), and a trailing semicolon. Parsing is
iterative so deeply nested (pectinate) trees of thousands of tips do not
overflow the recursion limit.
"""

from __future__ import annotations

from typing import List, NoReturn, Tuple

from ..errors import ParseError, location_of
from .node import Node
from .tree import Tree

__all__ = ["parse_newick", "write_newick", "NewickError"]


class NewickError(ParseError):
    """Raised for malformed Newick input.

    A position-carrying :class:`~repro.errors.ParseError` (and therefore
    a ``ValueError``): when the parser knows where the input broke,
    :attr:`line`/:attr:`column`/:attr:`position` locate the offending
    character.
    """

    def __init__(self, message: str, **kwargs) -> None:
        kwargs.setdefault("source", "Newick")
        super().__init__(message, **kwargs)


def _fail(message: str, text: str, position: int) -> NoReturn:
    line, column = location_of(text, position)
    raise NewickError(message, line=line, column=column, position=position)


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    """Split a Newick string into ``(kind, value, position)`` tokens.

    Kinds: ``(`` ``)`` ``,`` ``;`` ``:`` and ``label``; the position is
    the 0-based offset of the token's first character.
    """
    tokens: List[Tuple[str, str, int]] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in "(),;:":
            tokens.append((ch, ch, i))
            i += 1
        elif ch == "[":  # comment: skip to matching bracket
            end = text.find("]", i + 1)
            if end == -1:
                _fail("unterminated comment", text, i)
            i = end + 1
        elif ch == "'":
            start = i
            parts: List[str] = []
            i += 1
            while True:
                if i >= n:
                    _fail("unterminated quoted label", text, start)
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        parts.append("'")
                        i += 2
                    else:
                        i += 1
                        break
                else:
                    parts.append(text[i])
                    i += 1
            tokens.append(("label", "".join(parts), start))
        else:
            j = i
            while j < n and text[j] not in "(),;:[" and not text[j].isspace():
                j += 1
            tokens.append(("label", text[i:j], i))
            i = j
    return tokens


def parse_newick(text: str) -> Tree:
    """Parse a Newick string into a :class:`Tree`.

    Raises
    ------
    NewickError
        On unbalanced parentheses, misplaced tokens, truncated input, or
        empty input — with the line/column of the offending character.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise NewickError("empty Newick string")

    root = Node()
    current = root
    depth = 0
    # `fresh` marks that the next label/length applies to a just-closed or
    # just-created node rather than a new sibling.
    awaiting_length = False
    saw_content = False
    terminated = False

    i = 0
    while i < len(tokens):
        kind, value, position = tokens[i]
        if kind == "(":
            child = Node()
            current.add_child(child)
            current = child
            depth += 1
            saw_content = True
        elif kind == ",":
            if current.parent is None:
                _fail("comma outside parentheses", text, position)
            sibling = Node()
            current.parent.add_child(sibling)
            current = sibling
        elif kind == ")":
            depth -= 1
            if depth < 0 or current.parent is None:
                _fail("unbalanced ')'", text, position)
            current = current.parent
        elif kind == "label":
            if awaiting_length:
                try:
                    current.length = float(value)
                except ValueError:
                    _fail(f"bad branch length {value!r}", text, position)
                awaiting_length = False
            else:
                current.name = value
                saw_content = True
        elif kind == ":":
            awaiting_length = True
        elif kind == ";":
            terminated = True
            break
        i += 1

    if depth != 0:
        _fail(
            f"truncated tree: {depth} unclosed '('"
            if not terminated
            else "unbalanced parentheses",
            text,
            len(text),
        )
    if not saw_content:
        raise NewickError("no tree content before ';'")

    # The scaffold root node wraps the actual top-level node when the input
    # was a single leaf like "A;"; when the input was "(...)..." the
    # scaffold *is* the parsed top-level node's container. Unwrap:
    if len(root.children) == 1 and root.name is None and not root.length:
        only = root.children[0]
        root.remove_child(only)
        return Tree(only)
    return Tree(root)


def _format_length(length: float, precision: int) -> str:
    text = f"{length:.{precision}g}"
    return text


def _quote_if_needed(name: str) -> str:
    if name == "":
        # An empty label must stay visible ('' parses back to the empty
        # name); writing nothing would make a bare tip vanish entirely.
        return "''"
    specials = set("(),;:[]' \t\n")
    if any(c in specials for c in name):
        return "'" + name.replace("'", "''") + "'"
    return name


def write_newick(
    tree: Tree,
    *,
    lengths: bool = True,
    internal_names: bool = False,
    precision: int = 10,
) -> str:
    """Serialise a tree to Newick.

    Parameters
    ----------
    lengths:
        Include ``:length`` suffixes.
    internal_names:
        Include labels on internal nodes (when present).
    precision:
        Significant digits for branch lengths.
    """
    pieces: List[str] = []
    # Iterative post-order construction of the string for stack safety.
    rendered: dict[int, str] = {}
    for node in tree.root.traverse_postorder():
        if node.is_tip:
            text = _quote_if_needed(node.name or "")
        else:
            inner = ",".join(rendered[id(c)] for c in node.children)
            label = ""
            if internal_names and node.name:
                label = _quote_if_needed(node.name)
            text = f"({inner}){label}"
        if lengths and node.parent is not None:
            text += ":" + _format_length(node.length, precision)
        rendered[id(node)] = text
    return rendered[id(tree.root)] + ";"
