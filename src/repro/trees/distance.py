"""Tree comparison utilities.

Used by the tests to confirm that rerooting preserves the *unrooted*
topology (only the orientation changes), and by the MCMC example to track
topology moves.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from .tree import Tree

__all__ = [
    "bipartitions",
    "robinson_foulds",
    "same_unrooted_topology",
    "branch_score_distance",
]


def bipartitions(tree: Tree) -> Set[FrozenSet[str]]:
    """Non-trivial bipartitions of the unrooted topology.

    Each internal edge splits the tip set in two; the split is recorded as
    the frozenset of tip names on the *smaller-or-lexicographically-first*
    side, canonicalised so that rootings of the same unrooted tree produce
    identical sets.
    """
    all_tips = frozenset(t.name for t in tree.tips())
    n = len(all_tips)
    splits: Set[FrozenSet[str]] = set()
    below: dict[int, FrozenSet[str]] = {}
    for node in tree.root.traverse_postorder():
        if node.is_tip:
            below[id(node)] = frozenset((node.name,))
            continue
        clade = frozenset().union(*(below[id(c)] for c in node.children))
        below[id(node)] = clade
        if node.parent is None:
            continue
        # Trivial splits (single tip or all-but-one) carry no information.
        if 1 < len(clade) < n - 1:
            other = all_tips - clade
            canon = min(clade, other, key=lambda s: (len(s), sorted(s)))
            splits.add(canon)
    return splits


def robinson_foulds(a: Tree, b: Tree) -> int:
    """Symmetric-difference (Robinson–Foulds) distance between topologies.

    Raises
    ------
    ValueError
        When the two trees do not share the same tip-name set.
    """
    if {t.name for t in a.tips()} != {t.name for t in b.tips()}:
        raise ValueError("trees must share an identical tip set")
    sa, sb = bipartitions(a), bipartitions(b)
    return len(sa ^ sb)


def same_unrooted_topology(a: Tree, b: Tree) -> bool:
    """True when the two trees are the same unrooted labelled topology."""
    return robinson_foulds(a, b) == 0


def branch_score_distance(a: Tree, b: Tree) -> float:
    """Kuhner–Felsenstein branch-score distance between two trees.

    The square root of the sum of squared branch-length differences over
    the union of splits: splits present in both trees contribute the
    difference of their branch lengths, splits unique to one tree
    contribute that branch's full length. Sensitive to both topology and
    branch lengths (Robinson–Foulds ignores the latter).
    """
    if {t.name for t in a.tips()} != {t.name for t in b.tips()}:
        raise ValueError("trees must share an identical tip set")

    def split_lengths(tree: Tree):
        all_tips = frozenset(t.name for t in tree.tips())
        n = len(all_tips)
        below: dict[int, FrozenSet[str]] = {}
        lengths: dict[FrozenSet[str], float] = {}
        for node in tree.root.traverse_postorder():
            if node.is_tip:
                below[id(node)] = frozenset((node.name,))
            else:
                below[id(node)] = frozenset().union(
                    *(below[id(c)] for c in node.children)
                )
            if node.parent is None:
                continue
            clade = below[id(node)]
            if len(clade) < 1 or len(clade) >= n:
                continue
            other = all_tips - clade
            canon = min(clade, other, key=lambda s: (len(s), sorted(s)))
            # The two root branches form one unrooted edge: sum them.
            lengths[canon] = lengths.get(canon, 0.0) + node.length
        return lengths

    la, lb = split_lengths(a), split_lengths(b)
    total = 0.0
    for split in la.keys() | lb.keys():
        total += (la.get(split, 0.0) - lb.get(split, 0.0)) ** 2
    return total ** 0.5
