"""Rooted bifurcating tree container with BEAGLE-style buffer indexing.

A :class:`Tree` owns a root :class:`~repro.trees.node.Node` and provides the
index maps the likelihood engine needs: tips are numbered ``0 .. n-1`` (in
left-to-right order unless explicit names are mapped) and internal nodes
``n .. 2n-2``, matching the partials-buffer layout used by the BEAGLE
library. The root always receives the highest index of its subtree ordering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .node import Node

__all__ = ["Tree", "Edge"]

#: An edge is identified by its child endpoint: the branch from
#: ``node.parent`` down to ``node``. The root has no edge.
Edge = Node


class Tree:
    """A rooted tree of :class:`Node` objects.

    Parameters
    ----------
    root:
        The root node. For likelihood evaluation the tree must be strictly
        bifurcating (every internal node has two children); use
        :meth:`is_bifurcating` to check and
        :meth:`resolve_multifurcations` to repair parsed input.
    """

    def __init__(self, root: Node) -> None:
        if root is None:
            raise ValueError("tree requires a root node")
        self.root = root
        self._index: Optional[Dict[int, int]] = None  # id(node) -> buffer index

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def nodes(self) -> List[Node]:
        """All nodes in post-order."""
        return list(self.root.traverse_postorder())

    def tips(self) -> List[Node]:
        """Tips in stable left-to-right order."""
        return list(self.root.tips())

    def internals(self) -> List[Node]:
        """Internal nodes in post-order (children before parents)."""
        return [n for n in self.root.traverse_postorder() if not n.is_tip]

    def edges(self) -> List[Node]:
        """Every edge, identified by its child node (root excluded)."""
        return [n for n in self.root.traverse_postorder() if n.parent is not None]

    @property
    def n_tips(self) -> int:
        return sum(1 for _ in self.root.tips())

    @property
    def n_nodes(self) -> int:
        return sum(1 for _ in self.root.traverse_postorder())

    def is_bifurcating(self) -> bool:
        """True when every internal node has exactly two children."""
        return all(n.is_binary for n in self.root.traverse_postorder())

    def tip_names(self) -> List[str]:
        """Tip labels in left-to-right order."""
        return [t.name or "" for t in self.tips()]

    def find(self, name: str) -> Node:
        """Return the first node with the given name.

        Raises
        ------
        KeyError
            If no node carries the name.
        """
        for node in self.root.traverse_preorder():
            if node.name == name:
                return node
        raise KeyError(name)

    def total_branch_length(self) -> float:
        """Sum of branch lengths over all edges."""
        return sum(e.length for e in self.edges())

    # ------------------------------------------------------------------
    # Buffer indexing (BEAGLE layout)
    # ------------------------------------------------------------------
    def assign_indices(self, tip_order: Optional[Sequence[str]] = None) -> Dict[int, int]:
        """Assign buffer indices: tips first, then internals in post-order.

        Parameters
        ----------
        tip_order:
            Optional explicit tip-name ordering; tip ``tip_order[i]`` gets
            index ``i``. Defaults to left-to-right tree order. Internal
            nodes are numbered ``n_tips ..`` following post-order, so every
            child index is smaller than its parent's index — the property
            the engine's dependency analysis relies on.

        Returns
        -------
        dict
            Mapping from ``id(node)`` to buffer index. The same mapping is
            cached and reused by :meth:`index_of`.
        """
        tips = self.tips()
        if tip_order is not None:
            by_name = {t.name: t for t in tips}
            if set(by_name) != set(tip_order) or len(tip_order) != len(tips):
                raise ValueError("tip_order must be a permutation of tip names")
            tips = [by_name[name] for name in tip_order]
        index: Dict[int, int] = {}
        for i, tip in enumerate(tips):
            index[id(tip)] = i
        next_idx = len(tips)
        for node in self.root.traverse_postorder():
            if not node.is_tip:
                index[id(node)] = next_idx
                next_idx += 1
        self._index = index
        return index

    def index_of(self, node: Node) -> int:
        """Buffer index of ``node`` (assigns defaults on first use)."""
        if self._index is None:
            self.assign_indices()
        assert self._index is not None
        return self._index[id(node)]

    def invalidate_indices(self) -> None:
        """Drop cached indices after structural edits."""
        self._index = None

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self) -> "Tree":
        """Deep copy of the tree topology, names and branch lengths."""
        mapping: Dict[int, Node] = {}
        for node in self.root.traverse_postorder():
            clone = Node(node.name, node.length)
            mapping[id(node)] = clone
            for child in node.children:
                clone_child = mapping[id(child)]
                clone_child.parent = clone
                clone.children.append(clone_child)
        return Tree(mapping[id(self.root)])

    # ------------------------------------------------------------------
    # Repair helpers
    # ------------------------------------------------------------------
    def resolve_multifurcations(self) -> None:
        """Resolve every multifurcation into a ladder of binary nodes.

        New internal nodes are inserted with zero-length branches, which
        leaves the likelihood of reversible models unchanged (a zero-length
        branch contributes an identity transition matrix).
        """
        for node in list(self.root.traverse_postorder()):
            while len(node.children) > 2:
                a = node.children.pop()
                b = node.children.pop()
                a.parent = None
                b.parent = None
                joint = Node(None, 0.0)
                joint.add_child(b)
                joint.add_child(a)
                node.add_child(joint)
        self.invalidate_indices()

    def suppress_unary(self) -> None:
        """Splice out internal nodes with a single child.

        The child's branch length absorbs the removed node's branch length,
        preserving path lengths (and hence reversible-model likelihoods).
        """
        changed = True
        while changed:
            changed = False
            for node in list(self.root.traverse_postorder()):
                if node.is_tip or len(node.children) != 1:
                    continue
                child = node.children[0]
                if node.parent is None:
                    # unary root: child becomes the new root
                    node.remove_child(child)
                    child.length = 0.0
                    self.root = child
                else:
                    parent = node.parent
                    pos = parent.children.index(node)
                    parent.remove_child(node)
                    node.remove_child(child)
                    child.length += node.length
                    child.parent = parent
                    parent.children.insert(pos, child)
                changed = True
        self.invalidate_indices()

    # ------------------------------------------------------------------
    # Structural identity
    # ------------------------------------------------------------------
    def topology_key(self) -> Tuple:
        """A hashable canonical key for the *rooted* topology with names.

        Two trees compare equal under this key iff they have the same
        rooted shape and tip labelling (branch lengths ignored). Children
        are sorted by key, so left/right order does not matter.
        """

        keys: Dict[int, Tuple] = {}
        for node in self.root.traverse_postorder():
            if node.is_tip:
                keys[id(node)] = ("tip", node.name)
            else:
                child_keys = sorted(keys[id(c)] for c in node.children)
                keys[id(node)] = ("int", tuple(child_keys))
        return keys[id(self.root)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tree n_tips={self.n_tips} n_nodes={self.n_nodes}>"
