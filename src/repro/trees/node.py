"""Tree node for rooted bifurcating phylogenies.

The node is deliberately minimal: identity, parent/child wiring, a branch
length to the parent, and an optional label. Buffer indices used by the
likelihood engine (see :mod:`repro.beagle`) are assigned by
:class:`repro.trees.tree.Tree`, not stored ad hoc on nodes, so a node can be
shared between analyses without hidden state.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

__all__ = ["Node"]


class Node:
    """A node in a rooted tree.

    Parameters
    ----------
    name:
        Label for the node. Tips must be named; internal nodes may be
        anonymous (``None``).
    length:
        Length of the branch connecting this node to its parent. The root's
        ``length`` is ignored by all algorithms but kept for round-tripping
        Newick strings that carry a root branch length.

    Attributes
    ----------
    parent:
        The parent node, or ``None`` for the root.
    children:
        Child nodes, in a stable left-to-right order. For the bifurcating
        trees used throughout this library every internal node has exactly
        two children; the parser tolerates multifurcations so that
        arbitrary Newick input can be loaded and then resolved.
    """

    __slots__ = ("name", "length", "parent", "children")

    def __init__(self, name: Optional[str] = None, length: float = 0.0) -> None:
        self.name = name
        self.length = float(length)
        self.parent: Optional[Node] = None
        self.children: List[Node] = []

    # ------------------------------------------------------------------
    # Structure editing
    # ------------------------------------------------------------------
    def add_child(self, child: "Node") -> "Node":
        """Attach ``child`` as the rightmost child and return it."""
        if child.parent is not None:
            raise ValueError("node already has a parent; detach it first")
        child.parent = self
        self.children.append(child)
        return child

    def remove_child(self, child: "Node") -> "Node":
        """Detach ``child`` from this node and return it."""
        try:
            self.children.remove(child)
        except ValueError:
            raise ValueError("node is not a child of this node") from None
        child.parent = None
        return child

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_tip(self) -> bool:
        """True when the node has no children (an OTU / leaf)."""
        return not self.children

    @property
    def is_root(self) -> bool:
        """True when the node has no parent."""
        return self.parent is None

    @property
    def is_binary(self) -> bool:
        """True when the node is a tip or has exactly two children."""
        return len(self.children) in (0, 2)

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    @property
    def left(self) -> "Node":
        """First child (raises for tips)."""
        return self.children[0]

    @property
    def right(self) -> "Node":
        """Second child (raises for tips or unary nodes)."""
        return self.children[1]

    def sibling(self) -> Optional["Node"]:
        """The other child of this node's parent, if the parent is binary."""
        if self.parent is None:
            return None
        others = [c for c in self.parent.children if c is not self]
        return others[0] if len(others) == 1 else None

    def ancestors(self) -> Iterator["Node"]:
        """Yield parent, grandparent, ... up to and including the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def depth(self) -> int:
        """Number of edges between this node and the root."""
        return sum(1 for _ in self.ancestors())

    def traverse_postorder(self) -> Iterator["Node"]:
        """Yield the subtree rooted here in post-order (children first).

        Iterative to stay safe for pectinate trees of thousands of tips,
        where recursion would exceed the interpreter stack limit.
        """
        stack = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded or node.is_tip:
                yield node
            else:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))

    def traverse_preorder(self) -> Iterator["Node"]:
        """Yield the subtree rooted here in pre-order (parents first)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            for child in reversed(node.children):
                stack.append(child)

    def tips(self) -> Iterator["Node"]:
        """Yield the tips of the subtree rooted here, left to right."""
        for node in self.traverse_preorder():
            if node.is_tip:
                yield node

    def n_tips(self) -> int:
        """Number of tips below (and including, if a tip) this node."""
        return sum(1 for _ in self.tips())

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "tip" if self.is_tip else f"internal({len(self.children)})"
        return f"<Node {self.name or '?'} {kind} len={self.length:g}>"
