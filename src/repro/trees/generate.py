"""Tree topology generators.

These mirror (and extend) the topology options the paper added to the
BEAGLE ``synthetictest`` program (§VI-D):

* :func:`balanced_tree` — the default ``synthetictest`` topology; optimal
  for subtree concurrency, needs no rerooting.
* :func:`pectinate_tree` — ``--pectinate``; the worst case, fully serial.
* :func:`random_attachment_tree` — ``--randomtree``; the paper's random
  construction: each new tip is attached to a uniformly chosen existing
  node (tip *or* internal), gaining a fresh parent spliced into the
  sibling's old parent edge.

Additional generators used by the examples and extended benchmarks:

* :func:`yule_tree` — pure-birth process (split a random *tip*), the
  classic null model; produces more balanced shapes than uniform
  attachment.
* :func:`coalescent_tree` — Kingman coalescent gene genealogy with
  exponential waiting times (microevolution setting, paper §II).

All generators take a :class:`numpy.random.Generator` (or a seed) so every
benchmark is reproducible from a ``--seed`` value, as in Table II.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .node import Node
from .tree import Tree

__all__ = [
    "balanced_tree",
    "pectinate_tree",
    "random_attachment_tree",
    "yule_tree",
    "coalescent_tree",
    "birth_death_tree",
    "tip_labels",
    "as_rng",
]

RngLike = Union[int, np.random.Generator, None]


def as_rng(rng: RngLike) -> np.random.Generator:
    """Coerce a seed / Generator / None into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def tip_labels(n: int) -> list[str]:
    """Labels ``t0001 .. tNNNN`` (stable, sortable, Newick-safe)."""
    width = max(4, len(str(n)))
    return [f"t{i + 1:0{width}d}" for i in range(n)]


def _default_lengths(tree: Tree, rng: Optional[np.random.Generator], mean: float) -> Tree:
    """Assign exponential branch lengths (or the constant mean if rng is None)."""
    for node in tree.root.traverse_postorder():
        if node.parent is not None:
            node.length = float(rng.exponential(mean)) if rng is not None else mean
    return tree


def balanced_tree(
    n: int,
    *,
    names: Optional[Sequence[str]] = None,
    branch_length: float = 0.1,
    rng: RngLike = None,
    random_lengths: bool = False,
) -> Tree:
    """A maximally balanced rooted tree of ``n`` tips.

    For ``n`` a power of two the tree is perfectly balanced with
    ``log2 n`` levels of internal nodes; otherwise each split divides the
    remaining tips as evenly as possible (``ceil``/``floor``).
    """
    if n < 1:
        raise ValueError("need at least one tip")
    labels = list(names) if names is not None else tip_labels(n)
    if len(labels) != n:
        raise ValueError("names must have length n")

    def build(lo: int, hi: int) -> Node:
        count = hi - lo
        if count == 1:
            return Node(labels[lo])
        mid = lo + (count + 1) // 2
        parent = Node()
        parent.add_child(build(lo, mid))
        parent.add_child(build(mid, hi))
        return parent

    tree = Tree(build(0, n))
    gen = as_rng(rng) if random_lengths else None
    return _default_lengths(tree, gen, branch_length)


def pectinate_tree(
    n: int,
    *,
    names: Optional[Sequence[str]] = None,
    branch_length: float = 0.1,
    rng: RngLike = None,
    random_lengths: bool = False,
) -> Tree:
    """A fully pectinate (caterpillar / ladder) rooted tree of ``n`` tips.

    Built exactly as in the paper (§VI-D): the random-attachment procedure
    with the current root always chosen as the sibling — each new tip
    becomes a child of a fresh root.
    """
    if n < 1:
        raise ValueError("need at least one tip")
    labels = list(names) if names is not None else tip_labels(n)
    if len(labels) != n:
        raise ValueError("names must have length n")
    root = Node(labels[0])
    for label in labels[1:]:
        new_root = Node()
        new_root.add_child(root)
        new_root.add_child(Node(label))
        root = new_root
    tree = Tree(root)
    gen = as_rng(rng) if random_lengths else None
    return _default_lengths(tree, gen, branch_length)


def random_attachment_tree(
    n: int,
    rng: RngLike = None,
    *,
    names: Optional[Sequence[str]] = None,
    branch_length: float = 0.1,
    random_lengths: bool = False,
) -> Tree:
    """The paper's arbitrary-topology generator (§VI-D).

    Trees are grown one tip at a time. Each new tip is connected to a
    uniformly chosen *sibling* among all existing nodes — tips and
    internal nodes alike, the current root included. The new tip and its
    sibling gain a fresh parent, which replaces the sibling in the
    sibling's old parent (or becomes the new root when the sibling was the
    root).

    This places substantial mass on unbalanced shapes, which is why the
    paper's random trees benefit from rerooting.
    """
    if n < 1:
        raise ValueError("need at least one tip")
    gen = as_rng(rng)
    labels = list(names) if names is not None else tip_labels(n)
    if len(labels) != n:
        raise ValueError("names must have length n")

    root = Node(labels[0])
    all_nodes = [root]
    for label in labels[1:]:
        sibling = all_nodes[int(gen.integers(len(all_nodes)))]
        tip = Node(label)
        new_parent = Node()
        old_parent = sibling.parent
        if old_parent is None:
            new_parent.add_child(sibling)
            new_parent.add_child(tip)
            root = new_parent
        else:
            pos = old_parent.children.index(sibling)
            old_parent.remove_child(sibling)
            new_parent.add_child(sibling)
            new_parent.add_child(tip)
            new_parent.parent = old_parent
            old_parent.children.insert(pos, new_parent)
        all_nodes.append(tip)
        all_nodes.append(new_parent)
    tree = Tree(root)
    return _default_lengths(tree, gen if random_lengths else None, branch_length)


def yule_tree(
    n: int,
    rng: RngLike = None,
    *,
    names: Optional[Sequence[str]] = None,
    branch_length: float = 0.1,
    random_lengths: bool = False,
) -> Tree:
    """A pure-birth (Yule) topology: each step splits a uniformly chosen tip."""
    if n < 1:
        raise ValueError("need at least one tip")
    gen = as_rng(rng)
    labels = list(names) if names is not None else tip_labels(n)
    if len(labels) != n:
        raise ValueError("names must have length n")

    root = Node(labels[0])
    tips = [root]
    next_label = 1
    while len(tips) < n:
        idx = int(gen.integers(len(tips)))
        splitting = tips[idx]
        left = Node(splitting.name)
        right = Node(labels[next_label])
        next_label += 1
        splitting.name = None
        splitting.add_child(left)
        splitting.add_child(right)
        tips[idx] = left
        tips.append(right)
    tree = Tree(root)
    return _default_lengths(tree, gen if random_lengths else None, branch_length)


def coalescent_tree(
    n: int,
    rng: RngLike = None,
    *,
    names: Optional[Sequence[str]] = None,
    theta: float = 1.0,
) -> Tree:
    """A Kingman-coalescent gene genealogy of ``n`` sampled alleles.

    While ``k`` lineages remain, a uniformly chosen pair coalesces after an
    ``Exp(k(k-1)/theta)`` waiting time; branch lengths record the elapsed
    coalescent time, so the tree is ultrametric.
    """
    if n < 1:
        raise ValueError("need at least one allele")
    gen = as_rng(rng)
    labels = list(names) if names is not None else tip_labels(n)
    if len(labels) != n:
        raise ValueError("names must have length n")

    lineages = [(Node(label), 0.0) for label in labels]
    time = 0.0
    while len(lineages) > 1:
        k = len(lineages)
        rate = k * (k - 1) / theta
        time += float(gen.exponential(1.0 / rate))
        i, j = sorted(gen.choice(k, size=2, replace=False).tolist())
        node_j, t_j = lineages.pop(j)
        node_i, t_i = lineages.pop(i)
        parent = Node()
        node_i.length = time - t_i
        node_j.length = time - t_j
        parent.add_child(node_i)
        parent.add_child(node_j)
        lineages.append((parent, time))
    return Tree(lineages[0][0])


def birth_death_tree(
    n: int,
    rng: RngLike = None,
    *,
    birth_rate: float = 1.0,
    death_rate: float = 0.3,
    names: Optional[Sequence[str]] = None,
    max_attempts: int = 1000,
) -> Tree:
    """A birth–death tree conditioned on ``n`` surviving tips.

    Lineages split at rate ``birth_rate`` and die at rate ``death_rate``;
    simulation runs forward until ``n`` lineages are simultaneously alive,
    then stops and prunes all extinct lineages. Runs that go extinct are
    restarted (up to ``max_attempts``). With ``death_rate = 0`` this is
    the Yule process with true exponential branch lengths.
    """
    if n < 1:
        raise ValueError("need at least one tip")
    if birth_rate <= 0 or death_rate < 0:
        raise ValueError("need birth_rate > 0 and death_rate >= 0")
    if death_rate >= birth_rate:
        raise ValueError("death_rate must be below birth_rate to condition on survival")
    gen = as_rng(rng)
    labels = list(names) if names is not None else tip_labels(n)
    if len(labels) != n:
        raise ValueError("names must have length n")

    for _ in range(max_attempts):
        root = Node()
        # alive: (node, birth_time); the tree grows by splitting leaves.
        alive = [(root, 0.0)]
        time = 0.0
        dead: set = set()
        failed = False
        while len(alive) < n:
            k = len(alive)
            if k == 0:
                failed = True
                break
            total_rate = k * (birth_rate + death_rate)
            time += float(gen.exponential(1.0 / total_rate))
            index = int(gen.integers(k))
            node, born = alive.pop(index)
            node.length = time - born
            if gen.random() < birth_rate / (birth_rate + death_rate):
                left, right = Node(), Node()
                node.add_child(left)
                node.add_child(right)
                alive.append((left, time))
                alive.append((right, time))
            else:
                dead.add(id(node))
        if failed:
            continue
        # Close surviving lineages at the stopping time.
        for node, born in alive:
            node.length = time - born
        tree = Tree(root)
        # Prune extinct lineages: repeatedly drop dead leaves, then
        # splice unary nodes (their lengths merge).
        changed = True
        while changed:
            changed = False
            for leaf in [x for x in tree.root.traverse_postorder() if x.is_tip]:
                if id(leaf) in dead and leaf.parent is not None:
                    leaf.parent.remove_child(leaf)
                    changed = True
        tree.suppress_unary()
        survivors = [t for t in tree.tips()]
        if len(survivors) != n or not tree.is_bifurcating():
            continue
        for label, tip in zip(labels, survivors):
            tip.name = label
        tree.invalidate_indices()
        return tree
    raise RuntimeError(
        f"birth-death simulation failed to yield {n} survivors in "
        f"{max_attempts} attempts"
    )
