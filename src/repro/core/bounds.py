"""Theoretical speedup expectations (paper §V).

Concurrent evaluation replaces ``n − 1`` serial kernel launches with one
launch per operation set, so — ignoring launch-size effects — the best
possible speedup from subtree concurrency for a given rooting is::

    speedup = (n − 1) / operation_sets

The paper derives the topology-family expectations reproduced here:

* perfectly balanced tree: sets = ``ceil(log2 n)`` → speedup
  ``(n − 1)/ceil(log2 n)`` (the global upper bound),
* pectinate tree, unrerooted: sets = ``n − 1`` → speedup 1 (the serial
  worst case),
* pectinate tree, optimally rerooted: sets = ``ceil(n/2)`` → speedup
  ``(n − 1)/ceil(n/2) → 2 − ε`` as ``n`` grows,
* any optimally rerooted tree: sets ≤ ``ceil(n/2)``, hence speedup in
  ``[(n − 1)/ceil(n/2), (n − 1)/ceil(log2 n)]``.
"""

from __future__ import annotations

import math

from ..trees import Tree
from .opsets import count_operation_sets

__all__ = [
    "balanced_sets",
    "pectinate_sets",
    "rerooted_pectinate_sets",
    "theoretical_speedup",
    "speedup_balanced",
    "speedup_pectinate_rerooted",
    "rerooted_speedup_interval",
    "tree_theoretical_speedup",
]


def balanced_sets(n_tips: int) -> int:
    """Operation sets of a perfectly balanced tree: ``ceil(log2 n)``."""
    if n_tips < 2:
        return 0
    return math.ceil(math.log2(n_tips))


def pectinate_sets(n_tips: int) -> int:
    """Operation sets of an unrerooted pectinate tree: ``n − 1``."""
    if n_tips < 2:
        return 0
    return n_tips - 1


def rerooted_pectinate_sets(n_tips: int) -> int:
    """Operation sets of an optimally rerooted pectinate tree: ``ceil(n/2)``."""
    if n_tips < 2:
        return 0
    return math.ceil(n_tips / 2)


def theoretical_speedup(n_tips: int, operation_sets: int) -> float:
    """Best-case speedup of concurrent over serial: ``(n−1)/sets``."""
    if n_tips < 2 or operation_sets < 1:
        return 1.0
    return (n_tips - 1) / operation_sets


def speedup_balanced(n_tips: int) -> float:
    """Theoretical concurrent speedup of a perfectly balanced tree."""
    return theoretical_speedup(n_tips, balanced_sets(n_tips))


def speedup_pectinate_rerooted(n_tips: int) -> float:
    """Theoretical speedup of an optimally rerooted pectinate tree.

    Approaches 2 from below as ``n → ∞`` (paper §V-A).
    """
    return theoretical_speedup(n_tips, rerooted_pectinate_sets(n_tips))


def rerooted_speedup_interval(n_tips: int) -> tuple[float, float]:
    """The paper's §V-B interval for any optimally rerooted tree:
    ``[(n−1)/ceil(n/2), (n−1)/ceil(log2 n)]``."""
    return (speedup_pectinate_rerooted(n_tips), speedup_balanced(n_tips))


def tree_theoretical_speedup(tree: Tree) -> float:
    """Tree-specific theoretical speedup: ``(n−1)/sets(tree)``.

    This is how the paper obtains the per-tree bounds for its random
    samples in Table III (§VII-C): count the tree's actual operation sets
    and divide into the serial launch count.
    """
    return theoretical_speedup(tree.n_tips, count_operation_sets(tree))
