"""Optimal rerooting for concurrency — the paper's contribution (§V, §VI-E).

Two algorithms find the rooting that minimises the number of concurrent
operation sets:

* :func:`optimal_reroot_exhaustive` — the paper's naive procedure: for
  each of the ``2n − 3`` branches, reconstruct the tree rooted there,
  count operation sets with a reverse level-order traversal, and keep the
  best. O(n²) overall.
* :func:`optimal_reroot_fast` — the "more efficient algorithm" the paper
  leaves as future work (§VIII): a two-sweep dynamic program over
  *directed* edges computes, in O(n) total, the topological height of the
  tree rooted on **every** edge; the minimum-height edge is the optimal
  rooting. Height is the minimum possible set count for a rooting, and
  the property tests plus the rerooting-algorithm ablation benchmark
  confirm that the greedy BEAGLE set count at the height-optimal rooting
  equals the exhaustive optimum.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..obs import get_recorder
from ..trees import Tree
from ..trees.node import Node
from ..trees.reroot import reroot_on_edge, unrooted_adjacency, unrooted_edges
from .opsets import count_operation_sets, min_operation_sets

__all__ = [
    "RerootResult",
    "optimal_reroot_exhaustive",
    "optimal_reroot_fast",
    "edge_rooting_heights",
]


@dataclass(frozen=True)
class RerootResult:
    """Outcome of an optimal-rerooting search.

    Attributes
    ----------
    tree:
        The rerooted tree (a fresh copy; the input is untouched).
    operation_sets:
        Greedy (BEAGLE) operation-set count of ``tree``.
    original_operation_sets:
        Greedy count of the input rooting, for the before/after comparison
        of the paper's Figure 4.
    evaluated_rootings:
        How many candidate rootings the search examined.
    """

    tree: Tree
    operation_sets: int
    original_operation_sets: int
    evaluated_rootings: int

    @property
    def improvement(self) -> int:
        """Reduction in kernel launches achieved by rerooting."""
        return self.original_operation_sets - self.operation_sets


def _record_search(result: RerootResult, span) -> RerootResult:
    """Count the search (and a possible win) and annotate its span."""
    obs = get_recorder()
    if obs.enabled:
        obs.count("repro_reroot_searches_total")
        if result.improvement > 0:
            obs.count("repro_reroot_wins_total")
        span.set_attribute("improvement", result.improvement)
        span.set_attribute("evaluated", result.evaluated_rootings)
    return result


_OBJECTIVES: Dict[str, Callable[[Tree], int]] = {
    "sets": count_operation_sets,
    "height": min_operation_sets,
}


def optimal_reroot_exhaustive(tree: Tree, objective: str = "sets") -> RerootResult:
    """The paper's naive exhaustive search over all rootings (§VI-E).

    Parameters
    ----------
    objective:
        ``"sets"`` (default) counts greedy BEAGLE operation sets — exactly
        the paper's criterion; ``"height"`` minimises topological height
        (the per-rooting lower bound), the criterion of
        :func:`optimal_reroot_fast`.

    Notes
    -----
    The original rooting participates in the comparison: when the input
    tree is already optimal the result's ``improvement`` is 0, matching
    the paper's observation that one of its 100 random trees gained
    nothing from rerooting (§VII-A).
    """
    try:
        score = _OBJECTIVES[objective]
    except KeyError:
        raise ValueError(f"unknown objective {objective!r}") from None
    with get_recorder().span(
        "reroot.search",
        category="reroot",
        algorithm="exhaustive",
        tips=tree.n_tips,
    ) as span:
        original_sets = count_operation_sets(tree)
        if tree.n_tips < 3:
            return _record_search(
                RerootResult(tree.copy(), original_sets, original_sets, 1),
                span,
            )

        best_tree = tree.copy()
        best_score = score(tree)
        evaluated = 1
        for u, v, _ in unrooted_edges(tree):
            candidate = reroot_on_edge(tree, u, v)
            candidate_score = score(candidate)
            evaluated += 1
            if candidate_score < best_score:
                best_score = candidate_score
                best_tree = candidate
        return _record_search(
            RerootResult(
                tree=best_tree,
                operation_sets=count_operation_sets(best_tree),
                original_operation_sets=original_sets,
                evaluated_rootings=evaluated,
            ),
            span,
        )


def edge_rooting_heights(tree: Tree) -> List[Tuple[Node, Node, int]]:
    """Rooting height of every unrooted edge, all computed in O(n).

    For edge ``{u, v}`` the value is the topological height of the tree
    rooted on that edge: ``1 + max(H(v→u), H(u→v))``, where ``H(x→y)`` is
    the height of the component containing ``y`` after cutting the edge,
    rooted at ``y``. The directed-edge heights satisfy

        H(x→y) = 0                               if y has no other neighbour
        H(x→y) = 1 + max_{z ∈ N(y)\\{x}} H(y→z)   otherwise

    and are resolved leaf-inward with a dependency-counting queue — no
    recursion and no repeated traversals, so the whole map costs O(n)
    for bounded-degree (bifurcating) trees.
    """
    adjacency, nodes = unrooted_adjacency(tree)
    if len(nodes) < 2:
        return []
    neighbor_ids: Dict[int, List[int]] = {
        nid: [id(n) for n, _ in neigh] for nid, neigh in adjacency.items()
    }
    degree = {nid: len(neigh) for nid, neigh in neighbor_ids.items()}

    H: Dict[Tuple[int, int], int] = {}
    best: Dict[Tuple[int, int], int] = {}
    pending: Dict[Tuple[int, int], int] = {}
    queue: deque[Tuple[int, int]] = deque()

    for y, neighbors in neighbor_ids.items():
        for x in neighbors:
            key = (x, y)
            pending[key] = degree[y] - 1
            best[key] = -1
            if pending[key] == 0:  # y is a leaf seen from x
                H[key] = 0
                queue.append(key)

    while queue:
        x, y = queue.popleft()
        value = H[(x, y)]
        # H(x→y) feeds H(w→x) for every w ∈ N(x) \ {y}.
        for w in neighbor_ids[x]:
            if w == y:
                continue
            key = (w, x)
            if key in H:
                continue
            if value > best[key]:
                best[key] = value
            pending[key] -= 1
            if pending[key] == 0:
                H[key] = 1 + best[key]
                queue.append(key)

    results: List[Tuple[Node, Node, int]] = []
    for u, v, _ in unrooted_edges(tree):
        height = 1 + max(H[(id(v), id(u))], H[(id(u), id(v))])
        results.append((u, v, height))
    return results


def optimal_reroot_fast(tree: Tree) -> RerootResult:
    """O(n) optimal rerooting via the directed-edge height map.

    Scans :func:`edge_rooting_heights` for the minimum-height edge and
    reroots there (ties broken by the deterministic edge enumeration
    order). The returned ``operation_sets`` is the greedy BEAGLE count of
    the chosen rooting, directly comparable with
    :func:`optimal_reroot_exhaustive`.
    """
    with get_recorder().span(
        "reroot.search", category="reroot", algorithm="fast", tips=tree.n_tips
    ) as span:
        original_sets = count_operation_sets(tree)
        if tree.n_tips < 3:
            return _record_search(
                RerootResult(tree.copy(), original_sets, original_sets, 1),
                span,
            )
        heights = edge_rooting_heights(tree)
        u, v, best_height = min(heights, key=lambda t: t[2])
        # Keep the original rooting when it is already optimal.
        if min_operation_sets(tree) <= best_height:
            best_tree = tree.copy()
        else:
            best_tree = reroot_on_edge(tree, u, v)
        return _record_search(
            RerootResult(
                tree=best_tree,
                operation_sets=count_operation_sets(best_tree),
                original_operation_sets=original_sets,
                evaluated_rootings=len(heights) + 1,
            ),
            span,
        )
