"""Mapping trees onto operation schedules.

The likelihood of a tree requires one operation per internal node
(``n - 1`` for ``n`` tips, paper §IV-B). *Which order* those operations
are submitted in determines how much concurrency the engine can discover:

* :func:`postorder_operations` — the prevailing serial order (paper
  Fig. 2 upper / Fig. 3 upper).
* :func:`reverse_levelorder_operations` — deepest-level-first, the order
  BEAGLE requires for its dependency-aware batching (Fig. 2 lower).

Buffer-index conventions follow :meth:`repro.trees.tree.Tree.assign_indices`:
tip buffers ``0..n-1``, internal partials buffers ``n..2n-2``, and the
transition matrix of a branch shares the buffer index of its child node.
Scale-buffer index of an internal node is ``buffer − n`` when manual
scaling is on.

The *pre-order* (upper-partial) pass reuses the same :class:`Operation`
shape over an extended buffer space: the upper partials of node ``i``
live at buffer ``upper_base(tree) + i`` where ``upper_base`` is ``2n−1``
(one upper slot per node, after every lower buffer). An upper operation's
``child1`` is the sibling's *lower* buffer, its ``child2`` the parent's
*upper* buffer, so the greedy set builder and the dataflow verifier work
unchanged on the combined index space. The merged pulley edge (the two
root branches of the unrooted view) stores its transition matrix under
the root's own buffer index — the one matrix slot a rooted post-order
plan never uses.
"""

from __future__ import annotations

from typing import List, Tuple

from ..beagle.operations import Operation
from ..trees import Tree
from ..trees.traversal import levelorder, reverse_levelorder

__all__ = [
    "operation_for_node",
    "postorder_operations",
    "reverse_levelorder_operations",
    "matrix_updates",
    "upper_base",
    "upper_operation_for_node",
    "preorder_upper_operations",
    "upper_seeds",
    "pulley_matrix_update",
]


def operation_for_node(tree: Tree, node, *, scaling: bool = False) -> Operation:
    """The :class:`Operation` computing one internal node's partials."""
    if node.is_tip:
        raise ValueError("tips have no partial-likelihood operation")
    if len(node.children) != 2:
        raise ValueError("operations require a bifurcating tree")
    left, right = node.children
    dest = tree.index_of(node)
    return Operation(
        destination=dest,
        child1=tree.index_of(left),
        child1_matrix=tree.index_of(left),
        child2=tree.index_of(right),
        child2_matrix=tree.index_of(right),
        destination_scale=(dest - tree.n_tips) if scaling else -1,
    )


def postorder_operations(tree: Tree, *, scaling: bool = False) -> List[Operation]:
    """Operations in post-order: strictly serial dependencies."""
    return [
        operation_for_node(tree, node, scaling=scaling)
        for node in tree.root.traverse_postorder()
        if not node.is_tip
    ]


def reverse_levelorder_operations(
    tree: Tree, *, scaling: bool = False
) -> List[Operation]:
    """Operations in reverse level-order (BEAGLE's required order)."""
    return [
        operation_for_node(tree, node, scaling=scaling)
        for node in reverse_levelorder(tree)
        if not node.is_tip
    ]


def matrix_updates(tree: Tree) -> tuple[List[int], List[float]]:
    """The (matrix index, branch length) pairs for every non-root node.

    Feed directly to
    :meth:`repro.beagle.instance.BeagleInstance.update_transition_matrices`.
    """
    indices: List[int] = []
    lengths: List[float] = []
    for node in tree.root.traverse_postorder():
        if node.parent is None:
            continue
        indices.append(tree.index_of(node))
        lengths.append(node.length)
    return indices, lengths


def upper_base(tree: Tree) -> int:
    """First upper-partial buffer index: one past the lower buffers.

    The upper partials of the node with buffer index ``i`` live at
    ``upper_base(tree) + i``; offsetting keeps the two banks disjoint in
    one integer space so dependency analysis over mixed operations needs
    no out-of-band bank tag.
    """
    return 2 * tree.n_tips - 1


def upper_operation_for_node(tree: Tree, node) -> Operation:
    """The :class:`Operation` computing one node's *upper* partials.

    The upper partials of ``node`` are the far-side half-tree partials of
    its branch — exactly the ``V`` buffer the per-edge rerooted evaluation
    computes — built from the sibling's lower partials (through the
    sibling's own matrix) and the parent's upper partials (through the
    parent's branch matrix; the merged pulley matrix when the parent is a
    root child). Root children themselves are *seeded*, not computed (see
    :func:`upper_seeds`).
    """
    parent = node.parent
    if parent is None:
        raise ValueError("the root has no branch, hence no upper partials")
    if parent.parent is None:
        raise ValueError(
            "root children are seeded, not computed; see upper_seeds()"
        )
    sibling = node.sibling()
    if sibling is None:
        raise ValueError("upper operations require a bifurcating tree")
    base = upper_base(tree)
    sibling_index = tree.index_of(sibling)
    parent_index = tree.index_of(parent)
    if parent.parent.parent is None and len(tree.root.children) == 2:
        # Parent is a root child: its upward branch is the merged pulley
        # edge, whose matrix lives under the root's buffer index.
        parent_matrix = tree.index_of(tree.root)
    else:
        parent_matrix = parent_index
    return Operation(
        destination=base + tree.index_of(node),
        child1=sibling_index,
        child1_matrix=sibling_index,
        child2=base + parent_index,
        child2_matrix=parent_matrix,
        destination_scale=-1,
    )


def preorder_upper_operations(tree: Tree) -> List[Operation]:
    """Upper-partial operations in level order (parents before children).

    One operation per non-root node whose parent is not the root —
    ``2n − 4`` for ``n ≥ 3`` tips — emitted breadth-first so the greedy
    set builder (:func:`repro.core.opsets.build_operation_sets`) groups
    whole levels, mirroring the reroot-aware batching of the post-order
    pass: a shallower (better-rooted) tree yields fewer pre-order sets.
    """
    return [
        upper_operation_for_node(tree, node)
        for node in levelorder(tree)
        if node.parent is not None and node.parent.parent is not None
    ]


def upper_seeds(tree: Tree) -> List[Tuple[int, int]]:
    """``(upper destination, lower source)`` seed pairs for the root children.

    For the pulley-suppressed root the far side of a root child's branch
    is simply its sibling's subtree, so each root child's upper partials
    are a copy of the sibling's lower partials — no matrices involved.
    """
    children = tree.root.children
    if len(children) != 2:
        raise ValueError("upper seeds require a bifurcating root")
    a, b = children
    base = upper_base(tree)
    return [
        (base + tree.index_of(a), tree.index_of(b)),
        (base + tree.index_of(b), tree.index_of(a)),
    ]


def pulley_matrix_update(tree: Tree) -> Tuple[int, float]:
    """The merged pulley edge's ``(matrix index, branch length)`` pair.

    The unrooted view joins the two root children by one edge of length
    ``a.length + b.length``; its transition matrix is stored under the
    root's buffer index — the single matrix slot the rooted post-order
    plan leaves unused.
    """
    children = tree.root.children
    if len(children) != 2:
        raise ValueError("the pulley edge requires a bifurcating root")
    a, b = children
    return tree.index_of(tree.root), float(a.length) + float(b.length)
