"""Mapping trees onto operation schedules.

The likelihood of a tree requires one operation per internal node
(``n - 1`` for ``n`` tips, paper §IV-B). *Which order* those operations
are submitted in determines how much concurrency the engine can discover:

* :func:`postorder_operations` — the prevailing serial order (paper
  Fig. 2 upper / Fig. 3 upper).
* :func:`reverse_levelorder_operations` — deepest-level-first, the order
  BEAGLE requires for its dependency-aware batching (Fig. 2 lower).

Buffer-index conventions follow :meth:`repro.trees.tree.Tree.assign_indices`:
tip buffers ``0..n-1``, internal partials buffers ``n..2n-2``, and the
transition matrix of a branch shares the buffer index of its child node.
Scale-buffer index of an internal node is ``buffer − n`` when manual
scaling is on.
"""

from __future__ import annotations

from typing import List

from ..beagle.operations import Operation
from ..trees import Tree
from ..trees.traversal import reverse_levelorder

__all__ = [
    "operation_for_node",
    "postorder_operations",
    "reverse_levelorder_operations",
    "matrix_updates",
]


def operation_for_node(tree: Tree, node, *, scaling: bool = False) -> Operation:
    """The :class:`Operation` computing one internal node's partials."""
    if node.is_tip:
        raise ValueError("tips have no partial-likelihood operation")
    if len(node.children) != 2:
        raise ValueError("operations require a bifurcating tree")
    left, right = node.children
    dest = tree.index_of(node)
    return Operation(
        destination=dest,
        child1=tree.index_of(left),
        child1_matrix=tree.index_of(left),
        child2=tree.index_of(right),
        child2_matrix=tree.index_of(right),
        destination_scale=(dest - tree.n_tips) if scaling else -1,
    )


def postorder_operations(tree: Tree, *, scaling: bool = False) -> List[Operation]:
    """Operations in post-order: strictly serial dependencies."""
    return [
        operation_for_node(tree, node, scaling=scaling)
        for node in tree.root.traverse_postorder()
        if not node.is_tip
    ]


def reverse_levelorder_operations(
    tree: Tree, *, scaling: bool = False
) -> List[Operation]:
    """Operations in reverse level-order (BEAGLE's required order)."""
    return [
        operation_for_node(tree, node, scaling=scaling)
        for node in reverse_levelorder(tree)
        if not node.is_tip
    ]


def matrix_updates(tree: Tree) -> tuple[List[int], List[float]]:
    """The (matrix index, branch length) pairs for every non-root node.

    Feed directly to
    :meth:`repro.beagle.instance.BeagleInstance.update_transition_matrices`.
    """
    indices: List[int] = []
    lengths: List[float] = []
    for node in tree.root.traverse_postorder():
        if node.parent is None:
            continue
        indices.append(tree.index_of(node))
        lengths.append(node.length)
    return indices, lengths
