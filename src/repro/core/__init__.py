"""The paper's contribution: concurrency-aware scheduling and rerooting."""

from .schedule import (
    matrix_updates,
    operation_for_node,
    postorder_operations,
    reverse_levelorder_operations,
)
from .opsets import (
    build_operation_sets,
    count_operation_sets,
    level_schedule,
    min_operation_sets,
    set_index_by_node,
)
from .reroot_opt import (
    RerootResult,
    edge_rooting_heights,
    optimal_reroot_exhaustive,
    optimal_reroot_fast,
)
from .bounds import (
    balanced_sets,
    pectinate_sets,
    rerooted_pectinate_sets,
    rerooted_speedup_interval,
    speedup_balanced,
    speedup_pectinate_rerooted,
    theoretical_speedup,
    tree_theoretical_speedup,
)
from .planner import (
    ExecutionPlan,
    GradientPlan,
    create_instance,
    execute_gradient_plan,
    execute_plan,
    make_gradient_plan,
    make_plan,
)
from .incremental import (
    IncrementalLikelihood,
    dirty_nodes,
    incremental_operation_sets,
    incremental_plan,
)

__all__ = [
    "operation_for_node",
    "postorder_operations",
    "reverse_levelorder_operations",
    "matrix_updates",
    "build_operation_sets",
    "count_operation_sets",
    "level_schedule",
    "min_operation_sets",
    "set_index_by_node",
    "RerootResult",
    "optimal_reroot_exhaustive",
    "optimal_reroot_fast",
    "edge_rooting_heights",
    "balanced_sets",
    "pectinate_sets",
    "rerooted_pectinate_sets",
    "theoretical_speedup",
    "speedup_balanced",
    "speedup_pectinate_rerooted",
    "rerooted_speedup_interval",
    "tree_theoretical_speedup",
    "ExecutionPlan",
    "GradientPlan",
    "make_gradient_plan",
    "execute_gradient_plan",
    "IncrementalLikelihood",
    "dirty_nodes",
    "incremental_operation_sets",
    "incremental_plan",
    "make_plan",
    "create_instance",
    "execute_plan",
]
