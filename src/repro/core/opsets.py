"""Operation-set construction — the paper's central quantity.

BEAGLE batches partial-likelihood operations into *operation sets*, each
executed as one concurrent (multi-operation) kernel launch. The grouping
algorithm (paper §VI-A) is greedy over the submission order:

    "BEAGLE adds each consecutive operation to a set until it finds an
    operation that is dependent on the result of a previous operation in
    the set. The library then starts a new operation set."

:func:`build_operation_sets` reproduces that algorithm exactly.
:func:`count_operation_sets` applies it to a tree via the reverse
level-order schedule — the number it returns is the "number of kernel
launches" plotted in the paper's Figure 4.

The library also provides the *optimal* grouping
(:func:`level_schedule`): compute a node as soon as all of its children
are available, grouping by topological height. Its set count —
``node_heights(root)`` — is a lower bound for any submission order, and
the two are compared in the scheduling ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..beagle.operations import Operation
from ..trees import Tree
from ..trees.traversal import node_heights
from .schedule import operation_for_node, reverse_levelorder_operations

__all__ = [
    "build_operation_sets",
    "count_operation_sets",
    "level_schedule",
    "min_operation_sets",
    "set_index_by_node",
]


def build_operation_sets(operations: Sequence[Operation]) -> List[List[Operation]]:
    """Greedy BEAGLE batching of an operation sequence.

    Scans the sequence in order, accumulating operations into the current
    set; an operation that reads any destination already in the set closes
    it and opens a new one. Every returned set is internally independent
    (no set member reads another member's destination) by construction.
    """
    sets: List[List[Operation]] = []
    current: List[Operation] = []
    current_destinations: set[int] = set()
    for op in operations:
        if any(r in current_destinations for r in op.reads()):
            sets.append(current)
            current = []
            current_destinations = set()
        current.append(op)
        current_destinations.add(op.destination)
    if current:
        sets.append(current)
    return sets


def count_operation_sets(tree: Tree) -> int:
    """Kernel launches needed for ``tree`` with subtree concurrency.

    This is the paper's per-tree measurement: greedy sets over the
    reverse level-order schedule. Equals ``ceil(log2 n)`` for perfectly
    balanced trees and ``n − 1`` for pectinate trees.
    """
    if tree.n_tips < 2:
        return 0
    return len(build_operation_sets(reverse_levelorder_operations(tree)))


def level_schedule(tree: Tree, *, scaling: bool = False) -> List[List[Operation]]:
    """Optimal (ASAP) schedule: group internal nodes by topological height.

    A node of height ``h`` (tips are height 0) only depends on nodes of
    smaller height, so all nodes of equal height form an independent set,
    and the number of sets — the root's height — is the minimum achievable
    by *any* grouping.
    """
    heights = node_heights(tree)
    by_height: Dict[int, List[Operation]] = {}
    for node in tree.root.traverse_postorder():
        if node.is_tip:
            continue
        op = operation_for_node(tree, node, scaling=scaling)
        by_height.setdefault(heights[id(node)], []).append(op)
    return [by_height[h] for h in sorted(by_height)]


def min_operation_sets(tree: Tree) -> int:
    """Lower bound on operation sets for this rooting: the root's height."""
    if tree.n_tips < 2:
        return 0
    return node_heights(tree)[id(tree.root)]


def set_index_by_node(tree: Tree) -> Dict[int, int]:
    """Map ``id(internal node) -> operation-set index`` (greedy grouping).

    Used by :func:`repro.trees.render.render_schedule` to draw the
    Figure 2/3 style diagrams.
    """
    ops = reverse_levelorder_operations(tree)
    sets = build_operation_sets(ops)
    dest_to_set = {
        op.destination: k for k, group in enumerate(sets) for op in group
    }
    return {
        id(node): dest_to_set[tree.index_of(node)]
        for node in tree.internals()
    }
