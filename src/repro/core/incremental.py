"""Incremental (dirty-path) likelihood updates — paper §VIII, factor 2.

Modern inference programs do not recompute the whole tree after every
move: changing one branch length only invalidates the partials of that
branch's *ancestors* (the path up to the root), and programs recompute
exactly that path. The paper's Discussion asks how its concurrency gains
interact with such partial updates; this module implements them and
exposes the quantitative link to rerooting:

* the update path from a random branch to the root has expected length
  O(n) in a pectinate tree but O(log n)–O(ceil(n/2)) after balanced
  rerooting — so **rerooting also shrinks incremental updates**, not just
  full traversals (measured in ``benchmarks/bench_incremental_updates.py``);
* when several branches change at once (e.g. an NNI plus a multiplier),
  the union of their dirty paths still forms independent operation sets
  that batch into few launches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..beagle.instance import BeagleInstance
from ..beagle.operations import Operation
from ..data.patterns import PatternData
from ..models.ratematrix import SubstitutionModel
from ..models.siterates import RateCategories
from ..trees import Tree
from ..trees.node import Node
from ..trees.traversal import node_depths
from .opsets import build_operation_sets
from .planner import ExecutionPlan, create_instance, execute_plan, make_plan
from .schedule import operation_for_node

__all__ = [
    "dirty_nodes",
    "incremental_operation_sets",
    "incremental_plan",
    "IncrementalLikelihood",
]


def dirty_nodes(tree: Tree, changed: Iterable[Node]) -> List[Node]:
    """Internal nodes whose partials a set of branch changes invalidates.

    Changing the branch above ``node`` invalidates ``node.parent`` and all
    its ancestors. The union over all changed nodes is returned in
    reverse level-order (deepest first) so the greedy set builder can
    batch updates from disjoint paths.
    """
    marked: Dict[int, Node] = {}
    for node in changed:
        ancestor = node.parent
        while ancestor is not None:
            if id(ancestor) in marked:
                break  # everything above is already marked
            marked[id(ancestor)] = ancestor
            ancestor = ancestor.parent
    depths = node_depths(tree)
    ordered = sorted(marked.values(), key=lambda n: -depths[id(n)])
    return ordered


def incremental_operation_sets(
    tree: Tree,
    changed: Iterable[Node],
    *,
    scaling: bool = False,
    verify: bool = False,
) -> List[List[Operation]]:
    """Greedy operation sets recomputing only the dirty ancestors.

    With ``verify=True`` the sets are statically checked by
    :func:`repro.analysis.verify_operation_sets` before being returned:
    partials *outside* the dirty path are assumed live from the previous
    full evaluation, so the analyzer proves exactly the incremental
    contract — every dirty buffer is recomputed before any dirty reader
    consumes it. Raises :class:`repro.analysis.PlanVerificationError` on
    a hazard.
    """
    ops = [
        operation_for_node(tree, node, scaling=scaling)
        for node in dirty_nodes(tree, changed)
    ]
    sets = build_operation_sets(ops)
    if verify:
        # Imported lazily: repro.analysis depends on repro.core.
        from ..analysis.config import BufferConfig
        from ..analysis.verifier import verify_operation_sets

        config = BufferConfig.for_tree(tree, scaling=scaling)
        clean = set(range(tree.n_tips, config.n_buffers))
        clean -= {op.destination for op in ops}
        verify_operation_sets(
            sets,
            config,
            assume_valid=clean,
            root_buffer=tree.index_of(tree.root),
        ).raise_if_errors()
    return sets


def incremental_plan(
    tree: Tree,
    changed: Iterable[Node],
    *,
    matrices_for: Optional[Iterable[Node]] = None,
    scaling: bool = False,
    verify: bool = False,
) -> ExecutionPlan:
    """A first-class :class:`~repro.core.planner.ExecutionPlan` covering
    only the dirty root-ward path of a set of changed nodes.

    The plan's operation sets recompute exactly the ancestors invalidated
    by ``changed`` (reverse level-order, greedily batched — the same
    reroot-aware scheduling as full plans, so a rerooted tree yields a
    shorter, wider dirty path). Its matrix updates cover ``matrices_for``
    (default: the changed nodes themselves), and ``incremental=True``
    tells :func:`~repro.core.planner.execute_plan` to reuse the partials
    left by the previous full evaluation instead of invalidating them.

    Indices must already be assigned (by the full plan that preceded this
    one); this function never reassigns them, so buffer numbering stays
    stable across the full/incremental sequence.

    With ``verify=True`` the dirty-path schedule is proven safe by the
    static analyzer under the incremental contract (clean buffers assumed
    live); see :func:`incremental_operation_sets`.
    """
    changed = list(changed)
    sets = incremental_operation_sets(
        tree, changed, scaling=scaling, verify=verify
    )
    targets = changed if matrices_for is None else list(matrices_for)
    indices: List[int] = []
    lengths: List[float] = []
    for node in targets:
        if node.parent is None:
            raise ValueError("the root has no branch to update")
        indices.append(tree.index_of(node))
        lengths.append(float(node.length))
    return ExecutionPlan(
        tree=tree,
        operation_sets=sets,
        matrix_indices=indices,
        branch_lengths=lengths,
        root_buffer=tree.index_of(tree.root),
        scaling=scaling,
        mode="incremental",
        incremental=True,
    )


class IncrementalLikelihood:
    """A likelihood evaluator with cheap single-branch updates.

    After one full evaluation, :meth:`set_branch_length` recomputes only
    the changed branch's transition matrix and the partials on the path
    to the root — the access pattern of a real inference loop. Launch
    counts are tracked by the underlying instance's ``stats``.

    Parameters
    ----------
    tree:
        The working tree. Branch lengths are mutated in place by
        :meth:`set_branch_length`; topology must not change (build a new
        evaluator for topology moves).
    model, patterns, rates, scaling:
        As for :func:`repro.core.planner.create_instance`.
    verify:
        Statically verify the full plan and every incremental dirty-path
        schedule before execution (see :mod:`repro.analysis`).
    """

    def __init__(
        self,
        tree: Tree,
        model: SubstitutionModel,
        patterns: PatternData,
        *,
        rates: Optional[RateCategories] = None,
        scaling: bool = False,
        verify: bool = False,
    ) -> None:
        if scaling:
            # Incremental updates would need to re-accumulate scale
            # factors along the dirty path only; for clarity this
            # implementation recomputes factors with full evaluations.
            raise NotImplementedError(
                "incremental updates do not support manual scaling"
            )
        self.tree = tree
        self.model = model
        self.patterns = patterns
        self.rates = rates
        self.verify = verify
        self.instance: BeagleInstance = create_instance(
            tree, model, patterns, rates=rates
        )
        self.plan = make_plan(tree, "concurrent", verify=verify)
        self._evaluated = False

    # ------------------------------------------------------------------
    def full_log_likelihood(self) -> float:
        """Evaluate everything (also refreshes all cached partials)."""
        value = execute_plan(self.instance, self.plan)
        self._evaluated = True
        return value

    def set_branch_length(self, node: Node, length: float) -> float:
        """Change one branch and return the updated log-likelihood.

        Only the branch's transition matrix and the partials of the
        node's ancestors are recomputed.
        """
        if node.parent is None:
            raise ValueError("the root has no branch")
        if length < 0:
            raise ValueError("branch lengths must be non-negative")
        if not self._evaluated:
            self.full_log_likelihood()
        node.length = float(length)
        plan = incremental_plan(self.tree, [node], verify=self.verify)
        return execute_plan(self.instance, plan)

    def update_cost(self, node: Node) -> int:
        """Operations a change to this branch will recompute (path length)."""
        if node.parent is None:
            raise ValueError("the root has no branch")
        return len(dirty_nodes(self.tree, [node]))

    def update_launches(self, node: Node) -> int:
        """Operation sets (kernel launches) one branch update needs."""
        if node.parent is None:
            raise ValueError("the root has no branch")
        return len(incremental_operation_sets(self.tree, [node]))
