"""Execution planning: from a tree to engine calls.

An :class:`ExecutionPlan` fixes everything the engine needs to evaluate a
tree's likelihood: the operation sets (serial or concurrent), the matrix
updates, the root buffer, and the scaling configuration mirroring
``synthetictest``'s ``--manualscale`` / ``--rescale-frequency`` options.
:func:`execute_plan` drives a :class:`~repro.beagle.instance.BeagleInstance`
through the plan and returns the log-likelihood.

A :class:`GradientPlan` extends a post-order plan with the *pre-order*
upper-partial pass: seed copies for the root children, level-batched
upper operation sets, and the merged pulley-edge matrix update. One
:func:`execute_gradient_plan` call leaves the engine holding, for every
node, both the lower (subtree) and upper (rest-of-tree) partials — the
two halves every branch's (logL, d/dt, d²/dt²) recombination needs, in
linear total work instead of one rerooted evaluation per edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..beagle.instance import BeagleInstance
from ..beagle.operations import Operation
from ..data.patterns import PatternData
from ..obs import get_recorder
from ..models.ratematrix import SubstitutionModel
from ..models.siterates import RateCategories, single_rate
from ..trees import Tree
from .opsets import build_operation_sets, level_schedule
from .schedule import (
    matrix_updates,
    postorder_operations,
    preorder_upper_operations,
    pulley_matrix_update,
    reverse_levelorder_operations,
    upper_seeds,
)

__all__ = [
    "ExecutionPlan",
    "make_plan",
    "create_instance",
    "execute_plan",
    "GradientPlan",
    "make_gradient_plan",
    "execute_gradient_plan",
]

#: Scale buffer reserved for the accumulated (cumulative) log factors.
CUMULATIVE_SCALE = 0


@dataclass(frozen=True)
class ExecutionPlan:
    """A fully resolved schedule for one tree evaluation.

    Attributes
    ----------
    tree:
        The tree the plan was built from (indices assigned).
    operation_sets:
        Groups of independent operations; each inner list is one kernel
        launch. Serial plans have one operation per set.
    matrix_indices, branch_lengths:
        Arguments for ``update_transition_matrices``.
    root_buffer:
        Buffer index holding the root partials after execution.
    scaling:
        Whether operations write per-node scale factors.
    mode:
        ``"serial"``, ``"concurrent"`` (greedy reverse level-order sets),
        ``"level"`` (optimal height grouping) or ``"incremental"``
        (dirty-path sets from :func:`repro.core.incremental.incremental_plan`).
    incremental:
        True for dirty-path plans: execution reuses the partials left by
        a previous full evaluation instead of invalidating them, and the
        operation sets cover only the dirty root-ward path.
    """

    tree: Tree
    operation_sets: List[List[Operation]]
    matrix_indices: List[int]
    branch_lengths: List[float]
    root_buffer: int
    scaling: bool
    mode: str
    incremental: bool = False

    @property
    def n_launches(self) -> int:
        """Kernel launches this plan will issue."""
        return len(self.operation_sets)

    @property
    def n_operations(self) -> int:
        """Operations summed over all sets."""
        return sum(len(s) for s in self.operation_sets)

    @property
    def set_sizes(self) -> List[int]:
        """Operations per set, in launch order."""
        return [len(s) for s in self.operation_sets]


def make_plan(
    tree: Tree,
    mode: str = "concurrent",
    *,
    scaling: bool = False,
    verify: bool = False,
) -> ExecutionPlan:
    """Build an :class:`ExecutionPlan` for a bifurcating tree.

    Parameters
    ----------
    mode:
        ``"serial"`` — post-order, one operation per launch (the paper's
        sequential baseline, §VII-C); ``"concurrent"`` — reverse
        level-order with greedy BEAGLE batching; ``"level"`` — optimal
        height-grouped batching (scheduling ablation).
    scaling:
        Enable per-operation rescaling (manual-scaling style).
    verify:
        Run the static analyzer (:func:`repro.analysis.verify_plan`) on
        the finished plan and raise
        :class:`repro.analysis.PlanVerificationError` if it finds any
        buffer hazard — a guard rail for schedule-generation changes.
    """
    if not tree.is_bifurcating():
        raise ValueError("execution plans require a bifurcating tree")
    if tree.n_tips < 2:
        raise ValueError("need at least two tips")
    obs = get_recorder()
    with obs.span("plan.make", category="plan", mode=mode, tips=tree.n_tips):
        tree.assign_indices()
        if mode == "serial":
            sets = [[op] for op in postorder_operations(tree, scaling=scaling)]
        elif mode == "concurrent":
            ops = reverse_levelorder_operations(tree, scaling=scaling)
            sets = build_operation_sets(ops)
        elif mode == "level":
            sets = level_schedule(tree, scaling=scaling)
        else:
            raise ValueError(f"unknown mode {mode!r}")
        indices, lengths = matrix_updates(tree)
        plan = ExecutionPlan(
            tree=tree,
            operation_sets=sets,
            matrix_indices=indices,
            branch_lengths=lengths,
            root_buffer=tree.index_of(tree.root),
            scaling=scaling,
            mode=mode,
        )
    if obs.enabled:
        obs.count("repro_plans_built_total")
        obs.observe("repro_sets_per_plan", plan.n_launches)
    if verify:
        # Imported lazily: repro.analysis depends on this module.
        from ..analysis.verifier import verify_plan

        verify_plan(plan).raise_if_errors()
    return plan


def create_instance(
    tree: Tree,
    model: SubstitutionModel,
    patterns: PatternData,
    *,
    rates: Optional[RateCategories] = None,
    scaling: bool = False,
    dtype=np.float64,
    backend=None,
) -> BeagleInstance:
    """Create and populate an engine instance for a (tree, model, data) triple.

    Tips are matched to pattern taxa by name; taxa with partial-ambiguity
    characters are loaded as tip partials, the rest as compact states
    (exactly the ``setTipStates``/``setTipPartials`` split in BEAGLE).
    ``backend`` selects the kernel backend (a resource name, a
    :class:`~repro.beagle.backend.KernelBackend`, or ``None`` for the
    environment/default resolution) and is passed through verbatim.
    """
    rates = rates or single_rate()
    names = set(patterns.taxa)
    tips = {t.name for t in tree.tips()}
    if tips != names:
        raise ValueError("tree tips and pattern taxa must match by name")
    # Use the tree's canonical (left-to-right) indexing so instance and
    # plan agree no matter which is created first; data rows are matched
    # to tip buffers by taxon name.
    tree.assign_indices()

    n = tree.n_tips
    instance = BeagleInstance(
        tip_count=n,
        partials_buffer_count=n - 1,
        matrix_count=2 * n - 1,
        pattern_count=patterns.n_patterns,
        state_count=model.n_states,
        category_count=rates.n_categories,
        scale_buffer_count=n if scaling else 0,
        dtype=dtype,
        backend=backend,
    )
    for tip in tree.tips():
        index = tree.index_of(tip)
        if tip.name in patterns.partials:
            instance.set_tip_partials(index, patterns.tip_partials(tip.name))
        else:
            instance.set_tip_states(index, patterns.tip_codes(tip.name))
    instance.set_pattern_weights(patterns.weights)
    instance.set_state_frequencies(model.frequencies)
    instance.set_category_rates(rates.rates)
    instance.set_category_weights(rates.probabilities)
    instance.set_eigen_decomposition(0, model.eigen)
    return instance


def execute_plan(
    instance: BeagleInstance,
    plan: ExecutionPlan,
    *,
    update_matrices: bool = True,
) -> float:
    """Run a plan on an instance and return the root log-likelihood.

    When the plan has scaling enabled, per-node scale factors written by
    the operations are accumulated into the cumulative buffer (the last
    slot of the scale bank — internal nodes use slots ``0 .. n−2``, so
    slot ``n−1`` is reserved) before the root reduction: BEAGLE's
    ``accumulateScaleFactors`` + ``calculateRootLogLikelihoods`` sequence.
    """
    obs = get_recorder()
    if obs.enabled:
        with obs.span(
            "plan.execute",
            category="plan",
            mode=plan.mode,
            launches=plan.n_launches,
            operations=plan.n_operations,
        ):
            return _execute_plan_body(instance, plan, update_matrices)
    return _execute_plan_body(instance, plan, update_matrices)


def _execute_plan_body(
    instance: BeagleInstance, plan: ExecutionPlan, update_matrices: bool
) -> float:
    """Body of :func:`execute_plan`, shared by the traced and plain paths."""
    if not plan.incremental:
        instance.invalidate_partials()
    if update_matrices:
        instance.update_transition_matrices(
            0, plan.matrix_indices, plan.branch_lengths
        )
    for op_set in plan.operation_sets:
        instance.update_partials_set(op_set)

    if not plan.scaling:
        return instance.calculate_root_log_likelihood(plan.root_buffer)
    scale_indices = [
        op.destination_scale
        for op_set in plan.operation_sets
        for op in op_set
        if op.destination_scale >= 0
    ]
    cumulative = instance.scale.count - 1
    instance.scale.reset(cumulative)
    instance.scale.accumulate(scale_indices, cumulative)
    return instance.calculate_root_log_likelihood(plan.root_buffer, cumulative)


@dataclass(frozen=True)
class GradientPlan:
    """A post-order plan plus its pre-order upper-partial pass.

    Attributes
    ----------
    post:
        The unscaled :class:`ExecutionPlan` computing every lower
        (subtree) partials buffer. Unscaled by construction — the
        all-branch recombination must match the per-edge rerooted
        derivative oracle bit for bit, and the oracle runs unscaled.
    upper_operation_sets:
        Independent upper-operation groups in pre-order (parents before
        children); each inner list is one ``update_upper_partials``
        launch. ``2n − 4`` operations total for ``n ≥ 3`` tips.
    seeds:
        ``(upper destination, lower source)`` copy pairs seeding the two
        root children's upper buffers.
    pulley_matrix, pulley_length:
        Matrix slot and branch length of the merged pulley edge (the
        root's own — otherwise unused — matrix index, and the sum of the
        two root-child branch lengths).
    mode:
        ``"concurrent"`` (greedy level batching) or ``"serial"`` (one
        operation per launch).
    """

    post: ExecutionPlan
    upper_operation_sets: List[List[Operation]]
    seeds: List[tuple]
    pulley_matrix: int
    pulley_length: float
    mode: str

    @property
    def tree(self) -> Tree:
        """The tree both passes were built from."""
        return self.post.tree

    @property
    def n_launches(self) -> int:
        """Kernel launches across both passes."""
        return self.post.n_launches + len(self.upper_operation_sets)

    @property
    def n_operations(self) -> int:
        """Partial-update operations across both passes (``3n − 5``)."""
        return self.post.n_operations + sum(
            len(s) for s in self.upper_operation_sets
        )

    @property
    def upper_set_sizes(self) -> List[int]:
        """Upper operations per set, in launch order."""
        return [len(s) for s in self.upper_operation_sets]


def make_gradient_plan(
    tree: Tree, mode: str = "concurrent", *, verify: bool = False
) -> GradientPlan:
    """Build the one-sweep all-branch gradient plan for a bifurcating tree.

    Parameters
    ----------
    mode:
        ``"concurrent"`` — both passes batched into independent sets
        (post-order via greedy reverse level-order, pre-order via greedy
        level order, so a shallower tree yields fewer launches in *both*
        directions); ``"serial"`` — one operation per launch in both
        passes (the launch-overhead baseline).
    verify:
        Run the static analyzer
        (:func:`repro.analysis.verify_gradient_plan`) over the combined
        def/use contract and raise on any hazard.
    """
    if mode not in ("serial", "concurrent"):
        raise ValueError(f"unknown mode {mode!r}")
    if tree.n_tips < 3:
        raise ValueError("gradient plans require at least three tips")
    post = make_plan(tree, mode=mode, scaling=False)
    obs = get_recorder()
    with obs.span(
        "plan.gradient", category="plan", mode=mode, tips=tree.n_tips
    ):
        upper_ops = preorder_upper_operations(tree)
        if mode == "serial":
            upper_sets = [[op] for op in upper_ops]
        else:
            upper_sets = build_operation_sets(upper_ops)
        pulley_index, pulley_length = pulley_matrix_update(tree)
        plan = GradientPlan(
            post=post,
            upper_operation_sets=upper_sets,
            seeds=upper_seeds(tree),
            pulley_matrix=pulley_index,
            pulley_length=pulley_length,
            mode=mode,
        )
    if obs.enabled:
        obs.count("repro_gradient_plans_built_total")
    if verify:
        # Imported lazily: repro.analysis depends on this module.
        from ..analysis.verifier import verify_gradient_plan

        verify_gradient_plan(plan).raise_if_errors()
    return plan


def execute_gradient_plan(
    instance: BeagleInstance,
    gplan: GradientPlan,
    *,
    update_matrices: bool = True,
) -> float:
    """Run both sweeps and return the root log-likelihood.

    Order matters: the post-order pass first (filling every lower
    buffer and all branch matrices), then the merged pulley matrix, then
    the upper bank — seeds before level sets, parents before children.
    Afterwards :meth:`BeagleInstance.upper_partials` holds, for every
    non-root node, the far-side half-tree partials of its branch —
    bit-identical to what a rerooted per-edge evaluation computes.
    """
    obs = get_recorder()
    with obs.span(
        "gradient.sweep",
        category="plan",
        mode=gplan.mode,
        launches=gplan.n_launches,
        operations=gplan.n_operations,
    ):
        log_likelihood = execute_plan(
            instance, gplan.post, update_matrices=update_matrices
        )
        if update_matrices:
            instance.update_transition_matrices(
                0, [gplan.pulley_matrix], [gplan.pulley_length]
            )
        instance.enable_upper_partials()
        instance.invalidate_upper_partials()
        for destination, source in gplan.seeds:
            instance.seed_upper_partials(destination, source)
        for op_set in gplan.upper_operation_sets:
            instance.update_upper_partials_set(op_set)
    if obs.enabled:
        obs.count("repro_gradient_sweeps_total")
    return log_likelihood
