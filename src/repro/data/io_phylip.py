"""Relaxed PHYLIP reading and writing.

Supports the sequential relaxed-PHYLIP dialect used by RAxML and friends:
a header line with taxon and site counts, then one ``name sequence`` line
per taxon (whitespace-separated, names of any length).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, NoReturn, Union

from ..errors import ParseError
from .alignment import Alignment
from .alphabet import DNA, Alphabet

__all__ = [
    "read_phylip",
    "write_phylip",
    "parse_phylip",
    "format_phylip",
    "iter_phylip_sites",
]

PathLike = Union[str, Path]


def _fail(message: str, line: int) -> NoReturn:
    raise ParseError(message, source="PHYLIP", line=line)


def parse_phylip(text: str, alphabet: Alphabet = DNA) -> Alignment:
    """Parse relaxed sequential PHYLIP text into an :class:`Alignment`.

    Raises
    ------
    repro.errors.ParseError
        On a malformed header, wrong record count, malformed/duplicate
        records, out-of-alphabet symbols, or ragged rows (a record whose
        length disagrees with the header) — with the 1-based line (and,
        for bad symbols, column) of the offender.
    """
    lines = [
        (lineno, line)
        for lineno, line in enumerate(text.splitlines(), start=1)
        if line.strip()
    ]
    if not lines:
        raise ParseError("empty PHYLIP input", source="PHYLIP")
    header_lineno, header_line = lines[0]
    header = header_line.split()
    if len(header) != 2:
        _fail("PHYLIP header must be '<n_taxa> <n_sites>'", header_lineno)
    try:
        n_taxa, n_sites = int(header[0]), int(header[1])
    except ValueError:
        _fail("PHYLIP header must contain two integers", header_lineno)
    if n_taxa < 1:
        _fail("PHYLIP header needs at least one taxon", header_lineno)
    if n_sites < 0:
        _fail("PHYLIP header site count must be non-negative", header_lineno)
    records = lines[1:]
    if len(records) != n_taxa:
        _fail(
            f"expected {n_taxa} records, found {len(records)}",
            records[-1][0] if records else header_lineno,
        )
    sequences: Dict[str, str] = {}
    for lineno, line in records:
        parts = line.split(None, 1)
        if len(parts) != 2:
            _fail(f"malformed PHYLIP record: {line!r}", lineno)
        name, raw_seq = parts[0], parts[1]
        # Column of the first sequence character: skip leading
        # whitespace, the name token, and the separator run.
        # (str.find on the sequence text can land inside the name when
        # the two share characters, shifting reported columns.)
        seq_start = len(line) - len(line.lstrip()) + len(name)
        while seq_start < len(line) and line[seq_start].isspace():
            seq_start += 1
        seq = ""
        for idx, char in enumerate(raw_seq):
            if char == " ":
                continue
            symbol = char.upper()
            if symbol not in alphabet:
                raise ParseError(
                    f"symbol {char!r} in record {name!r} is not in "
                    f"alphabet {alphabet.name}",
                    source="PHYLIP",
                    line=lineno,
                    column=seq_start + idx + 1,
                )
            seq += symbol
        if len(seq) != n_sites:
            _fail(
                f"ragged alignment: record {name!r} has {len(seq)} sites, "
                f"header says {n_sites}",
                lineno,
            )
        if name in sequences:
            _fail(f"duplicate taxon {name!r}", lineno)
        sequences[name] = seq
    return Alignment(sequences, alphabet)


def format_phylip(alignment: Alignment) -> str:
    """Serialise an alignment as relaxed sequential PHYLIP."""
    name_width = max(len(name) for name in alignment.names) + 2
    out = [f"{alignment.n_taxa} {alignment.n_sites}"]
    for name, row in alignment:
        out.append(f"{name:<{name_width}}{''.join(row)}")
    return "\n".join(out) + "\n"


def read_phylip(path: PathLike, alphabet: Alphabet = DNA) -> Alignment:
    """Read a relaxed PHYLIP file into an :class:`Alignment`."""
    return parse_phylip(Path(path).read_text(), alphabet)


def write_phylip(alignment: Alignment, path: PathLike) -> None:
    """Write an alignment to a relaxed PHYLIP file."""
    Path(path).write_text(format_phylip(alignment))


def iter_phylip_sites(source, **kwargs):
    """Stream a PHYLIP alignment as site windows without materialising it.

    A thin format-bound wrapper over :func:`repro.data.streaming.
    iter_sites`: ``source`` is a path or a
    :class:`~repro.data.streaming.TextSource`, keyword arguments
    (``alphabet``, ``window``, ``read_size``) pass through. Malformed
    input raises the same :class:`~repro.errors.ParseError` — same line
    and column — as :func:`parse_phylip` would on the whole file.
    """
    from .streaming import iter_sites

    return iter_sites(source, "phylip", **kwargs)
