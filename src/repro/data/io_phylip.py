"""Relaxed PHYLIP reading and writing.

Supports the sequential relaxed-PHYLIP dialect used by RAxML and friends:
a header line with taxon and site counts, then one ``name sequence`` line
per taxon (whitespace-separated, names of any length).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from .alignment import Alignment
from .alphabet import DNA, Alphabet

__all__ = ["read_phylip", "write_phylip", "parse_phylip", "format_phylip"]

PathLike = Union[str, Path]


def parse_phylip(text: str, alphabet: Alphabet = DNA) -> Alignment:
    """Parse relaxed sequential PHYLIP text into an :class:`Alignment`."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty PHYLIP input")
    header = lines[0].split()
    if len(header) != 2:
        raise ValueError("PHYLIP header must be '<n_taxa> <n_sites>'")
    try:
        n_taxa, n_sites = int(header[0]), int(header[1])
    except ValueError:
        raise ValueError("PHYLIP header must contain two integers") from None
    records = lines[1:]
    if len(records) != n_taxa:
        raise ValueError(f"expected {n_taxa} records, found {len(records)}")
    sequences: Dict[str, str] = {}
    for line in records:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise ValueError(f"malformed PHYLIP record: {line!r}")
        name, seq = parts[0], parts[1].replace(" ", "").upper()
        if len(seq) != n_sites:
            raise ValueError(
                f"record {name!r} has {len(seq)} sites, header says {n_sites}"
            )
        if name in sequences:
            raise ValueError(f"duplicate taxon {name!r}")
        sequences[name] = seq
    return Alignment(sequences, alphabet)


def format_phylip(alignment: Alignment) -> str:
    """Serialise an alignment as relaxed sequential PHYLIP."""
    name_width = max(len(name) for name in alignment.names) + 2
    out = [f"{alignment.n_taxa} {alignment.n_sites}"]
    for name, row in alignment:
        out.append(f"{name:<{name_width}}{''.join(row)}")
    return "\n".join(out) + "\n"


def read_phylip(path: PathLike, alphabet: Alphabet = DNA) -> Alignment:
    """Read a relaxed PHYLIP file into an :class:`Alignment`."""
    return parse_phylip(Path(path).read_text(), alphabet)


def write_phylip(alignment: Alignment, path: PathLike) -> None:
    """Write an alignment to a relaxed PHYLIP file."""
    Path(path).write_text(format_phylip(alignment))
