"""FASTA reading and writing."""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Union

from .alignment import Alignment
from .alphabet import DNA, Alphabet

__all__ = ["read_fasta", "write_fasta", "parse_fasta", "format_fasta"]

PathLike = Union[str, Path]


def parse_fasta(text: str, alphabet: Alphabet = DNA) -> Alignment:
    """Parse FASTA-formatted text into an :class:`Alignment`.

    Sequence symbols are upper-cased; the header is everything after
    ``>`` up to the first whitespace.
    """
    sequences: Dict[str, str] = {}
    name = None
    chunks: list[str] = []
    for raw in io.StringIO(text):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                sequences[name] = "".join(chunks)
            name = line[1:].split()[0] if len(line) > 1 else ""
            if not name:
                raise ValueError("FASTA record with empty name")
            if name in sequences:
                raise ValueError(f"duplicate FASTA record {name!r}")
            chunks = []
        else:
            if name is None:
                raise ValueError("sequence data before first FASTA header")
            chunks.append(line.upper())
    if name is not None:
        sequences[name] = "".join(chunks)
    if not sequences:
        raise ValueError("no FASTA records found")
    return Alignment(sequences, alphabet)


def format_fasta(alignment: Alignment, *, width: int = 70) -> str:
    """Serialise an alignment as FASTA text with wrapped lines."""
    out: list[str] = []
    for name, row in alignment:
        out.append(f">{name}")
        seq = "".join(row)
        for start in range(0, len(seq), width):
            out.append(seq[start : start + width])
    return "\n".join(out) + "\n"


def read_fasta(path: PathLike, alphabet: Alphabet = DNA) -> Alignment:
    """Read a FASTA file into an :class:`Alignment`."""
    return parse_fasta(Path(path).read_text(), alphabet)


def write_fasta(alignment: Alignment, path: PathLike, *, width: int = 70) -> None:
    """Write an alignment to a FASTA file."""
    Path(path).write_text(format_fasta(alignment, width=width))
