"""FASTA reading and writing.

Malformed input raises :class:`~repro.errors.ParseError` (a
``ValueError``) carrying the 1-based line number of the offending
record.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, NoReturn, Union

from ..errors import ParseError
from .alignment import Alignment
from .alphabet import DNA, Alphabet

__all__ = [
    "read_fasta",
    "write_fasta",
    "parse_fasta",
    "format_fasta",
    "iter_fasta_sites",
]

PathLike = Union[str, Path]


def _fail(message: str, line: int) -> NoReturn:
    raise ParseError(message, source="FASTA", line=line)


def _check_symbols(
    raw: str, stripped: str, lineno: int, alphabet: Alphabet
) -> None:
    """Reject out-of-alphabet symbols with the exact line and column.

    ``stripped`` is the upper-cased, whitespace-stripped sequence chunk;
    the column is computed against the raw input line so it points at the
    offending character as typed.
    """
    offset = len(raw) - len(raw.lstrip())
    for idx, symbol in enumerate(stripped):
        if symbol not in alphabet:
            raise ParseError(
                f"symbol {symbol!r} is not in alphabet {alphabet.name}",
                source="FASTA",
                line=lineno,
                column=offset + idx + 1,
            )


def parse_fasta(text: str, alphabet: Alphabet = DNA) -> Alignment:
    """Parse FASTA-formatted text into an :class:`Alignment`.

    Sequence symbols are upper-cased; the header is everything after
    ``>`` up to the first whitespace.

    Raises
    ------
    repro.errors.ParseError
        On empty or duplicate record names, sequence data before the
        first header, no records at all, out-of-alphabet symbols, or a
        ragged alignment — with the line (and, for bad symbols, column)
        of the offender.
    """
    sequences: Dict[str, str] = {}
    header_lines: Dict[str, int] = {}
    name = None
    chunks: list[str] = []
    for lineno, raw in enumerate(io.StringIO(text), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                sequences[name] = "".join(chunks)
            name = line[1:].split()[0] if len(line) > 1 else ""
            if not name:
                _fail("FASTA record with empty name", lineno)
            if name in sequences:
                _fail(f"duplicate FASTA record {name!r}", lineno)
            header_lines[name] = lineno
            chunks = []
        else:
            if name is None:
                _fail("sequence data before first FASTA header", lineno)
            chunk = line.upper()
            _check_symbols(raw, chunk, lineno, alphabet)
            chunks.append(chunk)
    if name is not None:
        sequences[name] = "".join(chunks)
    if not sequences:
        raise ParseError("no FASTA records found", source="FASTA")
    lengths = {name: len(seq) for name, seq in sequences.items()}
    if len(set(lengths.values())) > 1:
        first_name = next(iter(sequences))
        offender = next(
            name
            for name, length in lengths.items()
            if length != lengths[first_name]
        )
        _fail(
            f"ragged alignment: record {offender!r} has {lengths[offender]} "
            f"sites, {first_name!r} has {lengths[first_name]}",
            header_lines[offender],
        )
    return Alignment(sequences, alphabet)


def format_fasta(alignment: Alignment, *, width: int = 70) -> str:
    """Serialise an alignment as FASTA text with wrapped lines."""
    out: list[str] = []
    for name, row in alignment:
        out.append(f">{name}")
        seq = "".join(row)
        for start in range(0, len(seq), width):
            out.append(seq[start : start + width])
    return "\n".join(out) + "\n"


def read_fasta(path: PathLike, alphabet: Alphabet = DNA) -> Alignment:
    """Read a FASTA file into an :class:`Alignment`."""
    return parse_fasta(Path(path).read_text(), alphabet)


def write_fasta(alignment: Alignment, path: PathLike, *, width: int = 70) -> None:
    """Write an alignment to a FASTA file."""
    Path(path).write_text(format_fasta(alignment, width=width))


def iter_fasta_sites(source, **kwargs):
    """Stream a FASTA alignment as site windows without materialising it.

    A thin format-bound wrapper over :func:`repro.data.streaming.
    iter_sites`: ``source`` is a path or a
    :class:`~repro.data.streaming.TextSource`, keyword arguments
    (``alphabet``, ``window``, ``read_size``) pass through. Malformed
    input raises the same :class:`~repro.errors.ParseError` — same line
    and column — as :func:`parse_fasta` would on the whole file.
    """
    from .streaming import iter_sites

    return iter_sites(source, "fasta", **kwargs)
