"""Sequence simulation along a tree.

Evolves characters down a tree under any substitution model that provides
``frequencies`` (stationary distribution) and ``transition_matrix(t)``
(see :mod:`repro.models`): the root state of each site is drawn from the
stationary distribution and each branch applies a draw from the relevant
row of ``P(t)``. Supports per-site rate multipliers (discrete-Γ rate
heterogeneity) by scaling branch lengths per site class.

This is the principled counterpart of ``synthetictest``'s uniform random
data (:func:`repro.data.patterns.random_patterns`): simulated alignments
carry real phylogenetic signal, which the inference examples need.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Sequence

import numpy as np

from ..trees import Tree
from .alignment import Alignment
from .alphabet import Alphabet

__all__ = ["SubstitutionProcess", "simulate_alignment", "simulate_states"]


class SubstitutionProcess(Protocol):
    """Duck type required of models used for simulation."""

    alphabet: Alphabet

    @property
    def frequencies(self) -> np.ndarray: ...

    def transition_matrix(self, t: float) -> np.ndarray: ...


def simulate_states(
    tree: Tree,
    model: SubstitutionProcess,
    n_sites: int,
    *,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    site_rates: Optional[Sequence[float]] = None,
) -> Dict[str, np.ndarray]:
    """Simulate integer state sequences for every tip.

    Parameters
    ----------
    site_rates:
        Optional per-site rate multipliers (length ``n_sites``). A branch
        of length ``t`` uses ``P(rate * t)`` at each site, which is how
        discrete-Γ heterogeneity enters simulation.

    Returns
    -------
    dict
        ``tip name -> (n_sites,) int array`` of state indices.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    if n_sites < 1:
        raise ValueError("need at least one site")
    rates = np.ones(n_sites) if site_rates is None else np.asarray(site_rates, float)
    if rates.shape != (n_sites,):
        raise ValueError("site_rates must have length n_sites")
    if np.any(rates < 0):
        raise ValueError("site rates must be non-negative")

    freqs = np.asarray(model.frequencies, float)
    s = freqs.shape[0]
    states: Dict[int, np.ndarray] = {}
    root_states = rng.choice(s, size=n_sites, p=freqs / freqs.sum())
    states[id(tree.root)] = root_states

    unique_rates = np.unique(rates)
    rate_sites = {r: np.flatnonzero(rates == r) for r in unique_rates}

    for node in tree.root.traverse_preorder():
        if node.parent is None:
            continue
        parent_states = states[id(node.parent)]
        child_states = np.empty(n_sites, dtype=np.int64)
        for rate, sites in rate_sites.items():
            matrix = model.transition_matrix(rate * node.length)
            # Vectorised categorical draw per site: compare a uniform
            # against the CDF of the parent-state row.
            rows = matrix[parent_states[sites]]
            cdf = np.cumsum(rows, axis=1)
            u = rng.random(len(sites))[:, None]
            child_states[sites] = (u > cdf).sum(axis=1)
        states[id(node)] = child_states

    return {tip.name: states[id(tip)] for tip in tree.tips()}


def simulate_alignment(
    tree: Tree,
    model: SubstitutionProcess,
    n_sites: int,
    *,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    site_rates: Optional[Sequence[float]] = None,
) -> Alignment:
    """Simulate an :class:`Alignment` of symbol sequences for every tip."""
    tip_states = simulate_states(
        tree, model, n_sites, rng=rng, seed=seed, site_rates=site_rates
    )
    alphabet = model.alphabet
    sequences = {
        name: tuple(alphabet.states[i] for i in row) for name, row in tip_states.items()
    }
    return Alignment(sequences, alphabet)
