"""Multiple sequence alignments.

An :class:`Alignment` is an ordered mapping from taxon name to a symbol
sequence over a shared :class:`~repro.data.alphabet.Alphabet`. Sequences
for codon alphabets are stored as tuples of 3-letter codon symbols; DNA and
protein sequences as plain strings.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from .alphabet import DNA, Alphabet

__all__ = [
    "Alignment",
    "concatenate",
    "site_variability",
    "proportion_variable_sites",
]


class Alignment:
    """An aligned set of equal-length sequences.

    Parameters
    ----------
    sequences:
        Mapping from taxon name to sequence. Every sequence must have the
        same length and contain only symbols of ``alphabet``.
    alphabet:
        Shared alphabet; defaults to DNA.
    """

    def __init__(
        self,
        sequences: Mapping[str, Sequence[str]],
        alphabet: Alphabet = DNA,
    ) -> None:
        if not sequences:
            raise ValueError("alignment needs at least one sequence")
        self.alphabet = alphabet
        self._names: List[str] = list(sequences)
        self._rows: List[Tuple[str, ...]] = []
        length = None
        for name in self._names:
            row = tuple(sequences[name])
            if length is None:
                length = len(row)
            elif len(row) != length:
                raise ValueError(
                    f"sequence {name!r} has length {len(row)}, expected {length}"
                )
            for symbol in row:
                if symbol not in alphabet:
                    raise ValueError(
                        f"symbol {symbol!r} in sequence {name!r} is not in "
                        f"alphabet {alphabet.name}"
                    )
            self._rows.append(row)
        assert length is not None
        self._length = length

    # ------------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        """Taxon names in insertion order."""
        return list(self._names)

    @property
    def n_taxa(self) -> int:
        """Number of sequences."""
        return len(self._names)

    @property
    def n_sites(self) -> int:
        """Alignment length in sites."""
        return self._length

    def sequence(self, name: str) -> Tuple[str, ...]:
        """The symbol tuple for one taxon."""
        try:
            return self._rows[self._names.index(name)]
        except ValueError:
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[Tuple[str, Tuple[str, ...]]]:
        return iter(zip(self._names, self._rows))

    def column(self, site: int) -> Tuple[str, ...]:
        """Symbols of every taxon at one site."""
        if not 0 <= site < self._length:
            raise IndexError(site)
        return tuple(row[site] for row in self._rows)

    def columns(self) -> Iterator[Tuple[str, ...]]:
        """Iterate over all alignment columns in site order."""
        for site in range(self._length):
            yield self.column(site)

    # ------------------------------------------------------------------
    def encoded(self) -> np.ndarray:
        """``(n_taxa, n_sites)`` compact integer codes (ambiguity -> s)."""
        return np.stack([self.alphabet.encode(row) for row in self._rows])

    def has_ambiguity(self) -> bool:
        """True when any sequence contains an ambiguity code or gap."""
        return any(
            self.alphabet.is_ambiguous(symbol) for row in self._rows for symbol in row
        )

    def taxon_subset(self, names: Sequence[str]) -> "Alignment":
        """A new alignment restricted to (and reordered by) ``names``."""
        data: Dict[str, Tuple[str, ...]] = {}
        for name in names:
            data[name] = self.sequence(name)
        return Alignment(data, self.alphabet)

    def site_subset(self, sites: Sequence[int]) -> "Alignment":
        """A new alignment keeping only the given site indices, in order."""
        data = {
            name: tuple(row[i] for i in sites) for name, row in zip(self._names, self._rows)
        }
        return Alignment(data, self.alphabet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Alignment taxa={self.n_taxa} sites={self.n_sites} "
            f"alphabet={self.alphabet.name}>"
        )


def concatenate(alignments: "Sequence[Alignment]") -> "Alignment":
    """Concatenate alignments sharing one taxon set (a supermatrix).

    The usual multi-gene workflow: per-gene alignments joined site-wise.
    Taxon order follows the first alignment; all inputs must share the
    same alphabet and taxon set.
    """
    if not alignments:
        raise ValueError("need at least one alignment")
    first = alignments[0]
    taxa = first.names
    for other in alignments[1:]:
        if set(other.names) != set(taxa):
            raise ValueError("all alignments must share the same taxon set")
        if other.alphabet is not first.alphabet:
            raise ValueError("all alignments must share one alphabet")
    data = {
        name: tuple(
            symbol for aln in alignments for symbol in aln.sequence(name)
        )
        for name in taxa
    }
    return Alignment(data, first.alphabet)


def site_variability(alignment: "Alignment") -> "np.ndarray":
    """Per-site count of distinct unambiguous states (1 = constant site)."""
    counts = []
    alphabet = alignment.alphabet
    for column in alignment.columns():
        observed = {
            symbol for symbol in column if not alphabet.is_ambiguous(symbol)
        }
        counts.append(len(observed))
    return np.asarray(counts)


def proportion_variable_sites(alignment: "Alignment") -> float:
    """Fraction of sites with more than one unambiguous state observed."""
    variability = site_variability(alignment)
    return float(np.mean(variability > 1))
