"""Site-pattern compression and synthetic pattern generation.

Likelihood cost scales with the number of *unique* site patterns, not raw
sites (paper §II-A: complexity ``O(p × s² × n)`` in the pattern count
``p``). :func:`compress` collapses identical alignment columns into one
weighted pattern; :func:`random_patterns` generates synthetic data the way
the BEAGLE ``synthetictest`` program does (uniform random states), which by
construction yields (almost) all-unique patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .alignment import Alignment
from .alphabet import DNA, Alphabet

__all__ = [
    "PatternData",
    "PatternAccumulator",
    "compress",
    "random_patterns",
    "slice_patterns",
]


@dataclass(frozen=True)
class PatternData:
    """Compressed site patterns ready for the likelihood engine.

    Attributes
    ----------
    taxa:
        Taxon names, in the row order of ``codes``.
    codes:
        ``(n_taxa, n_patterns)`` compact state codes; the value
        ``n_states`` marks an ambiguous/unknown character (BEAGLE's
        convention for tip-state buffers).
    weights:
        ``(n_patterns,)`` multiplicities: how many alignment columns each
        pattern represents. ``weights.sum()`` equals the original site
        count.
    alphabet:
        The shared alphabet.
    partials:
        Optional per-taxon tip partials ``(n_patterns, n_states)``, present
        only for taxa that contain *partial* ambiguity codes (e.g. IUPAC
        ``R``): a compact code cannot represent those exactly.
    """

    taxa: Tuple[str, ...]
    codes: np.ndarray
    weights: np.ndarray
    alphabet: Alphabet
    partials: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def n_taxa(self) -> int:
        """Number of taxa."""
        return len(self.taxa)

    @property
    def n_patterns(self) -> int:
        """Number of unique site patterns."""
        return int(self.codes.shape[1])

    @property
    def n_sites(self) -> int:
        """Total sites represented (sum of pattern weights)."""
        return int(self.weights.sum())

    def tip_partials(self, taxon: str) -> np.ndarray:
        """``(n_patterns, n_states)`` partial matrix for one taxon.

        Exact for every taxon: taxa with partial-ambiguity codes use the
        stored matrix; the rest are expanded from compact codes.
        """
        if taxon in self.partials:
            return self.partials[taxon].copy()
        row = self.codes[self.taxa.index(taxon)]
        s = self.alphabet.n_states
        out = np.zeros((self.n_patterns, s))
        known = row < s
        out[np.arange(self.n_patterns)[known], row[known]] = 1.0
        out[~known] = 1.0
        return out

    def tip_codes(self, taxon: str) -> np.ndarray:
        """Compact state-code vector for one taxon."""
        return self.codes[self.taxa.index(taxon)].copy()


def compress(alignment: Alignment) -> PatternData:
    """Collapse identical columns of ``alignment`` into weighted patterns.

    Column identity is symbol-exact: a column ``(A, R)`` differs from
    ``(A, G)`` even though ``R`` includes ``G``. Pattern order follows
    first occurrence in the alignment, so results are deterministic.
    """
    seen: Dict[Tuple[str, ...], int] = {}
    order: List[Tuple[str, ...]] = []
    weights: List[int] = []
    for column in alignment.columns():
        idx = seen.get(column)
        if idx is None:
            seen[column] = len(order)
            order.append(column)
            weights.append(1)
        else:
            weights[idx] += 1

    alphabet = alignment.alphabet
    n_patterns = len(order)
    codes = np.empty((alignment.n_taxa, n_patterns), dtype=np.int32)
    for p, column in enumerate(order):
        for t, symbol in enumerate(column):
            codes[t, p] = alphabet.code(symbol)

    partials: Dict[str, np.ndarray] = {}
    for t, name in enumerate(alignment.names):
        symbols = [column[t] for column in order]
        # Partial (non-total) ambiguity needs an explicit partials matrix.
        needs_partials = any(
            alphabet.is_ambiguous(sym) and not np.all(alphabet.partial(sym) == 1.0)
            for sym in set(symbols)
        )
        if needs_partials:
            partials[name] = np.stack([alphabet.partial(sym) for sym in symbols])

    return PatternData(
        taxa=tuple(alignment.names),
        codes=codes,
        weights=np.asarray(weights, dtype=np.float64),
        alphabet=alphabet,
        partials=partials,
    )


class PatternAccumulator:
    """Incremental site-pattern compression for streamed alignments.

    Feed site columns chunk by chunk (e.g. :class:`~repro.data.streaming.
    SiteChunk` windows from :func:`~repro.data.streaming.iter_sites`) and
    call :meth:`finish` once. The result is *identical* to
    ``compress(alignment)`` on the fully materialised alignment — same
    first-occurrence pattern order, same weights, same codes, same
    per-taxon partials — but peak memory is the compressed pattern table,
    never the raw ``n_taxa × n_sites`` matrix.
    """

    def __init__(self, taxa: Sequence[str], alphabet: Alphabet = DNA) -> None:
        if len(taxa) < 1:
            raise ValueError("need at least one taxon")
        if len(set(taxa)) != len(taxa):
            raise ValueError("duplicate taxon names")
        self.taxa = tuple(taxa)
        self.alphabet = alphabet
        self._seen: Dict[Tuple[str, ...], int] = {}
        self._order: List[Tuple[str, ...]] = []
        self._weights: List[int] = []

    @property
    def n_patterns(self) -> int:
        """Unique patterns accumulated so far."""
        return len(self._order)

    @property
    def n_sites(self) -> int:
        """Total columns accumulated so far."""
        return int(sum(self._weights))

    def add_columns(self, columns) -> None:
        """Fold an iterable of symbol-tuple columns into the table.

        Each column must have one symbol per taxon, in ``self.taxa``
        order (chunk rows are validated by :meth:`add_chunk`).
        """
        n_taxa = len(self.taxa)
        for column in columns:
            if len(column) != n_taxa:
                raise ValueError(
                    f"column has {len(column)} symbols, expected {n_taxa}"
                )
            idx = self._seen.get(column)
            if idx is None:
                self._seen[column] = len(self._order)
                self._order.append(column)
                self._weights.append(1)
            else:
                self._weights[idx] += 1

    def add_chunk(self, chunk) -> None:
        """Fold one :class:`~repro.data.streaming.SiteChunk` in."""
        if chunk.taxa != self.taxa:
            raise ValueError(
                f"chunk taxa {chunk.taxa!r} do not match accumulator "
                f"taxa {self.taxa!r}"
            )
        self.add_columns(chunk.columns())

    def finish(self) -> PatternData:
        """The accumulated table as :class:`PatternData`.

        Exactly what ``compress`` would have produced for the same
        columns in the same order. The accumulator stays usable — more
        chunks may be added and ``finish`` called again.
        """
        if not self._order:
            raise ValueError("no site columns accumulated")
        alphabet = self.alphabet
        n_patterns = len(self._order)
        codes = np.empty((len(self.taxa), n_patterns), dtype=np.int32)
        for p, column in enumerate(self._order):
            for t, symbol in enumerate(column):
                codes[t, p] = alphabet.code(symbol)
        partials: Dict[str, np.ndarray] = {}
        for t, name in enumerate(self.taxa):
            symbols = [column[t] for column in self._order]
            needs_partials = any(
                alphabet.is_ambiguous(sym)
                and not np.all(alphabet.partial(sym) == 1.0)
                for sym in set(symbols)
            )
            if needs_partials:
                partials[name] = np.stack(
                    [alphabet.partial(sym) for sym in symbols]
                )
        return PatternData(
            taxa=self.taxa,
            codes=codes,
            weights=np.asarray(self._weights, dtype=np.float64),
            alphabet=alphabet,
            partials=partials,
        )


def slice_patterns(patterns: PatternData, start: int, stop: int) -> PatternData:
    """The contiguous pattern range ``[start, stop)`` as new ``PatternData``.

    Rows (taxa), the alphabet, and per-pattern weights are preserved;
    per-taxon partials matrices are sliced along the pattern axis. Arrays
    are copied so the slice owns its memory — a sharded evaluation can
    release the full matrix while shards are in flight.
    """
    if not 0 <= start < stop <= patterns.n_patterns:
        raise ValueError(
            f"invalid pattern slice [{start}, {stop}) of {patterns.n_patterns}"
        )
    return PatternData(
        taxa=patterns.taxa,
        codes=np.ascontiguousarray(patterns.codes[:, start:stop]),
        weights=patterns.weights[start:stop].copy(),
        alphabet=patterns.alphabet,
        partials={
            name: np.ascontiguousarray(arr[start:stop])
            for name, arr in patterns.partials.items()
        },
    )


def random_patterns(
    taxa: Sequence[str],
    n_patterns: int,
    *,
    alphabet: Alphabet = DNA,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> PatternData:
    """Uniform-random unique site patterns, ``synthetictest`` style.

    Every pattern gets weight 1 (the paper benchmarks "unique site
    patterns"), and states are drawn uniformly; with 4 states and many taxa
    collisions are vanishingly rare, matching the test program's behaviour
    of treating each generated column as a distinct pattern.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    n_taxa = len(taxa)
    if n_taxa < 1:
        raise ValueError("need at least one taxon")
    if n_patterns < 1:
        raise ValueError("need at least one pattern")
    codes = rng.integers(0, alphabet.n_states, size=(n_taxa, n_patterns)).astype(
        np.int32
    )
    return PatternData(
        taxa=tuple(taxa),
        codes=codes,
        weights=np.ones(n_patterns),
        alphabet=alphabet,
    )
