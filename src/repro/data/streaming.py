"""Chunked streaming alignment IO: site windows without the full matrix.

Genome-scale alignments do not fit the ``read → parse → compress``
pipeline, which materialises the whole ``n_taxa × n_sites`` character
matrix before compressing it. This module streams instead:

**Pass 1 — validation scan.** The source is read in bounded chunks
(never the whole file) through an incremental line assembler, and every
validation rule of :func:`~repro.data.io_fasta.parse_fasta` /
:func:`~repro.data.io_phylip.parse_phylip` is replayed line by line —
same checks, same order — so a malformed input raises a
:class:`~repro.errors.ParseError` with the *identical* line and column
the whole-file parser would report, no matter how the reads were
chunked (the property ``tests/property/test_parser_fuzz.py`` enforces).
The scan keeps no sequence data; it records, per taxon, the list of
``(offset, length)`` character segments holding its residues — memory
proportional to the number of sequence *lines*, not sites.

**Pass 2 — site windows.** :func:`iter_sites` then walks the segment
index with monotone per-taxon cursors, reading each window's characters
directly from the (seekable) source and yielding :class:`SiteChunk`
blocks of at most ``window`` columns. Peak memory is
``O(n_taxa × window)`` plus the segment index — the full matrix never
exists.

Files are read as bytes and decoded latin-1 (one byte per character, so
segment offsets are byte offsets); in-memory text is wrapped in
:class:`TextSource` and indexed by character. Feed the chunks to
:class:`~repro.data.patterns.PatternAccumulator` for incremental
compression.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..errors import ParseError
from .alphabet import DNA, Alphabet

__all__ = [
    "SiteChunk",
    "TextSource",
    "iter_sites",
    "DEFAULT_WINDOW",
    "DEFAULT_READ_SIZE",
]

#: Site columns per yielded :class:`SiteChunk`.
DEFAULT_WINDOW = 4096

#: Characters per pass-1 read.
DEFAULT_READ_SIZE = 65536

#: Line-break characters of ``str.splitlines`` (PHYLIP parsing uses
#: ``splitlines``; ``\r\n`` counts as a single break).
_SPLITLINES_BREAKS = frozenset(
    "\n\r\v\f\x1c\x1d\x1e\x85\u2028\u2029"
)

ReadSizes = Union[int, Iterable[int]]


@dataclass(frozen=True)
class SiteChunk:
    """One window of alignment columns, all taxa.

    ``rows[t]`` holds taxon ``taxa[t]``'s residues for sites
    ``[start, stop)`` — upper-cased, whitespace removed, exactly the
    symbols the whole-file parser would have stored.
    """

    taxa: Tuple[str, ...]
    rows: Tuple[str, ...]
    start: int
    stop: int

    @property
    def n_sites(self) -> int:
        """Columns in this chunk."""
        return self.stop - self.start

    def columns(self) -> Iterator[Tuple[str, ...]]:
        """Iterate the chunk's site columns as symbol tuples."""
        for j in range(self.stop - self.start):
            yield tuple(row[j] for row in self.rows)


class TextSource:
    """In-memory text as a streaming source (tests, fuzzing, pipes)."""

    def __init__(self, text: str) -> None:
        self.text = text

    def chunks(self, read_sizes: ReadSizes) -> Iterator[str]:
        """Yield the text in successive chunks of the requested sizes."""
        pos = 0
        for size in _size_stream(read_sizes):
            if pos >= len(self.text):
                return
            yield self.text[pos : pos + size]
            pos += size

    def read_at(self, offset: int, length: int) -> str:
        """Random access for pass 2."""
        return self.text[offset : offset + length]

    def close(self) -> None:
        """Nothing to release."""


class _FileSource:
    """A file on disk, read as latin-1 so offsets are byte offsets."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._handle: Optional[io.BufferedReader] = None

    def _open(self) -> io.BufferedReader:
        if self._handle is None:
            self._handle = open(self.path, "rb")
        return self._handle

    def chunks(self, read_sizes: ReadSizes) -> Iterator[str]:
        handle = self._open()
        handle.seek(0)
        for size in _size_stream(read_sizes):
            data = handle.read(size)
            if not data:
                return
            yield data.decode("latin-1")

    def read_at(self, offset: int, length: int) -> str:
        handle = self._open()
        handle.seek(offset)
        return handle.read(length).decode("latin-1")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _size_stream(read_sizes: ReadSizes) -> Iterator[int]:
    """Endless stream of positive read sizes; a finite sequence repeats
    its last element (fuzzing hands in arbitrary chunk schedules)."""
    if isinstance(read_sizes, int):
        if read_sizes < 1:
            raise ValueError("read size must be positive")
        while True:
            yield read_sizes
    else:
        last = DEFAULT_READ_SIZE
        for size in read_sizes:
            if size < 1:
                raise ValueError("read size must be positive")
            last = size
            yield size
        while True:
            yield last


def _coerce_source(source) -> Tuple[Union[TextSource, _FileSource], bool]:
    """Returns ``(source, owned)``; owned sources are closed by us."""
    if isinstance(source, TextSource):
        return source, False
    if isinstance(source, (str, Path)):
        return _FileSource(source), True
    raise TypeError(
        "source must be a path or a TextSource, "
        f"got {type(source).__name__}"
    )


# ---------------------------------------------------------------------
# Incremental line assembly
# ---------------------------------------------------------------------
def _lines_newline_only(
    chunks: Iterator[str],
) -> Iterator[Tuple[int, int, str]]:
    """``(lineno, char_offset, raw_line)`` splitting on ``\\n`` only —
    the iteration semantics of ``io.StringIO`` that ``parse_fasta``
    uses. ``raw_line`` keeps its terminator; the final line may lack
    one."""
    buffer = ""
    offset = 0
    lineno = 0
    for chunk in chunks:
        buffer += chunk
        while True:
            cut = buffer.find("\n")
            if cut < 0:
                break
            lineno += 1
            yield lineno, offset, buffer[: cut + 1]
            offset += cut + 1
            buffer = buffer[cut + 1 :]
    if buffer:
        lineno += 1
        yield lineno, offset, buffer


def _lines_splitlines(
    chunks: Iterator[str],
) -> Iterator[Tuple[int, int, str]]:
    """``(lineno, char_offset, line)`` with ``str.splitlines`` break
    semantics (``parse_phylip`` uses ``splitlines``): every break
    character ends a line, ``\\r\\n`` counts once, and lines are
    yielded *without* their terminator."""
    buffer = ""
    offset = 0
    lineno = 0
    pending_cr = False  # a chunk ended exactly on '\r'
    for chunk in chunks:
        if pending_cr:
            # Decide whether that '\r' was half of a '\r\n'.
            if chunk.startswith("\n"):
                offset += 1
                chunk = chunk[1:]
            pending_cr = False
            if not chunk:
                continue
        i = 0
        start = 0
        n = len(chunk)
        while i < n:
            ch = chunk[i]
            if ch not in _SPLITLINES_BREAKS:
                i += 1
                continue
            lineno += 1
            yield lineno, offset, buffer + chunk[start:i]
            consumed = len(buffer) + (i - start) + 1
            if ch == "\r":
                if i + 1 < n:
                    if chunk[i + 1] == "\n":
                        consumed += 1
                        i += 1
                else:
                    pending_cr = True
            offset += consumed
            buffer = ""
            i += 1
            start = i
        buffer += chunk[start:]
    if buffer:
        lineno += 1
        yield lineno, offset, buffer


# ---------------------------------------------------------------------
# Pass 1 — FASTA validation scan
# ---------------------------------------------------------------------
@dataclass
class _ScanResult:
    """Everything pass 2 needs: taxa order and their residue segments."""

    taxa: List[str]
    segments: Dict[str, List[Tuple[int, int]]]
    n_sites: int


def _fasta_fail(message: str, line: int):
    raise ParseError(message, source="FASTA", line=line)


def _scan_fasta(
    lines: Iterator[Tuple[int, int, str]], alphabet: Alphabet
) -> _ScanResult:
    """Replay every ``parse_fasta`` check without keeping sequences."""
    seen: Dict[str, int] = {}  # completed records -> header line
    lengths: Dict[str, int] = {}
    segments: Dict[str, List[Tuple[int, int]]] = {}
    taxa: List[str] = []
    name: Optional[str] = None
    header_line = 0

    def complete() -> None:
        if name is not None:
            seen[name] = header_line
    for lineno, line_offset, raw in lines:
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            complete()
            name = line[1:].split()[0] if len(line) > 1 else ""
            if not name:
                _fasta_fail("FASTA record with empty name", lineno)
            if name in seen:
                _fasta_fail(f"duplicate FASTA record {name!r}", lineno)
            header_line = lineno
            taxa.append(name)
            lengths[name] = 0
            segments[name] = []
        else:
            if name is None:
                _fasta_fail(
                    "sequence data before first FASTA header", lineno
                )
            chunk = line.upper()
            offset = len(raw) - len(raw.lstrip())
            for idx, symbol in enumerate(chunk):
                if symbol not in alphabet:
                    raise ParseError(
                        f"symbol {symbol!r} is not in alphabet "
                        f"{alphabet.name}",
                        source="FASTA",
                        line=lineno,
                        column=offset + idx + 1,
                    )
            segments[name].append((line_offset + offset, len(chunk)))
            lengths[name] += len(chunk)
    complete()
    if not taxa:
        raise ParseError("no FASTA records found", source="FASTA")
    first_name = taxa[0]
    for taxon in taxa:
        if lengths[taxon] != lengths[first_name]:
            _fasta_fail(
                f"ragged alignment: record {taxon!r} has "
                f"{lengths[taxon]} sites, {first_name!r} has "
                f"{lengths[first_name]}",
                seen[taxon],
            )
    return _ScanResult(taxa, segments, lengths[first_name])


# ---------------------------------------------------------------------
# Pass 1 — PHYLIP validation scan
# ---------------------------------------------------------------------
def _phylip_fail(message: str, line: int):
    raise ParseError(message, source="PHYLIP", line=line)


def _scan_phylip(
    source: Union[TextSource, _FileSource],
    read_sizes: ReadSizes,
    alphabet: Alphabet,
) -> _ScanResult:
    """Replay every ``parse_phylip`` check without keeping sequences.

    ``parse_phylip`` verifies the record *count* before validating any
    record, so the scan makes two sub-passes: a cheap count of non-blank
    lines (content discarded), then per-record validation in order.
    """
    header_lineno = 0
    header_line = ""
    n_records = 0
    last_lineno = 0
    for lineno, _, line in _lines_splitlines(source.chunks(read_sizes)):
        if not line.strip():
            continue
        if header_lineno == 0:
            header_lineno, header_line = lineno, line
        else:
            n_records += 1
        last_lineno = lineno
    if header_lineno == 0:
        raise ParseError("empty PHYLIP input", source="PHYLIP")
    header = header_line.split()
    if len(header) != 2:
        _phylip_fail(
            "PHYLIP header must be '<n_taxa> <n_sites>'", header_lineno
        )
    try:
        n_taxa, n_sites = int(header[0]), int(header[1])
    except ValueError:
        _phylip_fail(
            "PHYLIP header must contain two integers", header_lineno
        )
    if n_taxa < 1:
        _phylip_fail("PHYLIP header needs at least one taxon", header_lineno)
    if n_sites < 0:
        _phylip_fail(
            "PHYLIP header site count must be non-negative", header_lineno
        )
    if n_records != n_taxa:
        _phylip_fail(
            f"expected {n_taxa} records, found {n_records}",
            last_lineno if n_records else header_lineno,
        )

    taxa: List[str] = []
    segments: Dict[str, List[Tuple[int, int]]] = {}
    past_header = False
    for lineno, line_offset, line in _lines_splitlines(
        source.chunks(read_sizes)
    ):
        if not line.strip():
            continue
        if not past_header:
            past_header = True
            continue
        parts = line.split(None, 1)
        if len(parts) != 2:
            _phylip_fail(f"malformed PHYLIP record: {line!r}", lineno)
        name, raw_seq = parts[0], parts[1]
        seq_start = len(line) - len(line.lstrip()) + len(name)
        while seq_start < len(line) and line[seq_start].isspace():
            seq_start += 1
        count = 0
        run_start: Optional[int] = None
        record_segments: List[Tuple[int, int]] = []
        for idx, char in enumerate(raw_seq):
            if char == " ":
                if run_start is not None:
                    record_segments.append(
                        (
                            line_offset + seq_start + run_start,
                            idx - run_start,
                        )
                    )
                    run_start = None
                continue
            symbol = char.upper()
            if symbol not in alphabet:
                raise ParseError(
                    f"symbol {char!r} in record {name!r} is not in "
                    f"alphabet {alphabet.name}",
                    source="PHYLIP",
                    line=lineno,
                    column=seq_start + idx + 1,
                )
            if run_start is None:
                run_start = idx
            count += 1
        if run_start is not None:
            record_segments.append(
                (
                    line_offset + seq_start + run_start,
                    len(raw_seq) - run_start,
                )
            )
        if count != n_sites:
            _phylip_fail(
                f"ragged alignment: record {name!r} has {count} sites, "
                f"header says {n_sites}",
                lineno,
            )
        if name in segments:
            _phylip_fail(f"duplicate taxon {name!r}", lineno)
        taxa.append(name)
        segments[name] = record_segments
    return _ScanResult(taxa, segments, n_sites)


# ---------------------------------------------------------------------
# Pass 2 — site-window iteration
# ---------------------------------------------------------------------
class _SegmentCursor:
    """Monotone reader over one taxon's ``(offset, length)`` segments."""

    def __init__(
        self,
        source: Union[TextSource, _FileSource],
        segments: List[Tuple[int, int]],
    ) -> None:
        self._source = source
        self._segments = segments
        self._index = 0
        self._within = 0

    def take(self, n: int) -> str:
        """The next ``n`` residues, upper-cased."""
        pieces: List[str] = []
        remaining = n
        while remaining > 0:
            offset, length = self._segments[self._index]
            available = length - self._within
            grab = min(available, remaining)
            pieces.append(
                self._source.read_at(offset + self._within, grab)
            )
            self._within += grab
            remaining -= grab
            if self._within == length:
                self._index += 1
                self._within = 0
        return "".join(pieces).upper()


def iter_sites(
    source,
    format: str = "fasta",
    *,
    alphabet: Alphabet = DNA,
    window: int = DEFAULT_WINDOW,
    read_size: ReadSizes = DEFAULT_READ_SIZE,
) -> Iterator[SiteChunk]:
    """Stream an alignment as :class:`SiteChunk` windows.

    Parameters
    ----------
    source:
        A file path, or a :class:`TextSource` wrapping in-memory text.
    format:
        ``"fasta"`` or ``"phylip"``.
    window:
        Maximum columns per chunk.
    read_size:
        Pass-1 read granularity — an int, or an arbitrary iterable of
        chunk sizes (the parser-fuzz tests drive this to prove error
        positions are chunking-invariant).

    Raises
    ------
    repro.errors.ParseError
        For malformed input — with the same line/column the whole-file
        parser (:func:`~repro.data.io_fasta.parse_fasta` /
        :func:`~repro.data.io_phylip.parse_phylip`) reports.
    """
    if window < 1:
        raise ValueError("window must be positive")
    if format not in ("fasta", "phylip"):
        raise ValueError(f"unknown alignment format {format!r}")
    src, owned = _coerce_source(source)
    try:
        if format == "fasta":
            scan = _scan_fasta(
                _lines_newline_only(src.chunks(read_size)), alphabet
            )
        else:
            scan = _scan_phylip(src, read_size, alphabet)
        taxa = tuple(scan.taxa)
        cursors = [
            _SegmentCursor(src, scan.segments[name]) for name in taxa
        ]
        for start in range(0, scan.n_sites, window):
            stop = min(start + window, scan.n_sites)
            rows = tuple(c.take(stop - start) for c in cursors)
            yield SiteChunk(taxa=taxa, rows=rows, start=start, stop=stop)
    finally:
        if owned:
            src.close()
