"""Character-state alphabets.

An :class:`Alphabet` maps sequence symbols to state indices and resolves
ambiguity codes into partial-likelihood vectors. The library ships the two
fixed alphabets the paper's models need (nucleotide ``s = 4`` and amino
acid ``s = 20``); the 61-state codon alphabet is built dynamically from the
genetic code in :mod:`repro.models.genetic_code` because its state set
depends on which codons are stop codons.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["Alphabet", "DNA", "AMINO_ACID"]


class Alphabet:
    """A finite character-state alphabet with ambiguity codes.

    Parameters
    ----------
    name:
        Human-readable name ("dna", "amino_acid", "codon").
    states:
        The canonical, unambiguous states in index order.
    ambiguities:
        Mapping from ambiguity symbol to the tuple of states it may
        represent; e.g. IUPAC ``R -> (A, G)``. A full-gap/unknown symbol
        mapping to every state is added automatically for ``-``, ``?`` and
        the explicit ``unknown`` symbol.
    unknown:
        Symbol treated as fully ambiguous (``N`` for DNA, ``X`` for amino
        acids).
    """

    def __init__(
        self,
        name: str,
        states: Sequence[str],
        ambiguities: Mapping[str, Tuple[str, ...]] = (),
        unknown: str = "?",
    ) -> None:
        self.name = name
        self.states: Tuple[str, ...] = tuple(states)
        if len(set(self.states)) != len(self.states):
            raise ValueError("duplicate states")
        self._index: Dict[str, int] = {s: i for i, s in enumerate(self.states)}

        self._partials: Dict[str, np.ndarray] = {}
        for i, s in enumerate(self.states):
            vec = np.zeros(len(self.states))
            vec[i] = 1.0
            self._partials[s] = vec
        full = np.ones(len(self.states))
        for symbol in {unknown, "-", "?"}:
            self._partials[symbol] = full
        self.unknown = unknown
        for symbol, members in dict(ambiguities).items():
            vec = np.zeros(len(self.states))
            for member in members:
                vec[self._index[member]] = 1.0
            self._partials[symbol] = vec

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return len(self.states)

    def index(self, symbol: str) -> int:
        """State index of an unambiguous symbol.

        Raises
        ------
        KeyError
            For ambiguity codes or unknown symbols — use :meth:`code` or
            :meth:`partial` for those.
        """
        return self._index[symbol]

    def code(self, symbol: str) -> int:
        """Integer code for the engine's compact tip representation.

        Unambiguous states map to their index; any recognised ambiguity
        (including gaps) maps to ``n_states``, the BEAGLE convention for
        "unknown" in ``setTipStates``-style buffers.
        """
        if symbol in self._index:
            return self._index[symbol]
        if symbol in self._partials:
            return self.n_states
        raise KeyError(f"symbol {symbol!r} not in alphabet {self.name}")

    def partial(self, symbol: str) -> np.ndarray:
        """Partial-likelihood row vector (copy) for a symbol."""
        try:
            return self._partials[symbol].copy()
        except KeyError:
            raise KeyError(f"symbol {symbol!r} not in alphabet {self.name}") from None

    def is_ambiguous(self, symbol: str) -> bool:
        """True for ambiguity codes, gaps and unknowns."""
        if symbol in self._index:
            return False
        if symbol in self._partials:
            return True
        raise KeyError(f"symbol {symbol!r} not in alphabet {self.name}")

    def symbols(self) -> Tuple[str, ...]:
        """Every recognised symbol (states first, then ambiguity codes)."""
        rest = tuple(s for s in self._partials if s not in self._index)
        return self.states + rest

    def encode(self, sequence: Sequence[str]) -> np.ndarray:
        """Vector of compact integer codes (see :meth:`code`)."""
        return np.array([self.code(s) for s in sequence], dtype=np.int32)

    def encode_partials(self, sequence: Sequence[str]) -> np.ndarray:
        """``(len(sequence), n_states)`` matrix of partial vectors."""
        return np.stack([self._partials[s] for s in sequence])

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._partials

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Alphabet {self.name} s={self.n_states}>"


#: IUPAC nucleotide alphabet (state order A, C, G, T as used by BEAGLE).
DNA = Alphabet(
    "dna",
    "ACGT",
    ambiguities={
        "U": ("T",),
        "R": ("A", "G"),
        "Y": ("C", "T"),
        "S": ("C", "G"),
        "W": ("A", "T"),
        "K": ("G", "T"),
        "M": ("A", "C"),
        "B": ("C", "G", "T"),
        "D": ("A", "G", "T"),
        "H": ("A", "C", "T"),
        "V": ("A", "C", "G"),
    },
    unknown="N",
)

#: The 20 amino acids in the conventional alphabetical one-letter order.
AMINO_ACID = Alphabet(
    "amino_acid",
    "ACDEFGHIKLMNPQRSTVWY",
    ambiguities={
        "B": ("D", "N"),
        "Z": ("E", "Q"),
        "J": ("I", "L"),
    },
    unknown="X",
)
