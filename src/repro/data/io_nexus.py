"""Minimal NEXUS reading and writing.

NEXUS is the interchange format of the MrBayes/BEAST ecosystem the paper
targets. This module supports the common core a likelihood library needs:

* ``DATA``/``CHARACTERS`` blocks — aligned sequence matrices with
  ``ntax``/``nchar`` dimensions and a ``datatype`` declaration;
* ``TREES`` blocks — named Newick trees with an optional ``TRANSLATE``
  table mapping numeric labels to taxon names.

Comments in square brackets are ignored everywhere; keywords are
case-insensitive, as the format specifies.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..trees import Tree, parse_newick, write_newick
from .alignment import Alignment
from .alphabet import AMINO_ACID, DNA, Alphabet

__all__ = [
    "parse_nexus_alignment",
    "parse_nexus_trees",
    "format_nexus_alignment",
    "format_nexus_trees",
    "read_nexus_alignment",
    "read_nexus_trees",
    "write_nexus_alignment",
    "write_nexus_trees",
]

PathLike = Union[str, Path]


def _strip_comments(text: str) -> str:
    out: List[str] = []
    depth = 0
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            if depth == 0:
                raise ValueError("unbalanced ']' in NEXUS input")
            depth -= 1
        elif depth == 0:
            out.append(ch)
    if depth != 0:
        raise ValueError("unterminated comment in NEXUS input")
    return "".join(out)


def _check_header(text: str) -> str:
    stripped = _strip_comments(text).strip()
    if not stripped[:6].upper() == "#NEXUS":
        raise ValueError("missing #NEXUS header")
    return stripped[6:]


def _blocks(text: str) -> List[Tuple[str, str]]:
    """Extract (name, body) for every BEGIN ... END; block."""
    pattern = re.compile(
        r"BEGIN\s+(\w+)\s*;(.*?)END\s*;", re.IGNORECASE | re.DOTALL
    )
    return [(m.group(1).upper(), m.group(2)) for m in pattern.finditer(text)]


def _alphabet_for(datatype: str) -> Alphabet:
    datatype = datatype.lower()
    if datatype in ("dna", "nucleotide", "rna"):
        return DNA
    if datatype == "protein":
        return AMINO_ACID
    raise ValueError(f"unsupported NEXUS datatype {datatype!r}")


def parse_nexus_alignment(text: str) -> Alignment:
    """Parse the first DATA/CHARACTERS block into an :class:`Alignment`."""
    body = None
    for name, block in _blocks(_check_header(text)):
        if name in ("DATA", "CHARACTERS"):
            body = block
            break
    if body is None:
        raise ValueError("no DATA or CHARACTERS block found")

    dims = re.search(
        r"DIMENSIONS\s+(.*?);", body, re.IGNORECASE | re.DOTALL
    )
    if not dims:
        raise ValueError("DATA block missing DIMENSIONS")
    dim_text = dims.group(1)
    ntax_m = re.search(r"NTAX\s*=\s*(\d+)", dim_text, re.IGNORECASE)
    nchar_m = re.search(r"NCHAR\s*=\s*(\d+)", dim_text, re.IGNORECASE)
    if not ntax_m or not nchar_m:
        raise ValueError("DIMENSIONS must declare ntax and nchar")
    ntax, nchar = int(ntax_m.group(1)), int(nchar_m.group(1))

    fmt = re.search(r"FORMAT\s+(.*?);", body, re.IGNORECASE | re.DOTALL)
    datatype = "dna"
    if fmt:
        dt = re.search(r"DATATYPE\s*=\s*(\w+)", fmt.group(1), re.IGNORECASE)
        if dt:
            datatype = dt.group(1)
    alphabet = _alphabet_for(datatype)

    matrix = re.search(
        r"MATRIX\s+(.*?);", body, re.IGNORECASE | re.DOTALL
    )
    if not matrix:
        raise ValueError("DATA block missing MATRIX")
    sequences: Dict[str, str] = {}
    for line in matrix.group(1).splitlines():
        line = line.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise ValueError(f"malformed MATRIX row: {line!r}")
        name = parts[0].strip("'\"")
        seq = parts[1].replace(" ", "").upper()
        sequences[name] = sequences.get(name, "") + seq  # interleaved OK
    if len(sequences) != ntax:
        raise ValueError(f"expected {ntax} taxa, found {len(sequences)}")
    for name, seq in sequences.items():
        if len(seq) != nchar:
            raise ValueError(
                f"taxon {name!r} has {len(seq)} characters, expected {nchar}"
            )
    return Alignment(sequences, alphabet)


def parse_nexus_trees(text: str) -> Dict[str, Tree]:
    """Parse the first TREES block into ``{tree name: Tree}``.

    A TRANSLATE table, when present, is applied to tip labels.
    """
    body = None
    for name, block in _blocks(_check_header(text)):
        if name == "TREES":
            body = block
            break
    if body is None:
        raise ValueError("no TREES block found")

    translate: Dict[str, str] = {}
    tr = re.search(r"TRANSLATE\s+(.*?);", body, re.IGNORECASE | re.DOTALL)
    if tr:
        for entry in tr.group(1).split(","):
            parts = entry.split()
            if len(parts) >= 2:
                translate[parts[0]] = parts[1].strip("'\"")

    trees: Dict[str, Tree] = {}
    for m in re.finditer(
        r"TREE\s+\*?\s*([\w.\-]+)\s*=\s*(?:\[[^\]]*\]\s*)?([^;]+);",
        body,
        re.IGNORECASE,
    ):
        name, newick = m.group(1), m.group(2).strip() + ";"
        tree = parse_newick(newick)
        if translate:
            for tip in tree.tips():
                if tip.name in translate:
                    tip.name = translate[tip.name]
        trees[name] = tree
    if not trees:
        raise ValueError("TREES block contains no TREE statements")
    return trees


def format_nexus_alignment(alignment: Alignment) -> str:
    """Serialise an alignment as a NEXUS DATA block."""
    datatype = {"dna": "dna", "amino_acid": "protein"}.get(
        alignment.alphabet.name
    )
    if datatype is None:
        raise ValueError(
            f"cannot write alphabet {alignment.alphabet.name!r} to NEXUS"
        )
    width = max(len(name) for name in alignment.names) + 2
    lines = [
        "#NEXUS",
        "",
        "BEGIN DATA;",
        f"    DIMENSIONS ntax={alignment.n_taxa} nchar={alignment.n_sites};",
        f"    FORMAT datatype={datatype} missing=? gap=-;",
        "    MATRIX",
    ]
    for name, row in alignment:
        lines.append(f"        {name:<{width}}{''.join(row)}")
    lines += ["    ;", "END;", ""]
    return "\n".join(lines)


def format_nexus_trees(trees: Dict[str, Tree]) -> str:
    """Serialise named trees as a NEXUS TREES block (no translate table)."""
    if not trees:
        raise ValueError("need at least one tree")
    lines = ["#NEXUS", "", "BEGIN TREES;"]
    for name, tree in trees.items():
        lines.append(f"    TREE {name} = {write_newick(tree)}")
    lines += ["END;", ""]
    return "\n".join(lines)


def read_nexus_alignment(path: PathLike) -> Alignment:
    """Read the first DATA/CHARACTERS block of a NEXUS file."""
    return parse_nexus_alignment(Path(path).read_text())


def read_nexus_trees(path: PathLike) -> Dict[str, Tree]:
    """Read the first TREES block of a NEXUS file."""
    return parse_nexus_trees(Path(path).read_text())


def write_nexus_alignment(alignment: Alignment, path: PathLike) -> None:
    """Write an alignment to a NEXUS file (DATA block)."""
    Path(path).write_text(format_nexus_alignment(alignment))


def write_nexus_trees(trees: Dict[str, Tree], path: PathLike) -> None:
    """Write named trees to a NEXUS file (TREES block)."""
    Path(path).write_text(format_nexus_trees(trees))
