"""Sequence-data substrate: alphabets, alignments, patterns, simulation, IO."""

from .alphabet import AMINO_ACID, DNA, Alphabet
from .alignment import (
    Alignment,
    concatenate,
    proportion_variable_sites,
    site_variability,
)
from .patterns import (
    PatternAccumulator,
    PatternData,
    compress,
    random_patterns,
    slice_patterns,
)
from .simulate import simulate_alignment, simulate_states
from .streaming import SiteChunk, TextSource, iter_sites
from .io_fasta import (
    format_fasta,
    iter_fasta_sites,
    parse_fasta,
    read_fasta,
    write_fasta,
)
from .io_phylip import (
    format_phylip,
    iter_phylip_sites,
    parse_phylip,
    read_phylip,
    write_phylip,
)
from .io_nexus import (
    format_nexus_alignment,
    format_nexus_trees,
    parse_nexus_alignment,
    parse_nexus_trees,
    read_nexus_alignment,
    read_nexus_trees,
    write_nexus_alignment,
    write_nexus_trees,
)

__all__ = [
    "Alphabet",
    "DNA",
    "AMINO_ACID",
    "Alignment",
    "concatenate",
    "site_variability",
    "proportion_variable_sites",
    "PatternData",
    "PatternAccumulator",
    "compress",
    "random_patterns",
    "slice_patterns",
    "SiteChunk",
    "TextSource",
    "iter_sites",
    "iter_fasta_sites",
    "iter_phylip_sites",
    "simulate_alignment",
    "simulate_states",
    "read_fasta",
    "write_fasta",
    "parse_fasta",
    "format_fasta",
    "read_phylip",
    "write_phylip",
    "parse_phylip",
    "format_phylip",
    "parse_nexus_alignment",
    "parse_nexus_trees",
    "format_nexus_alignment",
    "format_nexus_trees",
    "read_nexus_alignment",
    "read_nexus_trees",
    "write_nexus_alignment",
    "write_nexus_trees",
]
