"""Benchmark harness and the synthetictest CLI work-alike."""

from .harness import CaseResult, build_tree, run_case, sweep_random_trees
from .asciiplot import Series, ascii_plot
from .tables import format_table, summarize_interval, write_table
from .profiling import (
    ProfileReport,
    kernel_scaling,
    profile_callable,
    profile_likelihood,
)

__all__ = [
    "CaseResult",
    "build_tree",
    "run_case",
    "sweep_random_trees",
    "Series",
    "ascii_plot",
    "format_table",
    "write_table",
    "summarize_interval",
    "ProfileReport",
    "profile_callable",
    "profile_likelihood",
    "kernel_scaling",
]
