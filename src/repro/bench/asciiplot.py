"""Terminal scatter/line plots for the benchmark figures.

matplotlib is unavailable offline, so the figure benchmarks render their
paper-style plots as ASCII: multiple series with distinct glyphs, linear
or log axes, and a legend. Good enough to eyeball the shapes the paper's
Figures 4–6 show (monotone trends, saturation bends, flat baselines).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["Series", "ascii_plot"]


@dataclass
class Series:
    """One plotted point set."""

    xs: Sequence[float]
    ys: Sequence[float]
    glyph: str = "*"
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must have equal length")
        if len(self.glyph) != 1:
            raise ValueError("glyph must be a single character")


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError("log-scale axes need positive values")
        return math.log10(value)
    return value


def _ticks(lo: float, hi: float, log: bool, count: int = 4) -> List[float]:
    if hi <= lo:
        return [lo]
    raw = [lo + (hi - lo) * i / (count - 1) for i in range(count)]
    return [10**v for v in raw] if log else raw


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.01:
        return f"{value:.1e}"
    if magnitude >= 10:
        return f"{value:.0f}"
    return f"{value:.2f}"


def ascii_plot(
    series: Sequence[Series],
    *,
    width: int = 64,
    height: int = 18,
    xlabel: str = "",
    ylabel: str = "",
    title: str = "",
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render point series into an ASCII grid with axes and a legend.

    Points sharing a cell are drawn with the glyph of the *last* series
    containing one (later series draw on top, like plotting libraries).
    """
    if not series or all(len(s.xs) == 0 for s in series):
        raise ValueError("nothing to plot")
    if width < 16 or height < 6:
        raise ValueError("plot area too small")

    xs_all = [_transform(x, logx) for s in series for x in s.xs]
    ys_all = [_transform(y, logy) for s in series for y in s.ys]
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for s in series:
        for x, y in zip(s.xs, s.ys):
            tx = (_transform(x, logx) - x_lo) / (x_hi - x_lo)
            ty = (_transform(y, logy) - y_lo) / (y_hi - y_lo)
            col = min(width - 1, int(round(tx * (width - 1))))
            row = min(height - 1, int(round((1.0 - ty) * (height - 1))))
            grid[row][col] = s.glyph

    lines: List[str] = []
    if title:
        lines.append(title.center(width + 10))
    y_ticks = _ticks(y_lo, y_hi, logy, count=3)
    tick_rows = {0: y_ticks[-1], height // 2: y_ticks[len(y_ticks) // 2], height - 1: y_ticks[0]}
    for row in range(height):
        label = _format_tick(tick_rows[row]) if row in tick_rows else ""
        lines.append(f"{label:>9s} |" + "".join(grid[row]))
    lines.append(" " * 9 + " +" + "-" * width)
    x_ticks = _ticks(x_lo, x_hi, logx, count=3)
    tick_line = [" "] * (width + 11)
    positions = [11, 11 + width // 2, 10 + width - 1]
    for pos, value in zip(positions, x_ticks):
        text = _format_tick(value)
        start = min(pos, len(tick_line) - len(text))
        for i, ch in enumerate(text):
            tick_line[start + i] = ch
    lines.append("".join(tick_line).rstrip())
    if xlabel:
        lines.append(xlabel.center(width + 10))
    if ylabel:
        lines.insert(1 if title else 0, f"[y: {ylabel}]")
    legend = "   ".join(f"{s.glyph} {s.label}" for s in series if s.label)
    if legend:
        lines.append(legend)
    return "\n".join(lines)
