"""Profiling helpers — "no optimisation without measuring".

Thin wrappers over :mod:`cProfile` that answer the two questions the
hpc-parallel workflow starts with: *where does one likelihood evaluation
spend its time*, and *how does kernel time scale with the problem
dimensions*. Used by the ``profile_likelihood`` entry point below and
handy in notebooks/REPLs while extending the engine.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..core import create_instance, execute_plan, make_plan
from ..data import random_patterns
from ..models.ratematrix import SubstitutionModel
from ..trees import Tree

__all__ = ["ProfileReport", "profile_callable", "profile_likelihood", "kernel_scaling"]


@dataclass(frozen=True)
class ProfileReport:
    """Top-of-profile summary for one profiled call."""

    total_seconds: float
    top_functions: List[Tuple[str, float]]
    raw: str

    def dominant(self) -> str:
        """Qualified name of the most expensive function."""
        return self.top_functions[0][0] if self.top_functions else ""


def profile_callable(fn: Callable[[], object], *, top: int = 10) -> ProfileReport:
    """Run ``fn`` under cProfile and summarise cumulative hot spots."""
    profiler = cProfile.Profile()
    profiler.enable()
    fn()
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    stats.print_stats(top)
    raw = stream.getvalue()

    entries: List[Tuple[str, float]] = []
    for (filename, line, name), row in stats.stats.items():  # type: ignore[attr-defined]
        cumulative = row[3]
        label = f"{filename.rsplit('/', 1)[-1]}:{line}({name})"
        entries.append((label, cumulative))
    entries.sort(key=lambda e: -e[1])
    total = stats.total_tt  # type: ignore[attr-defined]
    return ProfileReport(
        total_seconds=float(total), top_functions=entries[:top], raw=raw
    )


def profile_likelihood(
    tree: Tree,
    model: SubstitutionModel,
    *,
    sites: int = 512,
    repetitions: int = 10,
    top: int = 10,
) -> ProfileReport:
    """Profile repeated likelihood evaluations of a tree.

    Mirrors the workload of one ``synthetictest`` run so the hot spots
    seen here are the ones the paper optimises (the partials kernel
    should dominate, matching the >0.9 run-time share of §VIII).
    """
    patterns = random_patterns(sorted(tree.tip_names()), sites, seed=0)
    instance = create_instance(tree, model, patterns)
    plan = make_plan(tree)
    execute_plan(instance, plan)  # warm-up outside the profile

    def work() -> None:
        for _ in range(repetitions):
            execute_plan(instance, plan, update_matrices=False)

    return profile_callable(work, top=top)


def kernel_scaling(
    tree: Tree,
    model: SubstitutionModel,
    site_grid: Sequence[int],
    *,
    repetitions: int = 5,
) -> Dict[int, float]:
    """Measured seconds per evaluation across a pattern-count grid.

    The empirical counterpart of the device model's saturation curve:
    on a CPU, time grows roughly linearly in the pattern count once the
    arrays outgrow dispatch overhead.
    """
    results: Dict[int, float] = {}
    for sites in site_grid:
        patterns = random_patterns(sorted(tree.tip_names()), sites, seed=0)
        instance = create_instance(tree, model, patterns)
        plan = make_plan(tree)
        execute_plan(instance, plan)
        best = float("inf")
        for _ in range(repetitions):
            start = time.perf_counter()
            execute_plan(instance, plan, update_matrices=False)
            best = min(best, time.perf_counter() - start)
        results[sites] = best
    return results
