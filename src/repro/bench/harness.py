"""Benchmark harness: one entry point per paper-style benchmark case.

Every figure and table in the paper reduces to sweeps over the same case
definition: (topology type, taxa, sites, seed, reroot?) → launches,
modelled device time, throughput, theoretical bounds. :func:`run_case`
computes one such row; the per-figure modules in ``benchmarks/`` sweep it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core import (
    optimal_reroot_exhaustive,
    optimal_reroot_fast,
    tree_theoretical_speedup,
)
from ..gpu import GP100, DeviceSpec, SimulatedDevice, WorkloadDims
from ..trees import Tree, balanced_tree, pectinate_tree, random_attachment_tree

__all__ = ["CaseResult", "build_tree", "run_case", "sweep_random_trees"]


@dataclass(frozen=True)
class CaseResult:
    """One benchmark row (a point in a paper figure or table)."""

    topology: str
    taxa: int
    sites: int
    seed: Optional[int]
    rerooted: bool
    operation_sets: int
    serial_launches: int
    theoretical_speedup: float
    model_seconds: float
    model_speedup: float
    gflops: float

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def build_tree(topology: str, taxa: int, seed: Optional[int] = None) -> Tree:
    """Build a benchmark tree the way ``synthetictest`` does (§VI-D).

    ``balanced`` (the default topology), ``pectinate`` (``--pectinate``)
    or ``random`` (``--randomtree`` with ``--seed``).
    """
    if topology == "balanced":
        return balanced_tree(taxa)
    if topology == "pectinate":
        return pectinate_tree(taxa)
    if topology == "random":
        return random_attachment_tree(taxa, np.random.default_rng(seed))
    raise ValueError(f"unknown topology {topology!r}")


def run_case(
    topology: str,
    taxa: int,
    sites: int = 512,
    *,
    seed: Optional[int] = None,
    reroot: bool = False,
    reroot_algorithm: str = "fast",
    states: int = 4,
    categories: int = 1,
    spec: DeviceSpec = GP100,
) -> CaseResult:
    """Evaluate one benchmark case under the device model."""
    tree = build_tree(topology, taxa, seed)
    if reroot:
        if reroot_algorithm == "fast":
            tree = optimal_reroot_fast(tree).tree
        elif reroot_algorithm == "exhaustive":
            tree = optimal_reroot_exhaustive(tree).tree
        else:
            raise ValueError(f"unknown reroot algorithm {reroot_algorithm!r}")
    dims = WorkloadDims(patterns=sites, states=states, categories=categories)
    device = SimulatedDevice(spec)
    timing = device.time_tree(tree, dims, "concurrent")
    return CaseResult(
        topology=topology,
        taxa=taxa,
        sites=sites,
        seed=seed,
        rerooted=reroot,
        operation_sets=timing.n_launches,
        serial_launches=taxa - 1,
        theoretical_speedup=tree_theoretical_speedup(tree),
        model_seconds=timing.seconds,
        model_speedup=device.speedup(tree, dims),
        gflops=timing.gflops,
    )


def sweep_random_trees(
    taxa: int,
    n_trees: int,
    sites: int = 512,
    *,
    reroot: bool = False,
    first_seed: int = 1,
    spec: DeviceSpec = GP100,
) -> List[CaseResult]:
    """The paper's random-tree samples: seeds ``first_seed ..`` (§VI-F)."""
    return [
        run_case(
            "random",
            taxa,
            sites,
            seed=seed,
            reroot=reroot,
            spec=spec,
        )
        for seed in range(first_seed, first_seed + n_trees)
    ]
