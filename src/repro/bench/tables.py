"""Result-table formatting for the benchmark harness.

All benchmarks emit GitHub-flavoured markdown tables, both to stdout and
into ``bench_results/`` so EXPERIMENTS.md can reference stable artefacts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

__all__ = ["format_table", "write_table", "summarize_interval"]

Cell = Union[str, int, float, bool, None]


def _render(value: Cell) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: str = "",
) -> str:
    """Render rows of dicts as a markdown table.

    Parameters
    ----------
    rows:
        Mappings sharing (a superset of) the chosen columns.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional heading emitted above the table.
    """
    if not rows:
        return (f"### {title}\n\n" if title else "") + "*(no rows)*\n"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_render(row.get(c)) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(cols, widths)) + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for r in rendered:
        lines.append("| " + " | ".join(v.ljust(w) for v, w in zip(r, widths)) + " |")
    return "\n".join(lines) + "\n"


def write_table(
    path: Union[str, Path],
    rows: Sequence[Mapping[str, Cell]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: str = "",
) -> str:
    """Format a table, write it to ``path``, and return the text."""
    text = format_table(rows, columns, title=title)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text)
    return text


def summarize_interval(values: Sequence[float]) -> str:
    """The paper's ``[low, high]`` interval notation for random samples."""
    if not values:
        return "[]"
    return f"[{min(values):.2f}, {max(values):.2f}]"
