"""``synthetictest`` — a work-alike of BEAGLE's benchmark program.

The paper's entire evaluation is driven by the ``synthetictest`` program
shipped with BEAGLE, extended with ``--pectinate``, ``--randomtree`` and
``--reroot`` options (Table II). This module reproduces that command-line
surface so the paper's example invocation runs verbatim (modulo the
program name)::

    synthetictest --rsrc 1 --taxa 64 --sites 512 --reps 1000 \\
        --full-timing --manualscale --rescale-frequency 1000 \\
        --randomtree --reroot --seed 1

Resources (``--rsrc``):

* ``0`` / ``cpu`` — CPU: the NumPy engine actually computes the
  likelihood ``--reps`` times and reports measured wall-clock
  throughput (reference kernel backend).
* ``1`` / ``gp100`` — GP100 device model (the paper's System 1): the
  engine computes the likelihood once for validation; timing comes from
  the analytical device model.
* any registered kernel-backend name (``blocked``, ...) — the measured
  CPU path on that backend; ``python -m repro.beagle.resources`` lists
  what is available.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from typing import List, Optional

import numpy as np

from ..core import (
    count_operation_sets,
    create_instance,
    execute_plan,
    make_plan,
    optimal_reroot_fast,
    tree_theoretical_speedup,
)
from ..data import random_patterns
from ..exec import (
    Deadline,
    DeadlineExceeded,
    DeadlineGuard,
    ExecutionError,
    FaultInjector,
    FaultSpec,
    LikelihoodPool,
    ResilientInstance,
    RetryPolicy,
)
from ..gpu import GP100, SimulatedDevice, WorkloadDims
from ..models import random_gtr
from ..obs import Recorder, record_pool_stats, set_recorder
from ..trees import tree_height
from .harness import build_tree

__all__ = ["build_parser", "run", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Argument parser mirroring BEAGLE's synthetictest options."""
    parser = argparse.ArgumentParser(
        prog="synthetictest",
        description="Benchmark the phylogenetic partial-likelihoods kernel "
        "on synthetic data (Python work-alike of BEAGLE's synthetictest).",
    )
    # --- Always-used options (Table II, upper half) -------------------
    parser.add_argument(
        "--rsrc",
        type=str,
        default="0",
        help="resource: 0/cpu = reference CPU (measured), 1/gp100 = GP100 "
        "model, or a registered kernel-backend name "
        "(see `python -m repro.beagle.resources`)",
    )
    parser.add_argument("--taxa", type=int, default=16, help="number of OTUs")
    parser.add_argument(
        "--sites", type=int, default=512, help="number of unique site patterns"
    )
    parser.add_argument(
        "--reps", type=int, default=10, help="calculation repetitions"
    )
    parser.add_argument(
        "--full-timing",
        action="store_true",
        help="output detailed per-launch timing information",
    )
    parser.add_argument(
        "--manualscale",
        action="store_true",
        help="enable application-managed floating-point rescaling",
    )
    parser.add_argument(
        "--rescale-frequency",
        type=int,
        default=1,
        metavar="N",
        help="compute new rescaling factors every N repetitions",
    )
    # --- Benchmark-dependent options (Table II, lower half) -----------
    parser.add_argument(
        "--pectinate", action="store_true", help="use a pectinate tree topology"
    )
    parser.add_argument(
        "--randomtree", action="store_true", help="use an arbitrary tree topology"
    )
    parser.add_argument(
        "--reroot", action="store_true", help="optimally reroot the tree"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        help="random seed for data, model parameters and topology",
    )
    # --- Extensions beyond the paper's table --------------------------
    parser.add_argument(
        "--states", type=int, default=4, help="character states (4/20/61)"
    )
    parser.add_argument(
        "--categories", type=int, default=1, help="rate categories"
    )
    parser.add_argument(
        "--serial",
        action="store_true",
        help="disable multi-operation launches (sequential baseline)",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=1,
        metavar="N",
        help="split the sites into N equal partitions with independent "
        "random models (pattern-partition concurrency, paper §IV-A)",
    )
    parser.add_argument(
        "--streams",
        type=int,
        default=0,
        metavar="S",
        help="model stream-based scheduling with S streams instead of the "
        "multi-operation kernel (GP100 resource only)",
    )
    parser.add_argument(
        "--gradient",
        action="store_true",
        help="compute every branch's (logL, d/dt, d2/dt2) with the "
        "one-sweep pre-order engine, verify each edge exactly against "
        "the per-edge rerooted oracle, and assert the one-sweep "
        "operation count beats the per-edge total (any mismatch fails "
        "the run)",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="statically verify the plan (repro.analysis) before running "
        "and fail on any buffer hazard",
    )
    parser.add_argument(
        "--races",
        action="store_true",
        help="statically prove every operation set free of intra-set "
        "WAW/WAR/RAW hazards (and, with --streams, the stream schedule "
        "free of cross-stream sharing) before running",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="wrap every pool worker's engine in the shadow-state buffer "
        "sanitizer; any unsynchronized cross-thread buffer access fails "
        "the run (requires --pool)",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="inject deterministic faults into P of launch attempts "
        "(seeded chaos run; see repro.exec)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault-injection stream (independent of --seed)",
    )
    parser.add_argument(
        "--resilience",
        choices=("none", "retry", "degrade", "full"),
        default="none",
        help="recovery policy: none = fail fast, retry = per-launch "
        "retries, degrade = retries + batched-to-per-op fallback, "
        "full = retries + degradation + rescaling escalation",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="X",
        help="per-evaluation wall-clock budget in milliseconds; an "
        "evaluation that runs over raises a typed DeadlineExceeded "
        "(CPU resource; also the per-job budget under --pool)",
    )
    parser.add_argument(
        "--pool",
        type=int,
        default=0,
        metavar="N",
        help="dispatch the repetitions as independent jobs across a "
        "supervised pool of N likelihood workers (health checks, "
        "circuit breakers, failover; see repro.exec.pool)",
    )
    parser.add_argument(
        "--worker-fault-rates",
        type=str,
        default=None,
        metavar="R0,R1,...",
        help="comma-separated per-worker fault rates for --pool (shorter "
        "lists pad with 0; worker i draws from an independent stream "
        "seeded from --fault-seed)",
    )
    parser.add_argument(
        "--pool-inline",
        action="store_true",
        help="use the deterministic inline pool executor instead of one "
        "thread per worker (replayable chaos runs)",
    )
    parser.add_argument(
        "--pool-health-every",
        type=int,
        default=0,
        metavar="K",
        help="run a sentinel health check on a worker after every K "
        "completed jobs (0 = only half-open probes and the final audit)",
    )
    # --- Site-pattern sharding (repro.exec.sharding) ------------------
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="partition the site patterns into N shards and evaluate "
        "them data-parallel through the worker pool, recombining with "
        "the deterministic reduction tree; the run fails unless the "
        "sharded logL is bit-identical to the single-instance "
        "reference and both shard and pool ledgers balance. With "
        "--shards, --fault-rate injects shard-scoped faults "
        "(lost/stall/underflow) instead of launch-level ones",
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=2,
        metavar="R",
        help="bounded per-shard retry budget before the run surfaces "
        "a ShardFailure",
    )
    parser.add_argument(
        "--shard-speculate",
        action="store_true",
        help="submit a speculative duplicate of every pending shard; "
        "first valid result wins, the loser is cancelled and "
        "reconciled in the ledger",
    )
    parser.add_argument(
        "--shard-fault-rate",
        type=float,
        default=None,
        metavar="P",
        help="shard-scoped fault rate (defaults to --fault-rate when "
        "--shards is set; seeded from --fault-seed)",
    )
    parser.add_argument(
        "--shard-checkpoint",
        type=str,
        default=None,
        metavar="FILE",
        help="persist finished shards to FILE (atomic JSON) so a "
        "crashed run resumes without recomputing them",
    )
    parser.add_argument(
        "--shard-resume",
        action="store_true",
        help="resume from --shard-checkpoint if it exists; the run "
        "fails if any already-completed shard is recomputed",
    )
    parser.add_argument(
        "--shard-abort-after",
        type=int,
        default=None,
        metavar="K",
        help="abort the first sharded evaluation after K shards "
        "complete (checkpoint crash drill), then resume it and gate "
        "on zero recomputed shards and an exact logL match",
    )
    # --- Likelihood-as-a-service (repro.serve) ------------------------
    parser.add_argument(
        "--serve",
        type=int,
        default=0,
        metavar="N",
        help="replay a seeded N-request multi-tenant arrival trace "
        "through the likelihood server (admission, per-tenant fairness, "
        "cross-request coalescing, brownout) in front of the --pool "
        "workers; the run fails unless every served logL is "
        "bit-identical to the serial reference, the serve ledger "
        "balances, and every request is accounted (no silent drops)",
    )
    parser.add_argument(
        "--serve-tenants",
        type=int,
        default=8,
        metavar="T",
        help="tenants in the generated arrival trace",
    )
    parser.add_argument(
        "--serve-storm",
        action="store_true",
        help="use the hostile burst-storm trace (hot-tenant bursts over "
        "background load) instead of steady arrivals",
    )
    parser.add_argument(
        "--serve-width",
        type=int,
        default=8,
        metavar="W",
        help="max requests coalesced into one shared launch batch "
        "(1 = coalescing off, the uncoalesced baseline)",
    )
    parser.add_argument(
        "--serve-mode",
        choices=["split", "pad"],
        default="split",
        help="coalescing compatibility: exact pattern-count match "
        "(split) or power-of-two pattern buckets (pad)",
    )
    parser.add_argument(
        "--serve-deadline-ms",
        type=float,
        default=None,
        metavar="T",
        help="per-request deadline budget; expired requests are shed "
        "with a typed cause, values finishing late are delivered and "
        "counted",
    )
    parser.add_argument(
        "--serve-quota",
        type=int,
        default=None,
        metavar="Q",
        help="per-tenant queued-request quota (admission rejects above "
        "it with the tenant-quota reason)",
    )
    parser.add_argument(
        "--serve-queue",
        type=int,
        default=256,
        metavar="N",
        help="server queue capacity (admission bound; brownout pressure "
        "is measured against it)",
    )
    # --- Observability (repro.obs) ------------------------------------
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="FILE",
        help="record spans and write a Chrome/Perfetto trace_event JSON "
        "timeline of the run (open in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics",
        type=str,
        default=None,
        metavar="FILE",
        help="export counters/gauges/histograms after the run; JSON by "
        "default, Prometheus text when FILE ends in .prom or .txt",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the per-phase time table (transition matrices, "
        "partials, scaling, root reduction) after the run",
    )
    return parser


def _resilience_policy(name: str) -> Optional[RetryPolicy]:
    """Map the --resilience choice onto a RetryPolicy."""
    if name == "none":
        return None
    if name == "retry":
        return RetryPolicy(degrade=False, rescale=False)
    if name == "degrade":
        return RetryPolicy(rescale=False)
    return RetryPolicy()


def _worker_fault_specs(args) -> Optional[List[Optional[FaultSpec]]]:
    """Per-worker fault specs from ``--worker-fault-rates``.

    Worker ``i`` draws from its own stream seeded ``fault_seed + 7919*i``
    so adding/removing workers never perturbs another worker's schedule.
    """
    if args.worker_fault_rates is None:
        return None
    rates = [float(tok) for tok in args.worker_fault_rates.split(",") if tok.strip()]
    rates += [0.0] * (args.pool - len(rates))
    return [
        FaultSpec(rate=rate, seed=args.fault_seed + 7919 * i) if rate > 0 else None
        for i, rate in enumerate(rates[: args.pool])
    ]


def run(argv: Optional[List[str]] = None, out=None) -> int:
    """Run the benchmark; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    status = _validate_args(args, out)
    if status != 0:
        return status
    if not (args.trace or args.metrics or args.profile):
        return _run_benchmark(args, out)
    # Observability requested: install a live recorder for the duration
    # of the run, then export whatever was asked for.
    recorder = Recorder()
    previous = set_recorder(recorder)
    try:
        with recorder.span(
            "synthetictest.run",
            category="bench",
            taxa=args.taxa,
            sites=args.sites,
            reps=args.reps,
        ):
            status = _run_benchmark(args, out)
    finally:
        set_recorder(previous)
    try:
        if args.trace:
            recorder.tracer.write(args.trace)
            print(
                f"trace: {len(recorder.tracer.records())} spans "
                f"({', '.join(recorder.tracer.categories())}) -> {args.trace}",
                file=out,
            )
        if args.metrics:
            if args.metrics.endswith((".prom", ".txt")):
                recorder.metrics.write_prometheus(args.metrics)
            else:
                recorder.metrics.write_json(args.metrics)
            print(f"metrics: -> {args.metrics}", file=out)
    except OSError as exc:
        print(f"error: {exc}", file=out)
        return 2
    if args.profile:
        print(recorder.profiler.report(), file=out)
    return status


def _resolve_rsrc(args, out) -> int:
    """Normalize ``--rsrc`` into ``args.device_model`` / ``args.backend``.

    BEAGLE numbers its resources; we keep ``0`` (measured CPU) and ``1``
    (GP100 analytical model) for the paper's invocations and additionally
    accept any registered kernel-backend name (``--rsrc blocked``), which
    runs the measured CPU path on that backend. Unknown names exit 2
    with the available resource listing.
    """
    spec = args.rsrc.strip().lower()
    args.device_model = False
    args.backend = None
    if spec in ("0", "cpu"):
        pass
    elif spec in ("1", "gp100"):
        args.device_model = True
    else:
        from ..beagle.resources import UnknownResourceError, acquire

        try:
            acquire(spec)
        except UnknownResourceError as exc:
            print(
                f"error: --rsrc {args.rsrc!r} is neither 0/cpu, 1/gp100 nor "
                f"a registered backend (available: "
                f"{', '.join(exc.available)})",
                file=out,
            )
            return 2
        args.backend = spec
    return 0


def _validate_args(args, out) -> int:
    """Reject inconsistent option combinations; 0 means valid."""
    if args.pectinate and args.randomtree:
        print("error: --pectinate and --randomtree are exclusive", file=out)
        return 2
    if args.taxa < 2:
        print("error: --taxa must be at least 2", file=out)
        return 2
    status = _resolve_rsrc(args, out)
    if status != 0:
        return status
    if args.partitions < 1:
        print("error: --partitions must be at least 1", file=out)
        return 2
    if args.gradient and args.taxa < 3:
        print("error: --gradient needs at least 3 taxa", file=out)
        return 2
    if args.streams < 0:
        print("error: --streams must be non-negative", file=out)
        return 2
    if args.streams and not args.device_model:
        print("error: --streams requires --rsrc 1 (device model)", file=out)
        return 2
    if not 0.0 <= args.fault_rate <= 1.0:
        print("error: --fault-rate must be within [0, 1]", file=out)
        return 2
    if (
        args.resilience != "none"
        and args.fault_rate <= 0.0
        and args.worker_fault_rates is None
    ):
        print(
            "error: --resilience needs a positive --fault-rate "
            "or --worker-fault-rates",
            file=out,
        )
        return 2
    if args.pool < 0:
        print("error: --pool must be non-negative", file=out)
        return 2
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        print("error: --deadline-ms must be positive", file=out)
        return 2
    if args.deadline_ms is not None and args.device_model:
        print("error: --deadline-ms requires a CPU resource", file=out)
        return 2
    if (
        args.worker_fault_rates is not None
        or args.pool_inline
        or args.pool_health_every
    ) and not args.pool:
        print(
            "error: --worker-fault-rates/--pool-inline/--pool-health-every "
            "require --pool",
            file=out,
        )
        return 2
    if args.pool_health_every < 0:
        print("error: --pool-health-every must be non-negative", file=out)
        return 2
    if args.sanitize and not args.pool:
        print("error: --sanitize requires --pool", file=out)
        return 2
    if args.shards < 0:
        print("error: --shards must be non-negative", file=out)
        return 2
    if args.shards and args.device_model:
        print("error: --shards requires a CPU resource", file=out)
        return 2
    if args.shards and args.manualscale:
        print(
            "error: --shards manages rescaling per shard; drop --manualscale",
            file=out,
        )
        return 2
    if not args.shards and (
        args.shard_speculate
        or args.shard_fault_rate is not None
        or args.shard_checkpoint is not None
        or args.shard_resume
        or args.shard_abort_after is not None
    ):
        print("error: shard options require --shards", file=out)
        return 2
    if args.shard_retries < 0:
        print("error: --shard-retries must be non-negative", file=out)
        return 2
    if args.shard_fault_rate is not None and not (
        0.0 <= args.shard_fault_rate <= 1.0
    ):
        print("error: --shard-fault-rate must be within [0, 1]", file=out)
        return 2
    if (
        args.shard_resume or args.shard_abort_after is not None
    ) and args.shard_checkpoint is None:
        print(
            "error: --shard-resume/--shard-abort-after require "
            "--shard-checkpoint",
            file=out,
        )
        return 2
    if args.shard_abort_after is not None and args.shard_abort_after < 1:
        print("error: --shard-abort-after must be at least 1", file=out)
        return 2
    if args.serve < 0:
        print("error: --serve must be non-negative", file=out)
        return 2
    if args.serve and not args.pool:
        print("error: --serve requires --pool", file=out)
        return 2
    if args.serve and args.device_model:
        print("error: --serve requires a CPU resource", file=out)
        return 2
    if args.serve and args.shards:
        print("error: --serve and --shards are exclusive", file=out)
        return 2
    if not args.serve and (
        args.serve_storm
        or args.serve_deadline_ms is not None
        or args.serve_quota is not None
    ):
        print("error: serve options require --serve", file=out)
        return 2
    if args.serve_tenants < 1:
        print("error: --serve-tenants must be at least 1", file=out)
        return 2
    if args.serve_width < 1:
        print("error: --serve-width must be at least 1", file=out)
        return 2
    if args.serve_queue < 1:
        print("error: --serve-queue must be at least 1", file=out)
        return 2
    if args.serve_deadline_ms is not None and args.serve_deadline_ms <= 0:
        print("error: --serve-deadline-ms must be positive", file=out)
        return 2
    if args.serve_quota is not None and args.serve_quota < 1:
        print("error: --serve-quota must be at least 1", file=out)
        return 2
    if args.worker_fault_rates is not None:
        try:
            specs_check = _worker_fault_specs(args)
        except ValueError:
            print(
                "error: --worker-fault-rates must be comma-separated floats",
                file=out,
            )
            return 2
        if any(
            spec is not None and not 0.0 <= spec.rate <= 1.0
            for spec in specs_check or []
        ):
            print("error: worker fault rates must be within [0, 1]", file=out)
            return 2
    return 0


def _run_gradient(args, tree, model, patterns, info, out) -> int:
    """The ``--gradient`` exit gate: one-sweep vs per-edge parity.

    Runs :func:`~repro.inference.derivatives.all_branch_derivatives`
    (one post-order + one pre-order sweep), then replays every canonical
    edge through the per-edge rerooted oracle on a shared
    :class:`~repro.inference.derivatives.DerivativeSession` and demands
    the triple match to the backend's declared parity class — exact for
    bit-identical backends. Also asserts the one-sweep operation count
    (``3n − 5``) beats the per-edge total (``(2n − 3)(n − 1)``), the
    linear-vs-quadratic claim the gradient bench reports. Any violation
    exits 1. With the GP100 resource the modelled
    :meth:`~repro.gpu.simulator.SimulatedDevice.time_gradient`
    economics are printed as well.
    """
    from ..core.planner import make_gradient_plan
    from ..inference.derivatives import (
        DerivativeSession,
        all_branch_derivatives,
        edge_log_likelihood_derivatives,
    )

    mode = "serial" if args.serial else "concurrent"
    n = args.taxa
    gplan = make_gradient_plan(tree, mode, verify=args.lint)
    per_edge_ops = (2 * n - 3) * (n - 1)
    print(
        f"gradient: one sweep = {gplan.n_operations} ops in "
        f"{gplan.n_launches} launches; per-edge reroots = "
        f"{per_edge_ops} ops over {2 * n - 3} edges",
        file=out,
    )
    if gplan.n_operations != 3 * n - 5 or gplan.n_operations >= per_edge_ops:
        print(
            f"error: one-sweep operation count {gplan.n_operations} is not "
            f"the linear 3n-5 = {3 * n - 5} below the per-edge "
            f"{per_edge_ops}",
            file=out,
        )
        return 1
    grad = all_branch_derivatives(
        tree, model, patterns, backend=args.backend, mode=mode
    )
    session = DerivativeSession(model, patterns, backend=args.backend)
    exact = info.parity == "bit-identical"
    mismatches = 0
    worst = 0.0
    for edge, got in zip(grad.edges, grad.derivatives):
        want = edge_log_likelihood_derivatives(
            tree, model, patterns, edge, session=session
        )
        triple_got = (got.log_likelihood, got.first, got.second)
        triple_want = (want.log_likelihood, want.first, want.second)
        if exact:
            ok = triple_got == triple_want
        else:
            gap = max(
                abs(g - w) for g, w in zip(triple_got, triple_want)
            )
            worst = max(worst, gap)
            ok = gap <= max(info.tolerance, 1e-6)
        if not ok:
            mismatches += 1
            print(
                f"gradient mismatch at edge {edge.name or edge!r}: "
                f"sweep {triple_got} vs reroot {triple_want}",
                file=out,
            )
    n_edges = len(grad.edges)
    if mismatches:
        print(
            f"gradient verified: FAILED ({mismatches}/{n_edges} edges "
            f"disagree with the per-edge reroot oracle)",
            file=out,
        )
        return 1
    bound = "exact" if exact else f"|delta| <= {max(worst, 0.0):.3g}"
    print(
        f"gradient verified: {n_edges}/{n_edges} edges match the "
        f"per-edge reroot oracle ({bound}; session instances: "
        f"{session.instances_created})",
        file=out,
    )
    if args.device_model:
        dims = WorkloadDims(args.sites, args.states, args.categories)
        timing = SimulatedDevice(GP100).time_gradient(
            tree, dims, mode, plan=gplan
        )
        print(
            f"modelled gradient: one sweep {timing.one_sweep.seconds * 1e6:.2f} us "
            f"vs per-edge {timing.per_edge.seconds * 1e6:.2f} us "
            f"(speedup {timing.speedup:.2f}, "
            f"{timing.launches_saved} launches saved)",
            file=out,
        )
    return 0


def _run_benchmark(args, out) -> int:
    """The benchmark proper (arguments already validated)."""
    topology = "pectinate" if args.pectinate else (
        "random" if args.randomtree else "balanced"
    )
    rng = np.random.default_rng(args.seed)
    tree = build_tree(topology, args.taxa, args.seed)
    for edge in tree.edges():
        edge.length = float(rng.exponential(0.1))
    original_sets = count_operation_sets(tree)
    if args.reroot:
        tree = optimal_reroot_fast(tree).tree

    model = random_gtr(rng)
    patterns = random_patterns(tree.tip_names(), args.sites, rng=rng)
    mode = "serial" if args.serial else "concurrent"
    scaling = args.manualscale
    plan = make_plan(tree, mode, scaling=scaling)
    instance = create_instance(
        tree, model, patterns, scaling=scaling, backend=args.backend
    )

    if args.lint:
        from ..analysis import audit_plan, verify_plan

        report = verify_plan(plan, instance=instance)
        audit = audit_plan(plan)
        print(
            f"lint: {len(report.errors)} error(s), "
            f"{len(report.warnings)} warning(s); launch gap vs rooting "
            f"bound {audit.gap_vs_rooting:+d}, vs reroot bound "
            f"{audit.gap_vs_reroot:+d}",
            file=out,
        )
        if not report.clean:
            print(report.format(), file=out)
        if not report.ok:
            return 1

    if args.races:
        from ..analysis import verify_races

        race_report = verify_races(plan, n_streams=args.streams)
        scope = "sets + matrix table"
        if args.streams:
            scope += f" + {args.streams}-stream schedule"
        print(
            f"races: {len(race_report.errors)} error(s) over "
            f"{plan.n_launches} operation set(s) ({scope})",
            file=out,
        )
        if not race_report.clean:
            print(race_report.format(), file=out)
        if not race_report.ok:
            return 1

    print("synthetictest (repro work-alike)", file=out)
    print(
        f"tree: type={topology}, taxa={args.taxa}, height={tree_height(tree)}, "
        f"rerooted={'yes' if args.reroot else 'no'}",
        file=out,
    )
    print(
        f"operation sets: {plan.n_launches} "
        f"(before rerooting: {original_sets}, serial: {args.taxa - 1})",
        file=out,
    )
    print(
        f"theoretical speedup vs serial: {tree_theoretical_speedup(tree):.2f}",
        file=out,
    )

    # One validated evaluation (both resources).
    loglik = execute_plan(instance, plan)
    print(f"logL: {loglik:.6f}", file=out)
    info = instance.backend.info
    print(f"kernel backend: {info.name} ({info.kind}, {info.parity})", file=out)

    if args.gradient:
        status = _run_gradient(args, tree, model, patterns, info, out)
        if status != 0:
            return status

    if args.fault_rate > 0.0 and not args.shards:
        # With --shards, --fault-rate feeds the shard-scoped chaos
        # stream inside _run_sharded_cpu instead of the launch injector.
        status = _run_with_faults(args, instance, plan, loglik, out)
        if status != 0:
            return status

    if args.partitions > 1:
        _report_partitions(args, tree, mode, scaling, out)

    dims = WorkloadDims(args.sites, args.states, args.categories)
    flops_per_eval = (args.taxa - 1) * dims.flops_per_operation

    if not args.device_model:
        if args.shards:
            return _run_sharded_cpu(
                args, tree, model, patterns, loglik, flops_per_eval, out
            )
        if args.serve:
            return _run_serve_cpu(
                args, tree, model, patterns, plan, scaling, loglik, out
            )
        if args.pool:
            return _run_pool_cpu(
                args, tree, model, patterns, plan, scaling, loglik,
                flops_per_eval, out,
            )
        # Measured CPU timing. Rescale factors recomputed every
        # --rescale-frequency reps: other reps run without scaling ops.
        cheap_plan = make_plan(tree, mode, scaling=False)
        start = time.perf_counter()
        for rep in range(args.reps):
            use_scaling = scaling and rep % max(args.rescale_frequency, 1) == 0
            engine = instance
            if args.deadline_ms is not None:
                engine = DeadlineGuard(
                    instance, Deadline(args.deadline_ms / 1e3)
                )
            try:
                execute_plan(engine, plan if use_scaling else cheap_plan)
            except DeadlineExceeded as exc:
                print(
                    f"error: {type(exc).__name__}: {exc} (rep {rep})",
                    file=out,
                )
                return 1
        elapsed = time.perf_counter() - start
        per_eval = elapsed / args.reps
        print(
            f"resource: CPU (NumPy engine, backend={info.name}), "
            f"reps={args.reps}",
            file=out,
        )
        print(f"time per evaluation: {per_eval * 1e3:.3f} ms", file=out)
        print(
            f"effective throughput: {flops_per_eval / per_eval / 1e9:.3f} GFLOPS",
            file=out,
        )
        if args.full_timing:
            print(f"kernel launches per evaluation: {plan.n_launches}", file=out)
            print(f"total wall time: {elapsed:.3f} s", file=out)
    else:
        device = SimulatedDevice(GP100)
        if args.streams:
            from ..gpu.streams import streams_time_set_sizes

            timing = streams_time_set_sizes(
                GP100, dims, plan.set_sizes, args.streams
            )
            mechanism = f"streams (S={args.streams})"
        else:
            timing = device.time_plan(plan, dims)
            mechanism = "multi-operation kernel"
        serial_seconds = device.time_tree(tree, dims, "serial").seconds
        print(f"resource: {GP100.name} (analytical model)", file=out)
        print(f"concurrency mechanism: {mechanism}", file=out)
        print(f"time per evaluation: {timing.seconds * 1e6:.2f} us (modelled)", file=out)
        print(f"effective throughput: {timing.gflops:.2f} GFLOPS (modelled)", file=out)
        print(
            f"speedup vs serial launches: {serial_seconds / timing.seconds:.2f}",
            file=out,
        )
        if args.full_timing:
            print("per-launch breakdown (ops, waves, us):", file=out)
            for i, launch in enumerate(timing.launches):
                print(
                    f"  launch {i:3d}: {launch.n_operations:4d} ops, "
                    f"{launch.n_waves:3d} waves, {launch.seconds * 1e6:7.2f} us",
                    file=out,
                )
        if args.fault_rate > 0.0 and args.resilience != "none":
            spec = FaultSpec(rate=args.fault_rate, seed=args.fault_seed)
            r_timing, r_stats = device.time_plan_resilient(
                plan, dims, spec, _resilience_policy(args.resilience)
            )
            print(
                f"modelled resilient time: {r_timing.seconds * 1e6:.2f} us "
                f"({r_timing.n_launches} launches incl. retries, "
                f"overhead {r_timing.seconds / timing.seconds - 1:+.1%})",
                file=out,
            )
            print(f"modelled {r_stats.format()}", file=out)
        if args.pool:
            mech = "streams" if args.streams else "kernel"
            p_timing = device.time_pool(
                plan,
                dims,
                args.reps,
                args.pool,
                worker_fault_specs=_worker_fault_specs(args),
                policy=_resilience_policy(args.resilience),
                mechanism=mech,
                n_streams=args.streams or 4,
            )
            print(
                f"modelled pool: {args.pool} workers, {args.reps} jobs -> "
                f"makespan {p_timing.seconds * 1e3:.3f} ms, "
                f"{p_timing.throughput:.1f} jobs/s "
                f"(completed {p_timing.completed}, surfaced "
                f"{p_timing.surfaced}, rerouted {p_timing.rerouted}, "
                f"evicted {list(p_timing.evicted)})",
                file=out,
            )
            if args.full_timing:
                print("modelled degraded-fleet curve (evicted, jobs/s):", file=out)
                curve = device.degraded_fleet_curve(
                    plan, dims, args.reps, args.pool,
                    mechanism=mech, n_streams=args.streams or 4,
                )
                for evicted_count, throughput in curve:
                    print(
                        f"  {evicted_count:3d} evicted: {throughput:10.1f}",
                        file=out,
                    )
    return 0


def _run_pool_cpu(
    args, tree, model, patterns, plan, scaling, reference_loglik,
    flops_per_eval, out,
) -> int:
    """Dispatch ``--reps`` evaluations across a supervised worker pool.

    Each repetition is an independent job evaluating a fresh engine
    instance (the shape of a bootstrap replicate or candidate tree). The
    serial fault-free likelihood is the oracle: every completed job must
    reproduce it bit-for-bit regardless of which workers faulted, were
    circuit-broken, or were evicted along the way, and the pool's ledger
    must balance. Any miss is a nonzero exit — this is the contract the
    CI soak job gates on.
    """

    def make_case():
        instance = create_instance(
            tree, model, patterns, scaling=scaling, backend=args.backend
        )
        return instance, plan

    pool = LikelihoodPool(
        args.pool,
        policy=_resilience_policy(args.resilience),
        worker_fault_specs=_worker_fault_specs(args),
        deadline_s=(
            args.deadline_ms / 1e3 if args.deadline_ms is not None else None
        ),
        health_check_every=args.pool_health_every,
        executor="inline" if args.pool_inline else "thread",
        sanitize=args.sanitize,
    )
    start = time.perf_counter()
    for rep in range(args.reps):
        pool.submit_case(make_case, label=f"rep-{rep}")
    outcomes = pool.drain()
    elapsed = time.perf_counter() - start
    stats = pool.stats()
    from ..obs import get_recorder

    if get_recorder().enabled:
        # Ledger identities become gauges (repro_pool_*), including the
        # imbalance count itself — see PoolStats.explain().
        record_pool_stats(stats)

    per_eval = elapsed / args.reps
    print(
        f"resource: CPU pool ({args.pool} workers, "
        f"{'inline' if args.pool_inline else 'threaded'} executor), "
        f"reps={args.reps}",
        file=out,
    )
    print(f"time per evaluation: {per_eval * 1e3:.3f} ms", file=out)
    print(
        f"effective throughput: {flops_per_eval / per_eval / 1e9:.3f} GFLOPS",
        file=out,
    )
    print(f"pool {stats.format()}", file=out)
    if args.full_timing:
        print(f"kernel launches per evaluation: {plan.n_launches}", file=out)
        print(f"total wall time: {elapsed:.3f} s", file=out)
        print(stats.explain(), file=out)

    status = 0
    for outcome in outcomes:
        if not outcome.ok:
            print(
                f"error: job {outcome.label} {outcome.status} "
                f"(cause={outcome.cause}, attempts={outcome.attempts}): "
                f"{outcome.error}",
                file=out,
            )
            status = 1
        elif outcome.value != reference_loglik:
            print(
                f"error: job {outcome.label} logL {outcome.value!r} does "
                f"not match serial fault-free logL {reference_loglik!r}",
                file=out,
            )
            status = 1
    imbalances = stats.imbalances()
    if imbalances:
        for imbalance in imbalances:
            print(f"error: ledger imbalance: {imbalance}", file=out)
        status = 1
    if args.sanitize and pool.detector is not None:
        print(f"sanitizer: {pool.detector.format()}", file=out)
        if not pool.sanitizer_clean:
            status = 1
    if status == 0:
        print(
            f"pool verified: {stats.completed}/{args.reps} jobs "
            f"bit-identical to serial, ledger balanced",
            file=out,
        )
    return status


def _run_serve_cpu(
    args, tree, model, patterns, plan, scaling, reference_loglik, out
) -> int:
    """Replay a seeded multi-tenant trace through the likelihood server.

    The overload chaos soak: arrivals (optionally a hot-tenant burst
    storm) flow through admission, deficit-round-robin fairness,
    cross-request coalescing and brownout into the supervised pool,
    with per-worker fault streams from ``--worker-fault-rates``. Three
    gates, any miss a nonzero exit:

    * every served logL bit-identical to the serial fault-free
      reference (the server's ``verify`` gate recomputes each one);
    * the serve ledger balances and is fully drained;
    * every offered request is accounted: terminal outcomes plus typed
      rejections equal offers — no silent drops.
    """
    from ..obs import record_serve_stats
    from ..serve import (
        AdmissionConfig,
        CoalescePolicy,
        FairnessConfig,
        LikelihoodServer,
        RequestDims,
        burst_storm,
        replay,
        steady_trace,
    )

    def make_case():
        instance = create_instance(
            tree, model, patterns, scaling=scaling, backend=args.backend
        )
        return instance, plan

    pool = LikelihoodPool(
        args.pool,
        policy=_resilience_policy(args.resilience),
        worker_fault_specs=_worker_fault_specs(args),
        health_check_every=args.pool_health_every,
        executor="inline" if args.pool_inline else "thread",
        sanitize=args.sanitize,
    )
    server = LikelihoodServer(
        pool,
        admission=AdmissionConfig(
            max_queued=args.serve_queue, tenant_quota=args.serve_quota
        ),
        fairness=FairnessConfig(in_flight_cap=4 * args.pool),
        coalesce=CoalescePolicy(
            mode=args.serve_mode,
            max_width=args.serve_width,
            enabled=args.serve_width > 1,
        ),
        verify=True,
        jitter_seed=args.seed,
    )
    dims = RequestDims(
        state_count=4,
        pattern_count=patterns.n_patterns,
        category_count=args.categories,
    )
    budget = (
        args.serve_deadline_ms / 1e3
        if args.serve_deadline_ms is not None
        else None
    )
    if args.serve_storm:
        arrivals = burst_storm(
            args.seed,
            n_tenants=args.serve_tenants,
            n_requests=args.serve,
            budget_s=budget,
            hot_tenants=max(1, args.serve_tenants // 4),
        )
    else:
        arrivals = steady_trace(
            args.seed,
            n_tenants=args.serve_tenants,
            n_requests=args.serve,
            budget_s=budget,
        )
    start = time.perf_counter()
    outcomes, rejections = replay(
        server,
        arrivals,
        lambda arrival: make_case,
        dims=dims,
        step_every=max(1, args.serve_queue // 4),
    )
    elapsed = time.perf_counter() - start
    ledger = server.ledger
    from ..obs import get_recorder

    if get_recorder().enabled:
        record_serve_stats(ledger)
        record_pool_stats(pool.stats())

    trace_kind = "burst-storm" if args.serve_storm else "steady"
    print(
        f"resource: CPU serve ({args.pool} workers, "
        f"{'inline' if args.pool_inline else 'threaded'} executor), "
        f"{args.serve} requests / {args.serve_tenants} tenants "
        f"({trace_kind} trace)",
        file=out,
    )
    served = [o for o in outcomes if o.ok]
    if served:
        waits = sorted(o.wait_s for o in served)
        p50 = waits[len(waits) // 2]
        p99 = waits[min(len(waits) - 1, int(len(waits) * 0.99))]
        print(
            f"served {len(served)} in {elapsed:.3f} s "
            f"({len(served) / elapsed:.1f} req/s), latency "
            f"p50 {p50 * 1e3:.2f} ms p99 {p99 * 1e3:.2f} ms",
            file=out,
        )
    print(ledger.format(), file=out)
    if ledger.rejected_by_reason:
        print(f"rejections by reason: {ledger.rejected_by_reason}", file=out)
    if ledger.shed_by_cause:
        print(f"sheds by cause: {ledger.shed_by_cause}", file=out)
    print(f"pool {pool.stats().format()}", file=out)
    if args.full_timing:
        print(ledger.explain(), file=out)

    status = 0
    for outcome in served:
        if outcome.value != reference_loglik:
            print(
                f"error: request {outcome.label} logL {outcome.value!r} "
                f"does not match serial logL {reference_loglik!r}",
                file=out,
            )
            status = 1
        if outcome.verified is False:
            print(
                f"error: request {outcome.label} failed the serial "
                "bit-identity verify gate",
                file=out,
            )
            status = 1
    for imbalance in ledger.imbalances():
        print(f"error: serve ledger imbalance: {imbalance}", file=out)
        status = 1
    if not ledger.drained():
        print(
            f"error: server not drained (queued={ledger.queued}, "
            f"in_flight={ledger.in_flight})",
            file=out,
        )
        status = 1
    if len(outcomes) + len(rejections) != ledger.offered:
        print(
            f"error: silent drop: {ledger.offered} offered but "
            f"{len(outcomes)} outcomes + {len(rejections)} rejections",
            file=out,
        )
        status = 1
    if status == 0:
        print(
            f"serve verified: {ledger.served}/{ledger.offered} served "
            f"bit-identical to serial, ledger balanced, no silent drops "
            f"(coalesced {ledger.coalesced_requests} requests into "
            f"{ledger.coalesced_launches} shared launches)",
            file=out,
        )
    return status


def _run_sharded_cpu(
    args, tree, model, patterns, serial_loglik, flops_per_eval, out
) -> int:
    """Sharded data-parallel evaluation with hard correctness gates.

    The site patterns are split into ``--shards`` weighted shards, fanned
    through a supervised worker pool, and recombined with the
    deterministic reduction tree. Gates (any miss is a nonzero exit —
    the CI ``shard-soak`` job greps for the ``shard verified`` line):

    * the sharded logL equals :meth:`reference_log_likelihood`
      (single-instance oracle, same reduction) **bit-for-bit**, however
      many shards faulted, retried, or speculated;
    * it also matches the serial BLAS-reduced logL to 1e-9 (the two
      reductions differ only by float-summation reassociation);
    * the shard ledger and the pool ledger both balance;
    * after a ``--shard-abort-after`` crash drill (or an explicit
      ``--shard-resume``), ``recomputed_completed`` stays zero — no
      finished shard is ever re-executed.
    """
    from ..exec.faults import ShardFaultSpec
    from ..exec.sharding import ShardAborted, ShardedLikelihood

    fault_rate = (
        args.shard_fault_rate
        if args.shard_fault_rate is not None
        else args.fault_rate
    )
    spec = (
        ShardFaultSpec(rate=fault_rate, seed=args.fault_seed)
        if fault_rate > 0.0
        else None
    )
    n_workers = args.pool or 2
    pool = LikelihoodPool(
        n_workers,
        policy=_resilience_policy(args.resilience),
        worker_fault_specs=_worker_fault_specs(args),
        deadline_s=(
            args.deadline_ms / 1e3 if args.deadline_ms is not None else None
        ),
        health_check_every=args.pool_health_every,
        executor="inline" if args.pool_inline else "thread",
        sanitize=args.sanitize,
    )

    def make_engine(resume: bool, abort_after: Optional[int]):
        return ShardedLikelihood(
            tree,
            model,
            patterns,
            n_shards=args.shards,
            pool=pool,
            retries=args.shard_retries,
            speculate=args.shard_speculate,
            checkpoint_path=args.shard_checkpoint,
            resume=resume,
            abort_after=abort_after,
            fault_spec=spec,
            backend=args.backend,
        )

    resumed_run = args.shard_resume
    if args.shard_abort_after is not None:
        # Crash drill: run until --shard-abort-after shards are
        # checkpointed, "crash", then resume the real run below.
        drill = make_engine(resume=args.shard_resume, abort_after=args.shard_abort_after)
        try:
            drill.evaluate()
        except ShardAborted as exc:
            print(f"crash drill: {exc}", file=out)
            resumed_run = True
        except ExecutionError as exc:
            print(f"error: crash drill failed: {type(exc).__name__}: {exc}", file=out)
            return 1
        else:
            print(
                "crash drill: note: all shards completed before the "
                "abort point; resume gate still applies",
                file=out,
            )
            resumed_run = True

    engine = make_engine(resume=resumed_run, abort_after=None)
    start = time.perf_counter()
    try:
        value = engine.log_likelihood()
    except ExecutionError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=out)
        return 1
    elapsed = time.perf_counter() - start
    ledger = engine.ledger

    print(
        f"resource: CPU sharded ({engine.n_shards} shards over "
        f"{n_workers} workers, "
        f"{'inline' if args.pool_inline else 'threaded'} executor)",
        file=out,
    )
    print(f"time per evaluation: {elapsed * 1e3:.3f} ms", file=out)
    print(
        f"effective throughput: {flops_per_eval / elapsed / 1e9:.3f} GFLOPS",
        file=out,
    )
    print(
        f"shard throughput: {patterns.n_patterns / elapsed / 1e3:.1f} "
        f"kpatterns/s",
        file=out,
    )
    print(ledger.format(), file=out)
    if args.full_timing:
        print(f"kernel launches per evaluation: {engine.n_launches}", file=out)
        pool_stats = pool.stats()
        print(f"pool {pool_stats.format()}", file=out)

    status = 0
    reference = engine.reference_log_likelihood()
    if value != reference:
        print(
            f"error: sharded logL {value!r} is not bit-identical to the "
            f"single-instance reference {reference!r}",
            file=out,
        )
        status = 1
    if not math.isclose(value, serial_loglik, rel_tol=0.0, abs_tol=1e-9):
        print(
            f"error: sharded logL {value!r} diverges from the serial "
            f"logL {serial_loglik!r} beyond reassociation tolerance",
            file=out,
        )
        status = 1
    for imbalance in ledger.imbalances():
        print(f"error: shard ledger imbalance: {imbalance}", file=out)
        status = 1
    for imbalance in pool.stats().imbalances():
        print(f"error: pool ledger imbalance: {imbalance}", file=out)
        status = 1
    if resumed_run and ledger.recomputed_completed != 0:
        print(
            f"error: {ledger.recomputed_completed} checkpointed shard(s) "
            f"were recomputed after resume",
            file=out,
        )
        status = 1
    if resumed_run and args.shard_abort_after is not None and ledger.resumed == 0:
        print("error: resume restored no shards from the checkpoint", file=out)
        status = 1
    if args.sanitize and pool.detector is not None:
        print(f"sanitizer: {pool.detector.format()}", file=out)
        if not pool.sanitizer_clean:
            status = 1
    if status == 0:
        resumed_note = (
            f", resumed {ledger.resumed} shard(s) without recomputation"
            if resumed_run
            else ""
        )
        print(
            f"shard verified: {engine.n_shards} shards bit-identical to "
            f"reference, ledgers balanced{resumed_note}",
            file=out,
        )
    return status


def _run_with_faults(args, instance, plan, reference_loglik, out) -> int:
    """Re-run the evaluation under injected faults; verify recovery.

    The fault-free likelihood is the oracle: a recovered run must
    reproduce it (retries recompute the same arithmetic, so agreement is
    expected to the last bit; the check allows rounding slack for the
    degraded/rescued paths, which batch differently).
    """
    spec = FaultSpec(rate=args.fault_rate, seed=args.fault_seed)
    engine = FaultInjector(instance, spec)
    policy = _resilience_policy(args.resilience)
    resilient = None
    if policy is not None:
        engine = resilient = ResilientInstance(engine, policy)
    try:
        if resilient is not None:
            fault_loglik = resilient.execute(plan)
        else:
            fault_loglik = execute_plan(engine, plan)
    except ExecutionError as exc:
        print(
            f"fault run failed: {type(exc).__name__}: {exc} "
            f"(resilience={args.resilience})",
            file=out,
        )
        return 1
    print(
        f"logL under faults: {fault_loglik:.6f} "
        f"(rate={args.fault_rate}, fault-seed={args.fault_seed}, "
        f"resilience={args.resilience})",
        file=out,
    )
    if resilient is not None:
        print(resilient.fault_stats.format(), file=out)
    if not math.isclose(fault_loglik, reference_loglik, rel_tol=1e-9, abs_tol=1e-9):
        print(
            f"error: recovered logL {fault_loglik!r} does not match "
            f"fault-free logL {reference_loglik!r}",
            file=out,
        )
        return 1
    return 0


def _report_partitions(args, tree, mode, scaling, out) -> None:
    """Evaluate the dataset split into equal partitions (§IV-A)."""
    from ..data import random_patterns
    from ..partition import DataPartition, PartitionedDataset, PartitionedLikelihood

    rng = np.random.default_rng(args.seed + 1)
    per_partition = max(args.sites // args.partitions, 1)
    taxa = sorted(tree.tip_names())
    partitions = [
        DataPartition(
            name=f"part{i + 1}",
            patterns=random_patterns(taxa, per_partition, rng=rng),
            model=random_gtr(rng),
        )
        for i in range(args.partitions)
    ]
    pl = PartitionedLikelihood(
        tree, PartitionedDataset(partitions), scaling=scaling, mode=mode
    )
    print(
        f"partitions: {args.partitions} x {per_partition} patterns, "
        f"joint logL: {pl.log_likelihood():.6f}",
        file=out,
    )
    sequential = pl.device_timing(concurrent_partitions=False)
    merged = pl.device_timing(concurrent_partitions=True)
    print(
        f"partition launches: {sequential.n_launches} sequential -> "
        f"{merged.n_launches} merged "
        f"(modelled speedup {sequential.seconds / merged.seconds:.2f})",
        file=out,
    )


def main() -> None:  # pragma: no cover - console entry point
    """Console entry point."""
    raise SystemExit(run())


if __name__ == "__main__":  # pragma: no cover
    main()
