"""One-shot reproduction runner.

``python -m repro.bench.reproduce [--full] [--out DIR]`` regenerates the
paper's headline tables and figures without pytest — the quickest way for
a reader to see the reproduction end to end. The pytest benchmarks in
``benchmarks/`` remain the canonical, asserted versions; this runner
reuses the same harness functions and writes the same artefact formats.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from ..core import count_operation_sets, optimal_reroot_fast
from ..gpu import GP100, SimulatedDevice, WorkloadDims
from ..trees import random_attachment_tree
from .harness import run_case, sweep_random_trees
from .asciiplot import Series, ascii_plot
from .tables import format_table, summarize_interval

__all__ = ["main", "run"]


def _emit(out_dir: Path, name: str, text: str, stream) -> None:
    (out_dir / name).write_text(text)
    print(text, file=stream)


def reproduce_fig4(out_dir: Path, n_trees: int, stream) -> None:
    """Figure 4: launch counts of 256-OTU random trees before/after rerooting."""
    pairs = []
    for seed in range(1, n_trees + 1):
        tree = random_attachment_tree(256, seed)
        before = count_operation_sets(tree)
        after = optimal_reroot_fast(tree).operation_sets
        pairs.append((before, after))
    before = np.array([b for b, _ in pairs])
    after = np.array([a for _, a in pairs])
    rows = [
        {"statistic": "trees", "value": n_trees},
        {"statistic": "launches before", "value": summarize_interval(before.tolist())},
        {"statistic": "launches after", "value": summarize_interval(after.tolist())},
        {"statistic": "mean reduction", "value": f"{float(np.mean(before / after)):.2f}x"},
    ]
    text = format_table(rows, title="Figure 4: launches before/after rerooting")
    diag = list(range(int(before.min()), int(before.max()) + 1, 2))
    text += "\n" + ascii_plot(
        [Series(diag, diag, ".", "no change"), Series(before.tolist(), after.tolist(), "o", "tree")],
        xlabel="launches, original rooting",
        ylabel="launches, rerooted",
    )
    _emit(out_dir, "reproduce_fig4.md", text, stream)


def reproduce_table3(out_dir: Path, n_random: int, stream) -> None:
    """Table III: theoretical and modelled speedups at 64 OTUs, 512 patterns."""
    balanced = run_case("balanced", 64, 512)
    pectinate = run_case("pectinate", 64, 512)
    rerooted = run_case("pectinate", 64, 512, reroot=True)
    random_plain = sweep_random_trees(64, n_random, 512)
    random_reroot = sweep_random_trees(64, n_random, 512, reroot=True)
    rows = []
    for label, cases in [
        ("balanced", [balanced]),
        ("pectinate", [pectinate]),
        ("pectinate rerooted", [rerooted]),
        ("random", random_plain),
        ("random rerooted", random_reroot),
    ]:
        theory = [c.theoretical_speedup for c in cases]
        model = [c.model_speedup for c in cases]
        rows.append(
            {
                "topology type": label,
                "theoretical": summarize_interval(theory)
                if len(cases) > 1
                else f"{theory[0]:.2f}",
                "GP100 model": summarize_interval(model)
                if len(cases) > 1
                else f"{model[0]:.2f}",
            }
        )
    _emit(
        out_dir,
        "reproduce_table3.md",
        format_table(rows, title="Table III: speedups, 64 OTUs, 512 patterns"),
        stream,
    )


def reproduce_fig6(out_dir: Path, sizes: List[int], n_random: int, stream) -> None:
    """Figure 6: modelled speedup versus tree size for each topology class."""
    device = SimulatedDevice(GP100)
    dims = WorkloadDims(patterns=512, states=4)
    rows = []
    lines = {"balanced": [], "pectinate": [], "pectinate rerooted": [], "random": []}
    for n in sizes:
        balanced = run_case("balanced", n, 512)
        pectinate = run_case("pectinate", n, 512)
        rerooted = run_case("pectinate", n, 512, reroot=True)
        sample = sweep_random_trees(n, n_random, 512)
        median_random = float(np.median([c.gflops for c in sample]))
        lines["balanced"].append(balanced.gflops)
        lines["pectinate"].append(pectinate.gflops)
        lines["pectinate rerooted"].append(rerooted.gflops)
        lines["random"].append(median_random)
        rows.append(
            {
                "otus": n,
                "balanced": f"{balanced.gflops:.2f}",
                "pectinate": f"{pectinate.gflops:.2f}",
                "pectinate rerooted": f"{rerooted.gflops:.2f}",
                "random median": f"{median_random:.2f}",
            }
        )
    text = format_table(rows, title="Figure 6: throughput vs tree size")
    text += "\n" + ascii_plot(
        [
            Series(sizes, lines["balanced"], "B", "balanced"),
            Series(sizes, lines["random"], "r", "random"),
            Series(sizes, lines["pectinate rerooted"], "P", "pect rerooted"),
            Series(sizes, lines["pectinate"], "p", "pectinate"),
        ],
        xlabel="tips (log)",
        ylabel="GFLOPS",
        logx=True,
    )
    _emit(out_dir, "reproduce_fig6.md", text, stream)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the reproduce CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-reproduce",
        description="Regenerate the paper's headline tables and figures.",
    )
    parser.add_argument(
        "--full", action="store_true", help="paper-scale sample sizes (slower)"
    )
    parser.add_argument(
        "--out", default="bench_results", help="output directory for artefacts"
    )
    return parser


def run(argv: Optional[List[str]] = None, stream=None) -> int:
    """Regenerate the requested artefacts; returns a process exit code."""
    stream = stream or sys.stdout
    args = build_parser().parse_args(argv)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    n_trees = 100 if args.full else 30
    sizes = [16, 64, 256, 1024, 4096] if args.full else [16, 64, 256, 1024]
    print("Reproducing headline results (see benchmarks/ for the full set)\n", file=stream)
    reproduce_fig4(out_dir, n_trees, stream)
    reproduce_table3(out_dir, n_trees, stream)
    reproduce_fig6(out_dir, sizes, max(n_trees // 3, 5), stream)
    print(f"\nartefacts written to {out_dir}/", file=stream)
    return 0


def main() -> None:  # pragma: no cover - console entry point
    """Console entry point."""
    raise SystemExit(run())


if __name__ == "__main__":  # pragma: no cover
    main()
