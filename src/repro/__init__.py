"""repro — rerooting trees for concurrent phylogenetic likelihoods.

A from-scratch Python reproduction of Ayres & Cummings (IPDPSW 2018),
"Rerooting Trees Increases Opportunities for Concurrent Computation and
Results in Markedly Improved Performance for Phylogenetic Inference".

Subpackages
-----------
``repro.trees``
    Bifurcating trees, Newick IO, topology generators, traversals,
    rerooting mechanics.
``repro.data``
    Alphabets, alignments, site-pattern compression, sequence simulation.
``repro.models``
    Reversible substitution models (DNA/AA/codon) and rate heterogeneity.
``repro.beagle``
    The BEAGLE-work-alike likelihood engine: buffers, operations,
    vectorised single- and multi-operation kernels, rescaling.
``repro.core``
    The paper's contribution: operation-set construction, theoretical
    speedup bounds, exhaustive and O(n) optimal rerooting, execution
    planning.
``repro.gpu``
    Simulated GPU device model (launch overhead + wave-quantised
    saturation) standing in for the paper's Quadro GP100.
``repro.exec``
    Resilient execution: seeded fault injection, retry/degrade/rescale
    policies, checkpointed MCMC.
``repro.inference``
    TreeLikelihood facade, branch-length optimisation, Metropolis MCMC.
``repro.bench``
    The ``synthetictest`` CLI work-alike and benchmark harness.

Quick start
-----------
>>> from repro import TreeLikelihood, pectinate_tree, JC69
>>> from repro.data import simulate_alignment
>>> tree = pectinate_tree(64, branch_length=0.1)
>>> aln = simulate_alignment(tree, JC69(), 512, seed=1)
>>> serial = TreeLikelihood(tree, JC69(), aln, mode="serial")
>>> rerooted = TreeLikelihood(tree, JC69(), aln, reroot="fast")
>>> round(serial.log_likelihood(), 6) == round(rerooted.log_likelihood(), 6)
True
>>> serial.n_launches, rerooted.n_launches
(63, 32)
"""

from .trees import (
    Tree,
    Node,
    balanced_tree,
    coalescent_tree,
    parse_newick,
    pectinate_tree,
    random_attachment_tree,
    reroot_on_edge,
    write_newick,
    yule_tree,
)
from .models import GTR, GY94, HKY85, JC69, K80, Poisson, discrete_gamma
from .data import Alignment, compress, random_patterns, simulate_alignment
from .beagle import BeagleInstance
from .core import (
    count_operation_sets,
    optimal_reroot_exhaustive,
    optimal_reroot_fast,
    rerooted_speedup_interval,
    speedup_balanced,
    speedup_pectinate_rerooted,
    tree_theoretical_speedup,
)
from .errors import ParseError
from .exec import (
    AllocationError,
    DeviceFault,
    ExecutionError,
    FaultInjector,
    FaultSpec,
    FaultStats,
    MCMCCheckpoint,
    NumericalError,
    ResilientInstance,
    RetryPolicy,
)
from .gpu import GP100, DeviceSpec, SimulatedDevice, simulated_speedup
from .inference import TreeLikelihood, optimize_branch_lengths, run_mcmc

__version__ = "1.0.0"

__all__ = [
    "Tree",
    "Node",
    "parse_newick",
    "write_newick",
    "balanced_tree",
    "pectinate_tree",
    "random_attachment_tree",
    "yule_tree",
    "coalescent_tree",
    "reroot_on_edge",
    "JC69",
    "K80",
    "HKY85",
    "GTR",
    "GY94",
    "Poisson",
    "discrete_gamma",
    "Alignment",
    "compress",
    "random_patterns",
    "simulate_alignment",
    "BeagleInstance",
    "count_operation_sets",
    "optimal_reroot_exhaustive",
    "optimal_reroot_fast",
    "speedup_balanced",
    "speedup_pectinate_rerooted",
    "rerooted_speedup_interval",
    "tree_theoretical_speedup",
    "ParseError",
    "ExecutionError",
    "DeviceFault",
    "AllocationError",
    "NumericalError",
    "FaultSpec",
    "FaultInjector",
    "RetryPolicy",
    "FaultStats",
    "ResilientInstance",
    "MCMCCheckpoint",
    "DeviceSpec",
    "GP100",
    "SimulatedDevice",
    "simulated_speedup",
    "TreeLikelihood",
    "optimize_branch_lengths",
    "run_mcmc",
    "__version__",
]
