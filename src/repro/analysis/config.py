"""Buffer-layout configuration the analyzer checks plans against.

A :class:`BufferConfig` is the static shape of a
:class:`~repro.beagle.instance.BeagleInstance` — how many tip, partials,
matrix and scale buffers exist — without any of the data. The dataflow
engine range-checks every operation against it, so a plan can be proven
compatible with an instance *before* the instance is ever built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..beagle.instance import BeagleInstance
    from ..trees import Tree

__all__ = ["BufferConfig"]


@dataclass(frozen=True)
class BufferConfig:
    """Static buffer layout of a likelihood instance.

    Mirrors the constructor arguments of
    :class:`~repro.beagle.instance.BeagleInstance`: tips occupy buffer
    indices ``0 .. tip_count-1``, internal partials
    ``tip_count .. tip_count+partials_buffer_count-1``. When manual
    scaling is on, the last scale buffer is reserved for the cumulative
    log factors (see :mod:`repro.core.planner`), so operations may only
    write slots ``0 .. scale_buffer_count-2``.
    """

    tip_count: int
    partials_buffer_count: int
    matrix_count: int
    scale_buffer_count: int = 0

    @property
    def n_buffers(self) -> int:
        """Total partials-addressable buffers (tips + internals)."""
        return self.tip_count + self.partials_buffer_count

    @property
    def cumulative_scale(self) -> Optional[int]:
        """Reserved cumulative scale slot, or ``None`` without scaling."""
        if self.scale_buffer_count <= 0:
            return None
        return self.scale_buffer_count - 1

    def is_tip(self, buffer_index: int) -> bool:
        """Is ``buffer_index`` a tip buffer?"""
        return 0 <= buffer_index < self.tip_count

    def is_internal(self, buffer_index: int) -> bool:
        """Is ``buffer_index`` an internal-partials buffer?"""
        return self.tip_count <= buffer_index < self.n_buffers

    def valid_read(self, buffer_index: int) -> bool:
        """Is ``buffer_index`` readable at all?"""
        return 0 <= buffer_index < self.n_buffers

    def valid_matrix(self, matrix_index: int) -> bool:
        """Is ``matrix_index`` within the matrix bank?"""
        return 0 <= matrix_index < self.matrix_count

    @classmethod
    def for_tree(cls, tree: "Tree", *, scaling: bool = False) -> "BufferConfig":
        """The layout :func:`repro.core.planner.create_instance` builds.

        ``n`` tips, ``n − 1`` internal partials, ``2n − 1`` matrices and
        — with scaling — ``n`` scale buffers (``n − 1`` per-node slots
        plus the reserved cumulative slot).
        """
        n = tree.n_tips
        return cls(
            tip_count=n,
            partials_buffer_count=n - 1,
            matrix_count=2 * n - 1,
            scale_buffer_count=n if scaling else 0,
        )

    @classmethod
    def from_instance(cls, instance: "BeagleInstance") -> "BufferConfig":
        """The layout of an already-constructed engine instance."""
        return cls(
            tip_count=instance.tip_count,
            partials_buffer_count=instance.partials_buffer_count,
            matrix_count=instance.matrix_buffer_count,
            scale_buffer_count=instance.scale.count,
        )
