"""``python -m repro.analysis`` — lint an execution plan statically.

Builds a plan from either a Newick file or ``synthetictest``-style
topology flags, runs the static verifier and the schedule auditor, and
exits nonzero when any error-severity diagnostic is found::

    python -m repro.analysis --newick tree.nwk
    python -m repro.analysis --taxa 64 --pectinate --reroot --mode level
    python -m repro.analysis --self-check

``--self-check`` runs the analyzer's own acceptance gate: every plan the
library's planners produce for a pectinate/balanced/random trio must
verify clean, and every seeded corruption of those plans must be
flagged. It is the CI entry point for the analyzer itself.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, TextIO

import numpy as np

from ..core.planner import ExecutionPlan, make_plan
from ..trees.newick import parse_newick
from .audit import audit_plan
from .mutate import seed_mutations
from .verifier import verify_plan

__all__ = ["build_parser", "run", "main"]

MODES = ("serial", "concurrent", "level")
SELF_CHECK_TOPOLOGIES = ("pectinate", "balanced", "random")


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the static-analysis CLI."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Statically verify and audit a likelihood execution "
        "plan without executing it.",
    )
    source = parser.add_argument_group("plan source")
    source.add_argument(
        "--newick", metavar="FILE", help="build the plan from a Newick tree file"
    )
    source.add_argument(
        "--taxa", type=int, default=16, help="synthetic tree size (default 16)"
    )
    source.add_argument(
        "--pectinate", action="store_true", help="synthetic pectinate topology"
    )
    source.add_argument(
        "--randomtree", action="store_true", help="synthetic random topology"
    )
    source.add_argument(
        "--seed", type=int, default=1, help="seed for --randomtree"
    )
    plan = parser.add_argument_group("plan construction")
    plan.add_argument(
        "--mode",
        choices=MODES,
        default="concurrent",
        help="scheduling mode (default: concurrent)",
    )
    plan.add_argument(
        "--reroot", action="store_true", help="optimally reroot before planning"
    )
    plan.add_argument(
        "--manualscale",
        action="store_true",
        help="plan with per-operation rescaling",
    )
    parser.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the schedule-quality audit",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="verify the analyzer itself: planner plans clean, seeded "
        "mutations flagged, on a pectinate/balanced/random trio",
    )
    parser.add_argument(
        "--docstrings",
        action="store_true",
        help="docstring-coverage gate: every public function/class/method "
        "in src/repro must have a docstring or an allowlist entry",
    )
    parser.add_argument(
        "--docstrings-root",
        metavar="DIR",
        default=None,
        help="package root to scan with --docstrings "
        "(default: the installed repro package)",
    )
    parser.add_argument(
        "--allowlist",
        metavar="FILE",
        default=None,
        help="allowlist file for --docstrings "
        "(default: docstring_allowlist.txt next to the repo's src/)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="only print the verdict"
    )
    return parser


def _build_plan(args: argparse.Namespace) -> ExecutionPlan:
    if args.newick:
        with open(args.newick) as handle:
            tree = parse_newick(handle.read())
        if not tree.is_bifurcating():
            tree.resolve_multifurcations()
    else:
        from ..bench.harness import build_tree

        topology = "pectinate" if args.pectinate else (
            "random" if args.randomtree else "balanced"
        )
        tree = build_tree(topology, args.taxa, args.seed)
        rng = np.random.default_rng(args.seed)
        for edge in tree.edges():
            edge.length = float(rng.exponential(0.1))
    if args.reroot:
        from ..core.reroot_opt import optimal_reroot_fast

        tree = optimal_reroot_fast(tree).tree
    return make_plan(tree, args.mode, scaling=args.manualscale)


def _lint(args: argparse.Namespace, out: TextIO) -> int:
    plan = _build_plan(args)
    report = verify_plan(plan)
    print(
        f"plan: {plan.tree.n_tips} tips, mode={plan.mode}, "
        f"{plan.n_operations} operations in {plan.n_launches} sets, "
        f"scaling={'on' if plan.scaling else 'off'}",
        file=out,
    )
    if not args.quiet and not report.clean:
        print(report.format(), file=out)
    n_err, n_warn = len(report.errors), len(report.warnings)
    if not args.no_audit:
        print(audit_plan(plan).format(), file=out)
    if report.ok:
        print(
            f"verdict: plan verifies clean ({n_warn} warning(s))", file=out
        )
        return 0
    print(f"verdict: {n_err} error(s), {n_warn} warning(s)", file=out)
    return 1


def _self_check(args: argparse.Namespace, out: TextIO) -> int:
    failures: List[str] = []
    checked_plans = 0
    checked_mutations = 0
    for topology in SELF_CHECK_TOPOLOGIES:
        from ..bench.harness import build_tree

        tree = build_tree(topology, args.taxa, args.seed)
        rng = np.random.default_rng(args.seed)
        for edge in tree.edges():
            edge.length = float(rng.exponential(0.1))
        for mode in MODES:
            for scaling in (False, True):
                plan = make_plan(tree, mode, scaling=scaling)
                report = verify_plan(plan)
                checked_plans += 1
                if not report.clean:
                    failures.append(
                        f"{topology}/{mode}/scaling={scaling}: expected a "
                        f"clean plan, got: {report.format()}"
                    )
                for mutation in seed_mutations(plan):
                    checked_mutations += 1
                    mutated = verify_plan(mutation.plan)
                    flagged = {
                        d.code
                        for d in mutated.errors
                        if d.code in mutation.expect_codes
                    }
                    if not flagged:
                        failures.append(
                            f"{topology}/{mode}/scaling={scaling}: mutation "
                            f"{mutation.kind!r} not flagged "
                            f"({mutation.description}); analyzer said: "
                            f"{mutated.format()}"
                        )
    print(
        f"self-check: {checked_plans} plans verified, "
        f"{checked_mutations} mutations seeded "
        f"({len(SELF_CHECK_TOPOLOGIES)} topologies x {len(MODES)} modes "
        f"x 2 scaling settings, taxa={args.taxa})",
        file=out,
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=out)
        print(f"self-check FAILED ({len(failures)} failure(s))", file=out)
        return 1
    print("self-check passed: all plans clean, all mutations flagged", file=out)
    return 0


def _docstrings(args: argparse.Namespace, out: TextIO) -> int:
    """Run the docstring-coverage gate (see :mod:`.docstrings`)."""
    from pathlib import Path

    from .docstrings import check_package

    package_root = Path(
        args.docstrings_root
        if args.docstrings_root
        else Path(__file__).resolve().parents[1]
    )
    if args.allowlist:
        allowlist: Optional[Path] = Path(args.allowlist)
    else:
        # src/repro/analysis/cli.py -> repo root is three levels above
        # the package; fall back to no allowlist when not in a checkout.
        candidate = package_root.parents[1] / "docstring_allowlist.txt"
        allowlist = candidate if candidate.exists() else None
    report = check_package(package_root, allowlist)
    print(report.format(), file=out)
    if report.ok:
        print("verdict: docstring coverage gate passed", file=out)
        return 0
    print(
        f"verdict: {len(report.missing)} undocumented public definition(s), "
        f"{len(report.stale_entries)} stale allowlist entr(y/ies)",
        file=out,
    )
    return 1


def run(argv: Optional[List[str]] = None, out: Optional[TextIO] = None) -> int:
    """Run the linter; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.pectinate and args.randomtree:
        print("error: --pectinate and --randomtree are exclusive", file=out)
        return 2
    if args.taxa < 2:
        print("error: --taxa must be at least 2", file=out)
        return 2
    try:
        if args.docstrings:
            return _docstrings(args, out)
        if args.self_check:
            return _self_check(args, out)
        return _lint(args, out)
    except (OSError, ValueError) as exc:
        # Unreadable file, unparseable Newick, or a degenerate tree.
        print(f"error: {exc}", file=out)
        return 2


def main() -> None:  # pragma: no cover - console entry point
    """Console entry point."""
    raise SystemExit(run())
