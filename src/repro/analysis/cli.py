"""``python -m repro.analysis`` — lint an execution plan statically.

Builds a plan from either a Newick file or ``synthetictest``-style
topology flags, runs the static verifier and the schedule auditor, and
exits nonzero when any error-severity diagnostic is found::

    python -m repro.analysis --newick tree.nwk
    python -m repro.analysis --taxa 64 --pectinate --reroot --mode level
    python -m repro.analysis --taxa 64 --races --streams 4
    python -m repro.analysis --taxa 32 --sanitize
    python -m repro.analysis --self-check

``--races`` adds the concurrency-hazard prover (intra-set WAW/WAR/RAW
races plus the round-robin stream schedule); ``--sanitize`` executes the
plan once under the shadow-state sanitizer and reports its access count
and race verdict. ``--self-check`` runs the analyzer's own acceptance
gate: every plan the library's planners produce for a
pectinate/balanced/random trio must verify clean, every seeded
corruption of those plans (including the stream/cache/undo corruption
classes) must be flagged, and the library's real in-place moves must
lint undo-complete. It is the CI entry point for the analyzer itself.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, TextIO

import numpy as np

from ..core.planner import ExecutionPlan, make_plan
from ..trees.newick import parse_newick
from .audit import audit_plan
from .mutate import analyze_mutation, seed_mutations
from .races import check_move_undo, round_robin_streams, verify_races
from .verifier import verify_plan

__all__ = ["build_parser", "run", "main"]

MODES = ("serial", "concurrent", "level")
SELF_CHECK_TOPOLOGIES = ("pectinate", "balanced", "random")


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the static-analysis CLI."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Statically verify and audit a likelihood execution "
        "plan without executing it.",
    )
    source = parser.add_argument_group("plan source")
    source.add_argument(
        "--newick", metavar="FILE", help="build the plan from a Newick tree file"
    )
    source.add_argument(
        "--taxa", type=int, default=16, help="synthetic tree size (default 16)"
    )
    source.add_argument(
        "--pectinate", action="store_true", help="synthetic pectinate topology"
    )
    source.add_argument(
        "--randomtree", action="store_true", help="synthetic random topology"
    )
    source.add_argument(
        "--seed", type=int, default=1, help="seed for --randomtree"
    )
    plan = parser.add_argument_group("plan construction")
    plan.add_argument(
        "--mode",
        choices=MODES,
        default="concurrent",
        help="scheduling mode (default: concurrent)",
    )
    plan.add_argument(
        "--reroot", action="store_true", help="optimally reroot before planning"
    )
    plan.add_argument(
        "--manualscale",
        action="store_true",
        help="plan with per-operation rescaling",
    )
    parser.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the schedule-quality audit",
    )
    races = parser.add_argument_group("concurrency checking")
    races.add_argument(
        "--races",
        action="store_true",
        help="prove the plan free of intra-set WAW/WAR/RAW races and "
        "verify its round-robin stream schedule",
    )
    races.add_argument(
        "--streams",
        type=int,
        default=4,
        metavar="N",
        help="streams for the --races schedule check (default 4; 0 "
        "skips the stream check)",
    )
    races.add_argument(
        "--sanitize",
        action="store_true",
        help="execute the plan once under the shadow-state sanitizer "
        "and report the dynamic race verdict",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="verify the analyzer itself: planner plans clean, seeded "
        "mutations flagged, on a pectinate/balanced/random trio",
    )
    parser.add_argument(
        "--docstrings",
        action="store_true",
        help="docstring-coverage gate: every public function/class/method "
        "in src/repro must have a docstring or an allowlist entry",
    )
    parser.add_argument(
        "--docstrings-root",
        metavar="DIR",
        default=None,
        help="package root to scan with --docstrings "
        "(default: the installed repro package)",
    )
    parser.add_argument(
        "--allowlist",
        metavar="FILE",
        default=None,
        help="allowlist file for --docstrings "
        "(default: docstring_allowlist.txt next to the repo's src/)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="only print the verdict"
    )
    return parser


def _build_plan(args: argparse.Namespace) -> ExecutionPlan:
    if args.newick:
        with open(args.newick) as handle:
            tree = parse_newick(handle.read())
        if not tree.is_bifurcating():
            tree.resolve_multifurcations()
    else:
        from ..bench.harness import build_tree

        topology = "pectinate" if args.pectinate else (
            "random" if args.randomtree else "balanced"
        )
        tree = build_tree(topology, args.taxa, args.seed)
        rng = np.random.default_rng(args.seed)
        for edge in tree.edges():
            edge.length = float(rng.exponential(0.1))
    if args.reroot:
        from ..core.reroot_opt import optimal_reroot_fast

        tree = optimal_reroot_fast(tree).tree
    return make_plan(tree, args.mode, scaling=args.manualscale)


def _lint(args: argparse.Namespace, out: TextIO) -> int:
    plan = _build_plan(args)
    report = verify_plan(plan)
    print(
        f"plan: {plan.tree.n_tips} tips, mode={plan.mode}, "
        f"{plan.n_operations} operations in {plan.n_launches} sets, "
        f"scaling={'on' if plan.scaling else 'off'}",
        file=out,
    )
    if args.races:
        race_report = verify_races(plan, n_streams=args.streams)
        report.extend(race_report)
        print(
            f"races: {plan.n_launches} sets proven WAW/WAR/RAW-free"
            + (
                f"; stream schedule verified over {args.streams} streams"
                if args.streams > 0
                else ""
            )
            if race_report.clean
            else f"races: {len(race_report.errors)} hazard(s) found",
            file=out,
        )
    if args.sanitize:
        clean, accesses = _sanitize_once(plan, args.seed, out)
        if not clean:
            return 1
        print(
            f"sanitizer: clean ({accesses} buffer accesses recorded, "
            f"single-threaded execution)",
            file=out,
        )
    if not args.quiet and not report.clean:
        print(report.format(), file=out)
    n_err, n_warn = len(report.errors), len(report.warnings)
    if not args.no_audit:
        print(audit_plan(plan).format(), file=out)
    if report.ok:
        print(
            f"verdict: plan verifies clean ({n_warn} warning(s))", file=out
        )
        return 0
    print(f"verdict: {n_err} error(s), {n_warn} warning(s)", file=out)
    return 1


def _sanitize_once(
    plan: ExecutionPlan, seed: int, out: TextIO
) -> tuple[bool, int]:
    """Execute ``plan`` once under the shadow-state sanitizer.

    Random patterns under JC69 stand in for real data — the sanitizer
    watches buffer traffic, not likelihood values. Returns the verdict
    and the number of accesses recorded.
    """
    from ..core.planner import create_instance, execute_plan
    from ..data.patterns import random_patterns
    from ..models.nucleotide import JC69
    from .sanitizer import RaceDetector, SanitizedInstance

    patterns = random_patterns(
        [t.name for t in plan.tree.tips()], 16, seed=seed
    )
    instance = create_instance(
        plan.tree, JC69(), patterns, scaling=plan.scaling
    )
    detector = RaceDetector()
    execute_plan(SanitizedInstance(instance, detector), plan)
    if not detector.clean:
        print(detector.format(), file=out)
        return False, detector.accesses_recorded
    return True, detector.accesses_recorded


def _self_check(args: argparse.Namespace, out: TextIO) -> int:
    failures: List[str] = []
    checked_plans = 0
    checked_mutations = 0
    mutation_kinds_flagged: set = set()
    for topology in SELF_CHECK_TOPOLOGIES:
        from ..bench.harness import build_tree

        tree = build_tree(topology, args.taxa, args.seed)
        rng = np.random.default_rng(args.seed)
        for edge in tree.edges():
            edge.length = float(rng.exponential(0.1))
        for mode in MODES:
            for scaling in (False, True):
                plan = make_plan(tree, mode, scaling=scaling)
                report = verify_plan(plan)
                report.extend(
                    verify_races(plan, n_streams=max(args.streams, 0))
                )
                checked_plans += 1
                if not report.clean:
                    failures.append(
                        f"{topology}/{mode}/scaling={scaling}: expected a "
                        f"clean plan, got: {report.format()}"
                    )
                for mutation in seed_mutations(plan):
                    checked_mutations += 1
                    mutated = analyze_mutation(mutation)
                    flagged = {
                        d.code
                        for d in mutated.errors
                        if d.code in mutation.expect_codes
                    }
                    if not flagged:
                        failures.append(
                            f"{topology}/{mode}/scaling={scaling}: mutation "
                            f"{mutation.kind!r} not flagged "
                            f"({mutation.description}); analyzer said: "
                            f"{mutated.format()}"
                        )
                    else:
                        mutation_kinds_flagged.add(mutation.kind)
    checked_moves = _self_check_moves(args, failures)
    print(
        f"self-check: {checked_plans} plans verified, "
        f"{checked_mutations} mutations seeded "
        f"({len(SELF_CHECK_TOPOLOGIES)} topologies x {len(MODES)} modes "
        f"x 2 scaling settings, taxa={args.taxa})",
        file=out,
    )
    print(
        f"self-check: {len(mutation_kinds_flagged)} corruption classes "
        f"flagged, {checked_moves} in-place moves linted undo-complete, "
        f"stream schedules proven over "
        f"{max(args.streams, 0)} stream(s)",
        file=out,
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=out)
        print(f"self-check FAILED ({len(failures)} failure(s))", file=out)
        return 1
    print("self-check passed: all plans clean, all mutations flagged", file=out)
    return 0


def _self_check_moves(args: argparse.Namespace, failures: List[str]) -> int:
    """Lint the library's real in-place moves for undo-completeness.

    The corrupted-move mutation class proves the lint *fires*; this
    pass proves it stays quiet on every genuine proposal — branch
    multipliers and the full NNI neighbourhood.
    """
    from ..bench.harness import build_tree
    from ..inference.proposals import (
        branch_length_move,
        nni_move,
        nni_move_at,
        nni_move_count,
    )

    checked = 0
    tree = build_tree("random", min(args.taxa, 16), args.seed)
    rng = np.random.default_rng(args.seed)
    for edge in tree.edges():
        edge.length = float(rng.exponential(0.1))
    for seed in range(3):
        for factory in (
            lambda t, s=seed: branch_length_move(t, np.random.default_rng(s)),
            lambda t, s=seed: nni_move(t, np.random.default_rng(s)),
        ):
            diagnostics = check_move_undo(tree.copy(), factory)
            checked += 1
            if diagnostics:
                failures.append(
                    "undo lint flagged a genuine move: "
                    + "; ".join(d.format() for d in diagnostics)
                )
    for index in range(nni_move_count(tree)):
        diagnostics = check_move_undo(
            tree.copy(), lambda t, i=index: nni_move_at(t, i)
        )
        checked += 1
        if diagnostics:
            failures.append(
                f"undo lint flagged nni_move_at({index}): "
                + "; ".join(d.format() for d in diagnostics)
            )
    return checked


def _docstrings(args: argparse.Namespace, out: TextIO) -> int:
    """Run the docstring-coverage gate (see :mod:`.docstrings`)."""
    from pathlib import Path

    from .docstrings import check_package

    package_root = Path(
        args.docstrings_root
        if args.docstrings_root
        else Path(__file__).resolve().parents[1]
    )
    if args.allowlist:
        allowlist: Optional[Path] = Path(args.allowlist)
    else:
        # src/repro/analysis/cli.py -> repo root is three levels above
        # the package; fall back to no allowlist when not in a checkout.
        candidate = package_root.parents[1] / "docstring_allowlist.txt"
        allowlist = candidate if candidate.exists() else None
    report = check_package(package_root, allowlist)
    print(report.format(), file=out)
    if report.ok:
        print("verdict: docstring coverage gate passed", file=out)
        return 0
    print(
        f"verdict: {len(report.missing)} undocumented public definition(s), "
        f"{len(report.stale_entries)} stale allowlist entr(y/ies)",
        file=out,
    )
    return 1


def run(argv: Optional[List[str]] = None, out: Optional[TextIO] = None) -> int:
    """Run the linter; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.pectinate and args.randomtree:
        print("error: --pectinate and --randomtree are exclusive", file=out)
        return 2
    if args.taxa < 2:
        print("error: --taxa must be at least 2", file=out)
        return 2
    try:
        if args.docstrings:
            return _docstrings(args, out)
        if args.self_check:
            return _self_check(args, out)
        return _lint(args, out)
    except (OSError, ValueError) as exc:
        # Unreadable file, unparseable Newick, or a degenerate tree.
        print(f"error: {exc}", file=out)
        return 2


def main() -> None:  # pragma: no cover - console entry point
    """Console entry point."""
    raise SystemExit(run())
