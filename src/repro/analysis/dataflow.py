"""Buffer def/use dataflow analysis over operation streams.

The engine walks a plan's operation sets in submission order and tracks,
for every partials buffer, where it is written and where it is read —
the classic def/use chain, specialised to Felsenstein pruning's
single-assignment dataflow (paper §IV-B: each internal node is computed
exactly once per traversal, from its two children). From the chains it
derives typed hazards:

========================  ======================================================
code                      meaning
========================  ======================================================
``index-out-of-range``    destination / read / matrix index outside the layout
``tip-overwrite``         an operation's destination is a tip buffer
``write-write-hazard``    two operations in one set write the same buffer
``intra-set-dependency``  an operation reads another member's destination
                          (sets are concurrent — order inside is undefined)
``cross-set-dependency``  a read happens in an *earlier* set than the write it
                          needs (stale partials)
``read-before-write``     a read of an internal buffer no operation ever
                          writes and that is not assumed pre-computed
``buffer-rewritten``      a buffer written again in a later set (legal but
                          wasteful in a single-traversal plan)
``dead-write``            partials computed but never read nor rooted
``matrix-not-updated``    an operation uses a transition matrix the plan's
                          update list never refreshes
``duplicate-matrix-update``  the update list refreshes one matrix twice
``scale-without-buffers``  a scale write in a configuration with no bank
``cumulative-scale-write`` an operation writes the reserved cumulative slot
``scale-aliasing``        two operations write the same scale slot
========================  ======================================================
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..beagle.operations import Operation
from .config import BufferConfig
from .diagnostics import Diagnostic, Severity

__all__ = ["analyze_operation_sets", "analyze_stream"]


def _flatten(
    operation_sets: Sequence[Sequence[Operation]],
) -> List[Tuple[int, int, Operation]]:
    """``(set_index, global_op_index, op)`` triples in submission order."""
    out: List[Tuple[int, int, Operation]] = []
    i = 0
    for k, op_set in enumerate(operation_sets):
        for op in op_set:
            out.append((k, i, op))
            i += 1
    return out


def analyze_stream(
    operations: Sequence[Operation],
    config: BufferConfig,
    **kwargs: object,
) -> List[Diagnostic]:
    """Analyze a flat stream as if each operation were its own set."""
    return analyze_operation_sets([[op] for op in operations], config, **kwargs)


def analyze_operation_sets(
    operation_sets: Sequence[Sequence[Operation]],
    config: BufferConfig,
    *,
    assume_valid: Iterable[int] = (),
    root_buffer: Optional[int] = None,
    matrix_updates: Optional[Sequence[int]] = None,
    check_dead_writes: bool = True,
) -> List[Diagnostic]:
    """Dataflow-check an operation-set sequence against a buffer layout.

    Parameters
    ----------
    operation_sets:
        The schedule: each inner sequence is one concurrent launch.
    config:
        Buffer layout to range-check against.
    assume_valid:
        Internal buffers presumed computed before the first set runs —
        how incremental (dirty-path) plans express that the untouched
        partials from the previous full evaluation are still live.
    root_buffer:
        Buffer the root reduction will read; a write that nothing reads
        is only a dead write if it is not the root either.
    matrix_updates:
        When given, the plan's transition-matrix refresh list; every
        matrix an operation uses must appear in it.
    check_dead_writes:
        Disable for streams where downstream reads happen outside the
        analyzed window (e.g. a prefix of a larger schedule).

    Returns
    -------
    list of Diagnostic
        In deterministic submission order; empty when the schedule is
        hazard-free.
    """
    diagnostics: List[Diagnostic] = []
    flat = _flatten(operation_sets)
    assumed: FrozenSet[int] = frozenset(assume_valid)

    # Def chains over the whole plan: buffer -> ordered (set, op) writes.
    writes: Dict[int, List[Tuple[int, int]]] = {}
    for k, i, op in flat:
        writes.setdefault(op.destination, []).append((k, i))
    read_anywhere: Set[int] = set()
    for _, _, op in flat:
        read_anywhere.update(op.reads())

    updated_matrices: Optional[FrozenSet[int]] = None
    if matrix_updates is not None:
        diagnostics.extend(_check_matrix_table(matrix_updates, config))
        updated_matrices = frozenset(matrix_updates)

    scale_writers: Dict[int, int] = {}  # scale slot -> first writer op index
    written_so_far: Set[int] = set()

    by_set: Dict[int, List[Tuple[int, Operation]]] = {}
    for k, i, op in flat:
        by_set.setdefault(k, []).append((i, op))

    for k in range(len(operation_sets)):
        set_destinations: Dict[int, int] = {}  # dest -> op index within plan
        ops_here = by_set.get(k, [])

        # Pass 1 over the set: destination legality and WW hazards.
        for i, op in ops_here:
            diagnostics.extend(_check_ranges(op, i, k, config))
            if op.destination in set_destinations:
                diagnostics.append(
                    Diagnostic(
                        code="write-write-hazard",
                        severity=Severity.ERROR,
                        message=(
                            f"operations {set_destinations[op.destination]} and "
                            f"{i} both write buffer {op.destination} in the "
                            f"same concurrent set"
                        ),
                        set_index=k,
                        op_index=i,
                        buffers=(op.destination,),
                        hint="split the aliasing operations into different sets",
                    )
                )
            else:
                set_destinations[op.destination] = i
            if op.destination in written_so_far:
                diagnostics.append(
                    Diagnostic(
                        code="buffer-rewritten",
                        severity=Severity.WARNING,
                        message=(
                            f"buffer {op.destination} is written again by "
                            f"operation {i}; a single-traversal plan computes "
                            f"each node once"
                        ),
                        set_index=k,
                        op_index=i,
                        buffers=(op.destination,),
                    )
                )

        # Pass 2: reads — intra-set, cross-set, uninitialized, matrices.
        for i, op in ops_here:
            for r in op.reads():
                if not config.valid_read(r):
                    continue  # already reported by _check_ranges
                if r in set_destinations and set_destinations[r] != i:
                    diagnostics.append(
                        Diagnostic(
                            code="intra-set-dependency",
                            severity=Severity.ERROR,
                            message=(
                                f"operation {i} reads buffer {r} which "
                                f"operation {set_destinations[r]} writes in "
                                f"the same concurrent set"
                            ),
                            set_index=k,
                            op_index=i,
                            buffers=(r,),
                            hint="move the reader into a later set",
                        )
                    )
                elif r in set_destinations:  # reads own destination
                    diagnostics.append(
                        Diagnostic(
                            code="intra-set-dependency",
                            severity=Severity.ERROR,
                            message=(
                                f"operation {i} reads its own destination "
                                f"buffer {r}"
                            ),
                            set_index=k,
                            op_index=i,
                            buffers=(r,),
                        )
                    )
                elif config.is_internal(r) and r not in written_so_far:
                    if r in writes:  # written, but only by a later set
                        wk, wi = writes[r][0]
                        diagnostics.append(
                            Diagnostic(
                                code="cross-set-dependency",
                                severity=Severity.ERROR,
                                message=(
                                    f"operation {i} (set {k}) reads buffer "
                                    f"{r} before operation {wi} (set {wk}) "
                                    f"writes it"
                                ),
                                set_index=k,
                                op_index=i,
                                buffers=(r,),
                                hint=(
                                    f"schedule the writer of buffer {r} in "
                                    f"an earlier set than its reader"
                                ),
                            )
                        )
                    elif r not in assumed:
                        diagnostics.append(
                            Diagnostic(
                                code="read-before-write",
                                severity=Severity.ERROR,
                                message=(
                                    f"operation {i} reads internal buffer "
                                    f"{r}, which no operation writes "
                                    f"(uninitialized partials)"
                                ),
                                set_index=k,
                                op_index=i,
                                buffers=(r,),
                                hint=(
                                    f"add the operation computing buffer {r} "
                                    f"or mark it as pre-computed"
                                ),
                            )
                        )
            if updated_matrices is not None:
                for m in (op.child1_matrix, op.child2_matrix):
                    if config.valid_matrix(m) and m not in updated_matrices:
                        diagnostics.append(
                            Diagnostic(
                                code="matrix-not-updated",
                                severity=Severity.ERROR,
                                message=(
                                    f"operation {i} uses transition matrix "
                                    f"{m} which the plan's matrix-update "
                                    f"list never refreshes"
                                ),
                                set_index=k,
                                op_index=i,
                                buffers=(m,),
                                hint=f"add matrix {m} to matrix_indices",
                            )
                        )
            diagnostics.extend(
                _check_scale(op, i, k, config, scale_writers)
            )

        written_so_far.update(set_destinations)

    if check_dead_writes:
        for k, i, op in flat:
            dest = op.destination
            if dest == root_buffer or dest in read_anywhere:
                continue
            if not config.is_internal(dest):
                continue  # already an error elsewhere
            # Only the *last* write can be live; earlier rewrites were
            # already flagged as buffer-rewritten.
            if writes[dest][-1] != (k, i):
                continue
            diagnostics.append(
                Diagnostic(
                    code="dead-write",
                    severity=Severity.WARNING,
                    message=(
                        f"operation {i} computes buffer {dest} but nothing "
                        f"reads it and it is not the root buffer"
                    ),
                    set_index=k,
                    op_index=i,
                    buffers=(dest,),
                    hint="drop the operation or root the plan on its result",
                )
            )

    return diagnostics


def _check_ranges(
    op: Operation, i: int, k: int, config: BufferConfig
) -> List[Diagnostic]:
    """Index-range legality of one operation's buffers and matrices."""
    out: List[Diagnostic] = []
    if config.is_tip(op.destination):
        out.append(
            Diagnostic(
                code="tip-overwrite",
                severity=Severity.ERROR,
                message=(
                    f"operation {i} writes tip buffer {op.destination}; tips "
                    f"hold observed data and are read-only"
                ),
                set_index=k,
                op_index=i,
                buffers=(op.destination,),
                hint=f"destinations must be ≥ tip_count ({config.tip_count})",
            )
        )
    elif not config.is_internal(op.destination):
        out.append(
            Diagnostic(
                code="index-out-of-range",
                severity=Severity.ERROR,
                message=(
                    f"operation {i} destination {op.destination} is outside "
                    f"the {config.n_buffers}-buffer layout"
                ),
                set_index=k,
                op_index=i,
                buffers=(op.destination,),
            )
        )
    for r in op.reads():
        if not config.valid_read(r):
            out.append(
                Diagnostic(
                    code="index-out-of-range",
                    severity=Severity.ERROR,
                    message=(
                        f"operation {i} reads buffer {r}, outside the "
                        f"{config.n_buffers}-buffer layout"
                    ),
                    set_index=k,
                    op_index=i,
                    buffers=(r,),
                )
            )
    for m in (op.child1_matrix, op.child2_matrix):
        if not config.valid_matrix(m):
            out.append(
                Diagnostic(
                    code="index-out-of-range",
                    severity=Severity.ERROR,
                    message=(
                        f"operation {i} uses transition matrix {m}, outside "
                        f"the {config.matrix_count}-matrix layout"
                    ),
                    set_index=k,
                    op_index=i,
                    buffers=(m,),
                )
            )
    return out


def _check_scale(
    op: Operation,
    i: int,
    k: int,
    config: BufferConfig,
    scale_writers: Dict[int, int],
) -> List[Diagnostic]:
    """Scale-buffer discipline for one operation."""
    out: List[Diagnostic] = []
    s = op.destination_scale
    if s < 0:
        return out
    if config.scale_buffer_count <= 0:
        out.append(
            Diagnostic(
                code="scale-without-buffers",
                severity=Severity.ERROR,
                message=(
                    f"operation {i} writes scale buffer {s} but the "
                    f"configuration has no scale-buffer bank"
                ),
                set_index=k,
                op_index=i,
                buffers=(s,),
                hint="build the instance with scaling enabled",
            )
        )
        return out
    if s == config.cumulative_scale:
        out.append(
            Diagnostic(
                code="cumulative-scale-write",
                severity=Severity.ERROR,
                message=(
                    f"operation {i} writes scale buffer {s}, the reserved "
                    f"cumulative accumulator"
                ),
                set_index=k,
                op_index=i,
                buffers=(s,),
                hint=(
                    f"per-node factors go to slots 0 .. "
                    f"{config.scale_buffer_count - 2}"
                ),
            )
        )
        return out
    if not 0 <= s < config.scale_buffer_count:
        out.append(
            Diagnostic(
                code="index-out-of-range",
                severity=Severity.ERROR,
                message=(
                    f"operation {i} scale buffer {s} is outside the "
                    f"{config.scale_buffer_count}-slot bank"
                ),
                set_index=k,
                op_index=i,
                buffers=(s,),
            )
        )
        return out
    if s in scale_writers:
        out.append(
            Diagnostic(
                code="scale-aliasing",
                severity=Severity.ERROR,
                message=(
                    f"operations {scale_writers[s]} and {i} both write scale "
                    f"buffer {s}; the second overwrites the first's factors "
                    f"before accumulation"
                ),
                set_index=k,
                op_index=i,
                buffers=(s,),
                hint="give every scaled operation its own slot",
            )
        )
    else:
        scale_writers[s] = i
    return out


def _check_matrix_table(
    matrix_updates: Sequence[int], config: BufferConfig
) -> List[Diagnostic]:
    """Legality of the plan's matrix-refresh list itself."""
    out: List[Diagnostic] = []
    seen: Set[int] = set()
    for m in matrix_updates:
        if not config.valid_matrix(m):
            out.append(
                Diagnostic(
                    code="index-out-of-range",
                    severity=Severity.ERROR,
                    message=(
                        f"matrix-update entry {m} is outside the "
                        f"{config.matrix_count}-matrix layout"
                    ),
                    buffers=(m,),
                )
            )
        if m in seen:
            out.append(
                Diagnostic(
                    code="duplicate-matrix-update",
                    severity=Severity.WARNING,
                    message=f"matrix {m} appears twice in the update list",
                    buffers=(m,),
                )
            )
        seen.add(m)
    return out
