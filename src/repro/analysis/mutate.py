"""Plan corruption for mutation-testing the analyzer.

A static analyzer is only trustworthy if it *fails* on broken input, so
this module manufactures broken input: :func:`seed_mutations` takes a
valid :class:`~repro.core.planner.ExecutionPlan` and produces one
corrupted copy per applicable corruption class — each annotated with the
diagnostic codes the analyzer must emit for it. The test suite (and
``python -m repro.analysis --self-check``) assert every seeded mutation
is flagged; a mutation surviving verification is an analyzer bug.

The corruption classes mirror real scheduling-bug modes: reordering
across a set boundary, destination aliasing (across and *within* sets),
dropped operations, dropped matrix updates, tip clobbering, scale-buffer
misuse, unsynchronized cross-stream sharing, stale cache keys and
incomplete move undos. :func:`analyze_mutation` routes each mutation to
every analyzer that should see it — the whole-plan verifier, the race
prover, and the stream/cache/undo lints — so one flagged-codes check
covers the full detector surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional

from ..beagle.operations import Operation
from .diagnostics import AnalysisReport
from .races import CacheEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.planner import ExecutionPlan
    from ..inference.proposals import Move
    from ..trees import Tree

__all__ = [
    "Mutation",
    "seed_mutations",
    "MUTATION_KINDS",
    "mutate_plan",
    "analyze_mutation",
]


@dataclass(frozen=True)
class Mutation:
    """One deliberately corrupted plan (or schedule / cache trace / move).

    Attributes
    ----------
    kind:
        Corruption class (one of :data:`MUTATION_KINDS`).
    description:
        What was done to the plan, concretely.
    plan:
        The corrupted plan (the input plan is never modified). Mutations
        that corrupt a side structure instead — a stream assignment, a
        cache event trace, a move — carry the *valid* plan plus the
        corrupted payload below.
    expect_codes:
        The analyzer must report at least one diagnostic whose code is
        in this set, at error severity.
    streams:
        Stream assignment (one lane per operation, per set) for
        :func:`~repro.analysis.races.check_stream_schedule`; ``None``
        for mutations without a stream payload.
    sync_between_sets:
        Whether the stream schedule has a device-wide join after every
        set (only meaningful with ``streams``).
    cache_events:
        Matrix-cache event trace for
        :func:`~repro.analysis.races.check_cache_freshness`.
    move_factory:
        In-place move applier for
        :func:`~repro.analysis.races.check_move_undo`; receives a
        scratch copy of the plan's tree.
    """

    kind: str
    description: str
    plan: "ExecutionPlan"
    expect_codes: FrozenSet[str]
    streams: Optional[List[List[int]]] = None
    sync_between_sets: bool = True
    cache_events: Optional[List[CacheEvent]] = None
    move_factory: Optional[Callable[["Tree"], Optional["Move"]]] = field(
        default=None, compare=False
    )


def _copy_sets(plan: "ExecutionPlan") -> List[List[Operation]]:
    return [list(op_set) for op_set in plan.operation_sets]


def _swap_across_sets(plan: "ExecutionPlan") -> Optional[Mutation]:
    """Swap a dependent pair of operations across a set boundary.

    Afterwards the reader sits in an earlier set than its writer — the
    classic stale-partials reordering bug.
    """
    sets = _copy_sets(plan)
    for k in range(len(sets) - 1):
        dests = {op.destination: a for a, op in enumerate(sets[k])}
        for b, reader in enumerate(sets[k + 1]):
            hits = [r for r in reader.reads() if r in dests]
            if not hits:
                continue
            a = dests[hits[0]]
            sets[k][a], sets[k + 1][b] = sets[k + 1][b], sets[k][a]
            return Mutation(
                kind="swap-across-sets",
                description=(
                    f"swapped the writer of buffer {hits[0]} (set {k}) with "
                    f"its reader (set {k + 1})"
                ),
                plan=replace(plan, operation_sets=sets),
                expect_codes=frozenset(
                    {"cross-set-dependency", "intra-set-dependency"}
                ),
            )
    return None


def _merge_boundary(plan: "ExecutionPlan") -> Optional[Mutation]:
    """Pull a dependent operation from the next set into the current one."""
    sets = _copy_sets(plan)
    for k in range(len(sets) - 1):
        dests = {op.destination for op in sets[k]}
        for b, reader in enumerate(sets[k + 1]):
            if any(r in dests for r in reader.reads()):
                sets[k].append(sets[k + 1].pop(b))
                sets = [s for s in sets if s]
                return Mutation(
                    kind="merge-boundary",
                    description=(
                        f"moved a dependent operation from set {k + 1} into "
                        f"set {k}, making the set internally dependent"
                    ),
                    plan=replace(plan, operation_sets=sets),
                    expect_codes=frozenset({"intra-set-dependency"}),
                )
    return None


def _alias_destination(plan: "ExecutionPlan") -> Optional[Mutation]:
    """Redirect one operation's destination onto another's."""
    sets = _copy_sets(plan)
    flat = [(k, j) for k, s in enumerate(sets) for j in range(len(s))]
    if len(flat) < 2:
        return None
    k0, j0 = flat[0]
    k1, j1 = flat[-1]
    victim = sets[k1][j1]
    original = victim.destination
    alias = sets[k0][j0].destination
    sets[k1][j1] = replace(victim, destination=alias)
    return Mutation(
        kind="alias-destination",
        description=(
            f"redirected the operation writing buffer {original} to write "
            f"buffer {alias} instead"
        ),
        plan=replace(plan, operation_sets=sets),
        expect_codes=frozenset(
            {
                "read-before-write",
                "root-not-written",
                "write-write-hazard",
                "operation-count",
                "intra-set-dependency",
                "cross-set-dependency",
            }
        ),
    )


def _drop_operation(plan: "ExecutionPlan") -> Optional[Mutation]:
    """Delete the first operation; its destination is never computed."""
    sets = _copy_sets(plan)
    if not sets or not sets[0]:
        return None
    dropped = sets[0].pop(0)
    sets = [s for s in sets if s]
    return Mutation(
        kind="drop-operation",
        description=f"dropped the operation computing buffer {dropped.destination}",
        plan=replace(plan, operation_sets=sets),
        expect_codes=frozenset(
            {"read-before-write", "operation-count", "root-not-written"}
        ),
    )


def _drop_matrix_update(plan: "ExecutionPlan") -> Optional[Mutation]:
    """Remove one entry from the matrix-update list."""
    if not plan.matrix_indices:
        return None
    dropped = plan.matrix_indices[0]
    return Mutation(
        kind="drop-matrix-update",
        description=f"dropped the update of transition matrix {dropped}",
        plan=replace(
            plan,
            matrix_indices=plan.matrix_indices[1:],
            branch_lengths=plan.branch_lengths[1:],
        ),
        expect_codes=frozenset({"matrix-not-updated"}),
    )


def _read_future(plan: "ExecutionPlan") -> Optional[Mutation]:
    """Make an early operation read the root buffer (written last)."""
    sets = _copy_sets(plan)
    if len(sets) < 2 or not sets[0]:
        return None
    victim = sets[0][0]
    sets[0][0] = replace(victim, child1=plan.root_buffer)
    return Mutation(
        kind="read-future",
        description=(
            f"pointed an operation in set 0 at root buffer "
            f"{plan.root_buffer}, which is only written by the final set"
        ),
        plan=replace(plan, operation_sets=sets),
        expect_codes=frozenset(
            {"cross-set-dependency", "intra-set-dependency"}
        ),
    )


def _tip_overwrite(plan: "ExecutionPlan") -> Optional[Mutation]:
    """Target a tip buffer as a destination."""
    sets = _copy_sets(plan)
    if not sets or not sets[0]:
        return None
    victim = sets[0][0]
    sets[0][0] = replace(victim, destination=0)
    return Mutation(
        kind="tip-overwrite",
        description=(
            f"redirected the operation writing buffer {victim.destination} "
            f"onto tip buffer 0"
        ),
        plan=replace(plan, operation_sets=sets),
        expect_codes=frozenset({"tip-overwrite"}),
    )


def _out_of_range(plan: "ExecutionPlan") -> Optional[Mutation]:
    """Use a matrix index beyond the layout."""
    sets = _copy_sets(plan)
    if not sets or not sets[0]:
        return None
    victim = sets[0][0]
    bogus = 2 * plan.tree.n_tips + 100
    sets[0][0] = replace(victim, child1_matrix=bogus)
    return Mutation(
        kind="out-of-range",
        description=f"pointed an operation at nonexistent matrix {bogus}",
        plan=replace(plan, operation_sets=sets),
        expect_codes=frozenset({"index-out-of-range", "matrix-not-updated"}),
    )


def _cumulative_scale_write(plan: "ExecutionPlan") -> Optional[Mutation]:
    """Write per-node factors into the reserved cumulative slot."""
    if not plan.scaling:
        return None
    sets = _copy_sets(plan)
    victim = sets[0][0]
    cumulative = plan.tree.n_tips - 1  # last slot of the n-slot bank
    sets[0][0] = replace(victim, destination_scale=cumulative)
    return Mutation(
        kind="cumulative-scale-write",
        description=(
            f"redirected a scale write into the cumulative slot {cumulative}"
        ),
        plan=replace(plan, operation_sets=sets),
        expect_codes=frozenset({"cumulative-scale-write", "scale-aliasing"}),
    )


def _alias_scale(plan: "ExecutionPlan") -> Optional[Mutation]:
    """Two operations sharing one per-node scale slot."""
    if not plan.scaling or plan.n_operations < 2:
        return None
    sets = _copy_sets(plan)
    flat = [(k, j) for k, s in enumerate(sets) for j in range(len(s))]
    k0, j0 = flat[0]
    k1, j1 = flat[-1]
    target = sets[k0][j0].destination_scale
    if target < 0:
        return None
    victim = sets[k1][j1]
    sets[k1][j1] = replace(victim, destination_scale=target)
    return Mutation(
        kind="alias-scale",
        description=f"two operations now write scale slot {target}",
        plan=replace(plan, operation_sets=sets),
        expect_codes=frozenset({"scale-aliasing"}),
    )


def _intra_set_alias(plan: "ExecutionPlan") -> Optional[Mutation]:
    """Two operations in the *same* set writing one destination.

    The canonical intra-set WAW race: whichever operation the device
    retires last wins, so the buffer's content is schedule-dependent.
    Needs a set with at least two operations (serial plans have none).
    """
    sets = _copy_sets(plan)
    for k, op_set in enumerate(sets):
        if len(op_set) < 2:
            continue
        alias = op_set[0].destination
        victim = op_set[-1]
        op_set[-1] = replace(victim, destination=alias)
        return Mutation(
            kind="intra-set-alias",
            description=(
                f"operations 0 and {len(op_set) - 1} of set {k} now both "
                f"write buffer {alias} inside one launch"
            ),
            plan=replace(plan, operation_sets=sets),
            expect_codes=frozenset({"race-waw", "write-write-hazard"}),
        )
    return None


def _cross_stream_share(plan: "ExecutionPlan") -> Optional[Mutation]:
    """A writer and its reader in different streams with no sync between.

    The plan itself stays valid — the corruption is the *launch
    schedule*: dropping the per-set synchronization while issuing a
    dependent pair into different streams shares the buffer across
    streams with nothing ordering the accesses.
    """
    sets = plan.operation_sets
    for k in range(len(sets) - 1):
        dests = {op.destination for op in sets[k]}
        for j, reader in enumerate(sets[k + 1]):
            hits = [r for r in reader.reads() if r in dests]
            if not hits:
                continue
            streams = [[0] * len(s) for s in sets]
            streams[k + 1][j] = 1
            return Mutation(
                kind="cross-stream-share",
                description=(
                    f"buffer {hits[0]} is written in stream 0 (set {k}) "
                    f"and read in stream 1 (set {k + 1}) with inter-set "
                    f"synchronization removed"
                ),
                plan=plan,
                expect_codes=frozenset(
                    {"cross-stream-dependency", "cross-stream-write-sharing"}
                ),
                streams=streams,
                sync_between_sets=False,
            )
    return None


def _stale_cache_key(plan: "ExecutionPlan") -> Optional[Mutation]:
    """A plan consuming cached matrices keyed before a model mutation.

    Models the cache-poisoning bug the freshness lint exists for: the
    rates (or eigensystem) change on the inference path, but a later
    evaluation still consumes ``P(t)`` entries keyed under the old
    model version.
    """
    return Mutation(
        kind="stale-cache-key",
        description=(
            "re-evaluation consumes transition matrices keyed at model "
            "version 0 after set_category_rates advanced the path to "
            "version 1"
        ),
        plan=plan,
        expect_codes=frozenset({"stale-matrix-cache"}),
        cache_events=[
            CacheEvent("consume", 0, "initial evaluation"),
            CacheEvent("mutate", 1, "set_category_rates"),
            CacheEvent("consume", 0, "re-evaluation with stale key"),
        ],
    )


def _incomplete_undo(plan: "ExecutionPlan") -> Optional[Mutation]:
    """An in-place branch move whose undo restores nothing.

    The undo lint must notice that rejecting this move leaves the
    branch at its proposed length — silent chain-state corruption.
    """

    def factory(tree: "Tree") -> Optional["Move"]:
        from ..inference.proposals import Move

        edge = tree.edges()[0]
        edge.length = edge.length * 1.5 + 0.25
        return Move(
            kind="branch",
            log_hastings=0.0,
            touched=[edge],
            changed_edges=[edge],
            undo=lambda: None,
        )

    return Mutation(
        kind="incomplete-undo",
        description=(
            "a branch-length move declares its edge but its undo is a "
            "no-op, so rejection leaves the proposed length in place"
        ),
        plan=plan,
        expect_codes=frozenset({"undo-incomplete"}),
        move_factory=factory,
    )


_MUTATORS: Dict[str, Callable[["ExecutionPlan"], Optional[Mutation]]] = {
    "swap-across-sets": _swap_across_sets,
    "merge-boundary": _merge_boundary,
    "alias-destination": _alias_destination,
    "drop-operation": _drop_operation,
    "drop-matrix-update": _drop_matrix_update,
    "read-future": _read_future,
    "tip-overwrite": _tip_overwrite,
    "out-of-range": _out_of_range,
    "cumulative-scale-write": _cumulative_scale_write,
    "alias-scale": _alias_scale,
    "intra-set-alias": _intra_set_alias,
    "cross-stream-share": _cross_stream_share,
    "stale-cache-key": _stale_cache_key,
    "incomplete-undo": _incomplete_undo,
}

#: Every corruption class the seeder knows.
MUTATION_KINDS = tuple(_MUTATORS)


def mutate_plan(plan: "ExecutionPlan", kind: str) -> Optional[Mutation]:
    """Apply one corruption class; ``None`` when it does not apply."""
    try:
        mutator = _MUTATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown mutation kind {kind!r}; choose from {MUTATION_KINDS}"
        ) from None
    return mutator(plan)


def seed_mutations(plan: "ExecutionPlan") -> List[Mutation]:
    """Every applicable corruption of ``plan``, one per class."""
    out: List[Mutation] = []
    for kind in MUTATION_KINDS:
        mutation = _MUTATORS[kind](plan)
        if mutation is not None:
            out.append(mutation)
    return out


def analyze_mutation(mutation: Mutation) -> AnalysisReport:
    """Run every analyzer a mutation targets and pool the diagnostics.

    The whole-plan verifier (which now embeds the intra-set race
    prover) always runs; the stream-schedule, cache-freshness and
    move-undo lints run when the mutation carries their payload. The
    self-check gate asserts at least one :attr:`Mutation.expect_codes`
    code appears among the pooled *errors*.
    """
    from .races import (
        check_cache_freshness,
        check_move_undo,
        check_stream_schedule,
    )
    from .verifier import verify_plan

    report = verify_plan(mutation.plan)
    if mutation.streams is not None:
        report.extend(
            check_stream_schedule(
                mutation.plan.operation_sets,
                mutation.streams,
                sync_between_sets=mutation.sync_between_sets,
            )
        )
    if mutation.cache_events is not None:
        report.extend(check_cache_freshness(mutation.cache_events))
    if mutation.move_factory is not None:
        report.extend(
            check_move_undo(mutation.plan.tree.copy(), mutation.move_factory)
        )
    return report
