"""Docstring-coverage linting for the ``repro`` package.

Every *public* module-level function, class and method in the package is
expected to carry a docstring — the codebase doubles as the paper
reproduction's documentation, so an undocumented public name is a
defect, not a style nit. This module walks the source tree with
:mod:`ast` (no imports, no side effects), reports every public
definition without a docstring, and supports an allowlist file for the
gaps that are known and accepted.

Allowlist format: one ``path:qualname`` entry per line, ``#`` comments
and blank lines ignored, paths relative to the scanned root with ``/``
separators, e.g.::

    beagle/kernels.py:update_partials
    exec/pool.py:LikelihoodPool.submit

Entries that no longer match anything are reported as *stale* so the
allowlist can only shrink. The CLI front end is
``python -m repro.analysis --docstrings`` (wired into CI).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Set, Union

__all__ = [
    "MissingDocstring",
    "DocstringReport",
    "scan_source",
    "scan_file",
    "scan_package",
    "load_allowlist",
    "check_package",
]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class MissingDocstring:
    """One public definition that lacks a docstring."""

    path: str
    lineno: int
    qualname: str
    kind: str

    @property
    def key(self) -> str:
        """The allowlist entry that would suppress this finding."""
        return f"{self.path}:{self.qualname}"

    def format(self) -> str:
        """One grep-able line: ``path:lineno: kind qualname``."""
        return f"{self.path}:{self.lineno}: undocumented {self.kind} {self.qualname}"


@dataclass
class DocstringReport:
    """Outcome of a package scan.

    ``missing`` holds findings not covered by the allowlist;
    ``suppressed`` the allowlisted ones; ``stale_entries`` allowlist
    lines that matched nothing (these also fail the gate, so the
    allowlist can only shrink as gaps are burned down).
    """

    total_public: int = 0
    documented: int = 0
    missing: List[MissingDocstring] = field(default_factory=list)
    suppressed: List[MissingDocstring] = field(default_factory=list)
    stale_entries: List[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Documented fraction of public definitions (1.0 when empty)."""
        if not self.total_public:
            return 1.0
        return self.documented / self.total_public

    @property
    def ok(self) -> bool:
        """Gate verdict: no unsuppressed gaps and no stale allowlist."""
        return not self.missing and not self.stale_entries

    def format(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"docstrings: {self.documented}/{self.total_public} public "
            f"definitions documented ({self.coverage:.1%}), "
            f"{len(self.suppressed)} allowlisted"
        ]
        lines += [m.format() for m in self.missing]
        lines += [
            f"stale allowlist entry (matches nothing): {entry}"
            for entry in self.stale_entries
        ]
        return "\n".join(lines)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _has_docstring(node: ast.AST) -> bool:
    return ast.get_docstring(node, clean=False) is not None


def _walk_definitions(
    body: Sequence[ast.stmt], prefix: str, findings: List[MissingDocstring],
    counts: List[int], rel_path: str,
) -> None:
    """Recurse over public defs in ``body``, collecting undocumented ones.

    Nested functions (defs inside function bodies) are implementation
    detail and are not considered public API; class bodies recurse so
    methods of public classes are checked.
    """
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _is_public(node.name):
                continue
            qualname = f"{prefix}{node.name}"
            counts[0] += 1
            if _has_docstring(node):
                counts[1] += 1
            else:
                kind = "method" if prefix else "function"
                findings.append(
                    MissingDocstring(rel_path, node.lineno, qualname, kind)
                )
        elif isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            qualname = f"{prefix}{node.name}"
            counts[0] += 1
            if _has_docstring(node):
                counts[1] += 1
            else:
                findings.append(
                    MissingDocstring(rel_path, node.lineno, qualname, "class")
                )
            _walk_definitions(
                node.body, f"{qualname}.", findings, counts, rel_path
            )


def scan_source(
    source: str, rel_path: str
) -> tuple:
    """Scan one module's source text.

    Returns ``(findings, total_public, documented)``; raises
    :class:`SyntaxError` on unparseable source.
    """
    tree = ast.parse(source, filename=rel_path)
    findings: List[MissingDocstring] = []
    counts = [0, 0]  # [total_public, documented]
    _walk_definitions(tree.body, "", findings, counts, rel_path)
    return findings, counts[0], counts[1]


def scan_file(path: PathLike, root: PathLike) -> tuple:
    """Scan one file; the finding paths are relative to ``root``."""
    path = Path(path)
    rel = path.relative_to(root).as_posix()
    return scan_source(path.read_text(), rel)


def scan_package(root: PathLike) -> DocstringReport:
    """Scan every ``.py`` file under ``root`` (no allowlist applied)."""
    root = Path(root)
    report = DocstringReport()
    for path in sorted(root.rglob("*.py")):
        findings, total, documented = scan_file(path, root)
        report.total_public += total
        report.documented += documented
        report.missing.extend(findings)
    return report


def load_allowlist(path: PathLike) -> Set[str]:
    """Read an allowlist file into a set of ``path:qualname`` keys."""
    entries: Set[str] = set()
    for line in Path(path).read_text().splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            entries.add(stripped)
    return entries


def check_package(
    root: PathLike, allowlist_path: Optional[PathLike] = None
) -> DocstringReport:
    """Scan ``root`` and apply the allowlist — the CI gate entry point.

    A finding whose ``path:qualname`` key appears in the allowlist moves
    from ``missing`` to ``suppressed``; allowlist entries matching no
    finding are flagged stale. ``report.ok`` is the gate verdict.
    """
    report = scan_package(root)
    allowlist: Set[str] = set()
    if allowlist_path is not None and Path(allowlist_path).exists():
        allowlist = load_allowlist(allowlist_path)
    still_missing: List[MissingDocstring] = []
    used: Set[str] = set()
    for finding in report.missing:
        if finding.key in allowlist:
            report.suppressed.append(finding)
            used.add(finding.key)
        else:
            still_missing.append(finding)
    report.missing = still_missing
    report.stale_entries = sorted(allowlist - used)
    return report
