"""Static concurrency-hazard analysis: intra-set race proofs and lints.

The paper's speedup rests on one claim: operations inside a batched set
are mutually independent, so one kernel launch may execute them in any
order — or all at once. This module turns that claim into a proof
obligation. Every operation carries a read/write *footprint* over the
engine's three resource classes (partials buffers, transition-matrix
buffers, scale buffers); :func:`check_set_races` proves each set free of
intra-set WAW/WAR/RAW hazards, and :func:`check_stream_schedule` extends
the proof to multi-stream launch schedules (the GPU simulator's
``streams`` mechanism), where operations in *different* streams are
unordered between synchronization points.

Two further static lints guard the incremental engine's shared state:

* :func:`check_move_undo` — in-place :class:`~repro.inference.proposals.Move`
  completeness: everything the move actually mutated is declared
  (``touched`` / ``changed_edges``), and ``undo()`` restores the tree
  exactly (topology, child positions, branch lengths).
* :func:`check_cache_freshness` / :func:`check_cache_coherence` —
  transition-matrix-cache freshness: no plan may consume a cached
  ``P(t)`` whose ``(eigen, rates_version)`` key predates a model
  mutation on the same path, and an instance's rates version key must
  match its live rate vector (in-place mutation bypassing
  ``set_category_rates`` would silently poison the cache).

All findings are typed :class:`~repro.analysis.diagnostics.Diagnostic`
values; the new codes are ``race-waw``, ``race-raw``, ``race-war``,
``cross-stream-write-sharing``, ``cross-stream-dependency``,
``stream-assignment-shape``, ``undo-incomplete``, ``undeclared-mutation``,
``stale-matrix-cache``, ``cache-version-regression`` and
``stale-rates-key``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..beagle.operations import Operation
from .diagnostics import AnalysisReport, Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..beagle.instance import BeagleInstance
    from ..core.planner import ExecutionPlan
    from ..inference.proposals import Move
    from ..trees import Tree
    from ..trees.node import Node

__all__ = [
    "Footprint",
    "operation_footprint",
    "check_set_races",
    "check_matrix_update_races",
    "round_robin_streams",
    "check_stream_schedule",
    "verify_races",
    "check_move_undo",
    "CacheEvent",
    "check_cache_freshness",
    "check_cache_coherence",
]

#: A resource an operation touches: ``(kind, index)`` with kind one of
#: ``"partials"``, ``"matrix"``, ``"scale"``.
Resource = Tuple[str, int]


@dataclass(frozen=True)
class Footprint:
    """The exact resource sets one operation reads and writes.

    Partials reads come from the two child buffers, matrix reads from
    the two branch matrices; the operation writes its destination
    partials buffer and (when rescaling) one scale slot. Footprints are
    what make race claims checkable: two operations may share a launch
    iff their footprints do not conflict.
    """

    reads: FrozenSet[Resource]
    writes: FrozenSet[Resource]

    def conflicts(self, other: "Footprint") -> List[Tuple[str, Resource]]:
        """Hazards between this footprint (earlier in submission order)
        and ``other`` (later): ``("waw" | "raw" | "war", resource)``.

        Within one launch submission order carries no execution
        ordering, so every returned hazard is a genuine race.
        """
        out: List[Tuple[str, Resource]] = []
        for resource in sorted(self.writes & other.writes):
            out.append(("waw", resource))
        for resource in sorted(self.writes & other.reads):
            out.append(("raw", resource))
        for resource in sorted(self.reads & other.writes):
            out.append(("war", resource))
        return out


def operation_footprint(op: Operation) -> Footprint:
    """The read/write footprint of one partial-likelihood operation."""
    reads = {
        ("partials", op.child1),
        ("partials", op.child2),
        ("matrix", op.child1_matrix),
        ("matrix", op.child2_matrix),
    }
    writes: set[Resource] = {("partials", op.destination)}
    if op.destination_scale >= 0:
        writes.add(("scale", op.destination_scale))
    return Footprint(reads=frozenset(reads), writes=frozenset(writes))


def _resource_label(resource: Resource) -> str:
    kind, index = resource
    return f"{kind} buffer {index}"


_HAZARD_NAMES = {
    "waw": "write-write (WAW)",
    "raw": "read-after-write (RAW)",
    "war": "write-after-read (WAR)",
}


def check_set_races(
    operation_sets: Sequence[Sequence[Operation]],
) -> List[Diagnostic]:
    """Prove every operation set free of intra-set WAW/WAR/RAW hazards.

    Each set is one concurrent launch: its operations execute in an
    undefined order, possibly simultaneously, so *any* footprint overlap
    where at least one side writes is a race. Read-read sharing (two
    operations reading one child, or one transition matrix) is the
    paper's whole point and is of course allowed.
    """
    out: List[Diagnostic] = []
    position = 0
    for set_index, op_set in enumerate(operation_sets):
        prints = [operation_footprint(op) for op in op_set]
        for i, fp in enumerate(prints):
            overlap = fp.writes & fp.reads
            if overlap:
                resource = sorted(overlap)[0]
                out.append(
                    Diagnostic(
                        code="race-raw",
                        severity=Severity.ERROR,
                        message=(
                            f"operation {position + i} reads its own "
                            f"destination ({_resource_label(resource)}) "
                            f"within one launch"
                        ),
                        set_index=set_index,
                        op_index=position + i,
                        buffers=(resource[1],),
                        hint="an in-place update cannot run as a batched kernel",
                    )
                )
        for i in range(len(prints)):
            for j in range(i + 1, len(prints)):
                for hazard, resource in prints[i].conflicts(prints[j]):
                    out.append(
                        Diagnostic(
                            code=f"race-{hazard}",
                            severity=Severity.ERROR,
                            message=(
                                f"intra-set {_HAZARD_NAMES[hazard]} race on "
                                f"{_resource_label(resource)}: operations "
                                f"{position + i} and {position + j} share "
                                f"launch {set_index} but are not independent"
                            ),
                            set_index=set_index,
                            op_index=position + j,
                            buffers=(resource[1],),
                            hint=(
                                "split the operations into different sets "
                                "or give them disjoint footprints"
                            ),
                        )
                    )
        position += len(op_set)
    return out


def check_matrix_update_races(
    matrix_indices: Sequence[int], branch_lengths: Sequence[float]
) -> List[Diagnostic]:
    """Prove the batched matrix update free of destination races.

    ``update_transition_matrices`` is itself one batched kernel; two
    entries targeting the same matrix buffer with *different* branch
    lengths are a write-write race whose winner is undefined on a
    device. (Same-length duplicates are wasteful, not racy — the
    dataflow pass warns about them separately.)
    """
    out: List[Diagnostic] = []
    seen: Dict[int, float] = {}
    for m, t in zip(matrix_indices, branch_lengths):
        if m in seen and seen[m] != t:
            out.append(
                Diagnostic(
                    code="race-waw",
                    severity=Severity.ERROR,
                    message=(
                        f"matrix buffer {m} is updated twice in one batch "
                        f"with different branch lengths ({seen[m]!r} and "
                        f"{t!r}); the surviving matrix is undefined"
                    ),
                    buffers=(m,),
                    hint="deduplicate the matrix-update table",
                )
            )
        seen.setdefault(m, t)
    return out


def round_robin_streams(
    set_sizes: Sequence[int], n_streams: int
) -> List[List[int]]:
    """The GPU simulator's implicit stream assignment, made explicit.

    Operations of each set are dealt round-robin across ``n_streams``
    streams — exactly the ``ceil(k / S)`` rounds the analytical streams
    model (:func:`repro.gpu.streams.streams_set_time`) charges for.
    """
    if n_streams < 1:
        raise ValueError("need at least one stream")
    return [[j % n_streams for j in range(k)] for k in set_sizes]


def check_stream_schedule(
    operation_sets: Sequence[Sequence[Operation]],
    streams: Sequence[Sequence[int]],
    *,
    sync_between_sets: bool = True,
) -> List[Diagnostic]:
    """Prove a multi-stream launch schedule race-free.

    ``streams[k][j]`` names the stream operation ``j`` of set ``k`` is
    issued into. Operations in one stream execute in issue order;
    operations in different streams are unordered between
    synchronization points. With ``sync_between_sets`` (the engine's and
    the GPU simulator's semantics — a device-wide join after every set)
    only intra-set pairs can race; without it the whole schedule is one
    synchronization window and cross-set dependencies must be carried by
    stream order, so a writer and its reader in different streams is an
    unsynchronized sharing bug even though their *sets* are ordered.
    """
    out: List[Diagnostic] = []
    if len(streams) != len(operation_sets) or any(
        len(s) != len(op_set) for s, op_set in zip(streams, operation_sets)
    ):
        out.append(
            Diagnostic(
                code="stream-assignment-shape",
                severity=Severity.ERROR,
                message=(
                    f"stream assignment shape "
                    f"{[len(s) for s in streams]} does not match the "
                    f"schedule's set sizes "
                    f"{[len(s) for s in operation_sets]}"
                ),
                hint="assign exactly one stream per operation",
            )
        )
        return out

    # (window, resource) -> accesses as (set, op, stream, is_write).
    Access = Tuple[int, int, int, bool]
    accesses: Dict[Tuple[int, Resource], List[Access]] = {}
    position = 0
    for set_index, (op_set, lanes) in enumerate(zip(operation_sets, streams)):
        window = set_index if sync_between_sets else 0
        for j, (op, lane) in enumerate(zip(op_set, lanes)):
            fp = operation_footprint(op)
            for resource in fp.writes:
                accesses.setdefault((window, resource), []).append(
                    (set_index, position + j, lane, True)
                )
            for resource in fp.reads:
                accesses.setdefault((window, resource), []).append(
                    (set_index, position + j, lane, False)
                )
        position += len(op_set)

    for (window, resource), entries in sorted(accesses.items()):
        for a in range(len(entries)):
            set_a, op_a, lane_a, write_a = entries[a]
            for b in range(a + 1, len(entries)):
                set_b, op_b, lane_b, write_b = entries[b]
                if lane_a == lane_b or not (write_a or write_b):
                    continue  # serialized by the stream, or read-read
                if write_a and write_b:
                    code = "cross-stream-write-sharing"
                    what = "both write"
                else:
                    code = "cross-stream-dependency"
                    what = "one writes and one reads"
                out.append(
                    Diagnostic(
                        code=code,
                        severity=Severity.ERROR,
                        message=(
                            f"{_resource_label(resource)} is shared across "
                            f"streams {lane_a} and {lane_b} without a "
                            f"synchronization point: operations {op_a} "
                            f"(set {set_a}) and {op_b} (set {set_b}) "
                            f"{what}"
                        ),
                        set_index=set_b,
                        op_index=op_b,
                        buffers=(resource[1],),
                        hint=(
                            "issue the pair into one stream or insert a "
                            "device synchronization between their sets"
                        ),
                    )
                )
    return out


def verify_races(plan: "ExecutionPlan", *, n_streams: int = 0) -> AnalysisReport:
    """Race-prove one plan: its operation sets, its batched matrix
    update, and (when ``n_streams > 0``) its round-robin stream
    schedule under per-set synchronization.

    Returns an empty report for every plan the library's planners
    produce — that emptiness *is* the concurrency proof the paper's
    batching claim rests on.
    """
    report = AnalysisReport(check_set_races(plan.operation_sets))
    report.extend(
        check_matrix_update_races(plan.matrix_indices, plan.branch_lengths)
    )
    if n_streams > 0:
        report.extend(
            check_stream_schedule(
                plan.operation_sets,
                round_robin_streams(plan.set_sizes, n_streams),
            )
        )
    return report


# ----------------------------------------------------------------------
# In-place move undo-completeness
# ----------------------------------------------------------------------

#: Per-node state: (parent id, child ids in order, branch length).
_NodeState = Tuple[Optional[int], Tuple[int, ...], float]


def _tree_state(tree: "Tree") -> Dict[int, _NodeState]:
    state: Dict[int, _NodeState] = {}
    for node in tree.root.traverse_postorder():
        state[id(node)] = (
            None if node.parent is None else id(node.parent),
            tuple(id(c) for c in node.children),
            float(node.length),
        )
    return state


def _node_labels(tree: "Tree") -> Dict[int, str]:
    labels: Dict[int, str] = {}
    for i, node in enumerate(tree.root.traverse_postorder()):
        labels[id(node)] = node.name if node.name else f"node#{i}"
    return labels


def check_move_undo(
    tree: "Tree", make_move: Callable[["Tree"], Optional["Move"]]
) -> List[Diagnostic]:
    """Prove one in-place move declaration-complete and undo-exact.

    Applies ``make_move`` to ``tree`` (which is mutated and then
    restored — pass a copy if the tree must stay untouched on a *buggy*
    move), diffs the tree state around the application, and checks:

    * every node whose parent changed is declared in ``move.touched``
      and every node whose branch length changed is declared in
      ``move.changed_edges`` (``undeclared-mutation`` otherwise — the
      incremental engine would under-invalidate);
    * after ``move.undo()`` the tree state — topology, child order and
      branch lengths — is bit-exactly the pre-move state
      (``undo-incomplete`` otherwise — a rejected proposal would leave
      a corrupted chain state).

    Returns no diagnostics when ``make_move`` returns ``None`` (the
    move did not apply, e.g. an NNI on a 3-tip tree).
    """
    labels = _node_labels(tree)
    before = _tree_state(tree)
    move = make_move(tree)
    if move is None:
        return []
    out: List[Diagnostic] = []
    after = _tree_state(tree)

    touched_ids = {id(n) for n in move.touched}
    changed_edge_ids = {id(n) for n in move.changed_edges}
    for node_id, state in after.items():
        prior = before.get(node_id)
        if prior is None:
            out.append(
                Diagnostic(
                    code="undeclared-mutation",
                    severity=Severity.ERROR,
                    message=(
                        f"move {move.kind!r} created node "
                        f"{labels.get(node_id, '<new>')}, which in-place "
                        f"moves must never do"
                    ),
                )
            )
            continue
        if prior[0] != state[0] and node_id not in touched_ids:
            out.append(
                Diagnostic(
                    code="undeclared-mutation",
                    severity=Severity.ERROR,
                    message=(
                        f"move {move.kind!r} reparented node "
                        f"{labels[node_id]} without declaring it in "
                        f"'touched'; the incremental dirty path would "
                        f"miss its new root-ward ancestors"
                    ),
                    hint="add the node to Move.touched",
                )
            )
        if prior[2] != state[2] and node_id not in changed_edge_ids:
            out.append(
                Diagnostic(
                    code="undeclared-mutation",
                    severity=Severity.ERROR,
                    message=(
                        f"move {move.kind!r} changed the branch above node "
                        f"{labels[node_id]} ({prior[2]!r} -> {state[2]!r}) "
                        f"without declaring it in 'changed_edges'; its "
                        f"transition matrix would go stale"
                    ),
                    hint="add the node to Move.changed_edges",
                )
            )

    move.undo()
    restored = _tree_state(tree)
    if set(restored) != set(before):
        out.append(
            Diagnostic(
                code="undo-incomplete",
                severity=Severity.ERROR,
                message=(
                    f"undo of move {move.kind!r} changed the tree's node "
                    f"set ({len(before)} nodes before, {len(restored)} "
                    f"after)"
                ),
            )
        )
        return out
    for node_id, prior in before.items():
        now = restored[node_id]
        if now == prior:
            continue
        details: List[str] = []
        if prior[0] != now[0]:
            details.append("parent")
        if prior[1] != now[1]:
            details.append("child order")
        if prior[2] != now[2]:
            details.append(f"branch length ({prior[2]!r} -> {now[2]!r})")
        out.append(
            Diagnostic(
                code="undo-incomplete",
                severity=Severity.ERROR,
                message=(
                    f"undo of move {move.kind!r} failed to restore "
                    f"{' and '.join(details)} of node {labels[node_id]}; "
                    f"a rejected proposal would corrupt the chain state"
                ),
                hint="the undo closure must restore every declared change",
            )
        )
    return out


# ----------------------------------------------------------------------
# Transition-matrix-cache freshness
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheEvent:
    """One event on an inference path touching the matrix cache.

    ``kind`` is ``"mutate"`` (a model mutation — new rates or a new
    eigen decomposition — advancing the path to model version
    ``version``) or ``"consume"`` (an :class:`ExecutionPlan` execution
    consuming cached matrices keyed at model version ``version``).
    """

    kind: str
    version: int
    label: str = ""


def check_cache_freshness(events: Sequence[CacheEvent]) -> List[Diagnostic]:
    """Prove no plan on the path consumes a stale cached ``P(t)``.

    A consumption is stale when its key's model version predates a
    mutation already seen on the same path — the cached matrices were
    computed under rates or an eigensystem the model no longer has.
    """
    out: List[Diagnostic] = []
    current = 0
    for event in events:
        if event.kind == "mutate":
            if event.version <= current:
                out.append(
                    Diagnostic(
                        code="cache-version-regression",
                        severity=Severity.ERROR,
                        message=(
                            f"model mutation {event.label or '<unnamed>'} "
                            f"reuses version {event.version} (path already "
                            f"at {current}); versions must be strictly "
                            f"increasing or distinct mutations become "
                            f"indistinguishable in cache keys"
                        ),
                    )
                )
            current = max(current, event.version)
        elif event.kind == "consume":
            if event.version < current:
                out.append(
                    Diagnostic(
                        code="stale-matrix-cache",
                        severity=Severity.ERROR,
                        message=(
                            f"plan {event.label or '<unnamed>'} consumes "
                            f"cached transition matrices keyed at model "
                            f"version {event.version}, but a mutation on "
                            f"this path already advanced the model to "
                            f"version {current}"
                        ),
                        hint=(
                            "rebuild the cache key after every "
                            "set_category_rates / set_eigen_decomposition"
                        ),
                    )
                )
        else:
            raise ValueError(f"unknown cache event kind {event.kind!r}")
    return out


def check_cache_coherence(instance: "BeagleInstance") -> List[Diagnostic]:
    """Prove an instance's cache keys reflect its live model state.

    The cache keys every entry by the rates version (the category-rate
    vector's bytes) captured when :meth:`set_category_rates` last ran.
    Mutating the rate array in place bypasses the setter, leaves the
    version key stale, and silently poisons the cache: lookups keep
    hitting matrices computed under the old rates while fresh misses are
    computed under the new rates and stored under the old key.
    """
    out: List[Diagnostic] = []
    live = instance._category_rates.tobytes()
    if live != instance._rates_key:
        out.append(
            Diagnostic(
                code="stale-rates-key",
                severity=Severity.ERROR,
                message=(
                    "category rates were mutated in place: the live rate "
                    "vector no longer matches the rates version key under "
                    "which cached transition matrices are looked up"
                ),
                hint="always change rates through set_category_rates",
            )
        )
    return out
