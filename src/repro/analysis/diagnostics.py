"""Typed diagnostics for the static plan analyzer.

Every finding of the analyzer — a buffer hazard, an index out of range, a
schedule-quality regression — is a :class:`Diagnostic`: a typed, stable
``code``, a :class:`Severity`, the operation/set coordinates it anchors
to, the buffer indices involved, and a fix hint. Diagnostics are pure
data with no dependency on the rest of the library, so the lowest layers
(:mod:`repro.beagle.operations`) can raise them without import cycles.

:class:`AnalysisReport` is the ordered collection a verification pass
returns; :class:`PlanVerificationError` (a ``ValueError``) carries a
report across the raise boundary for callers that want hard failures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "PlanVerificationError",
]


class Severity(enum.IntEnum):
    """Importance of a diagnostic; ordered so ``max()`` works."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name of the severity level."""
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    Attributes
    ----------
    code:
        Stable kebab-case identifier of the finding class (e.g.
        ``"read-before-write"``); tests and tooling match on this, never
        on the message text.
    severity:
        :data:`Severity.ERROR` findings make a plan unexecutable (or
        numerically wrong); warnings flag waste or suspicious structure.
    message:
        Human-readable one-liner describing the concrete finding.
    set_index, op_index:
        Coordinates of the offending operation: the operation-set number
        and the global position in the flattened operation stream
        (either may be ``None`` for plan-level findings).
    buffers:
        Partials/matrix/scale buffer indices involved, for programmatic
        consumers.
    hint:
        A suggested fix, when one is mechanical enough to state.
    """

    code: str
    severity: Severity
    message: str
    set_index: Optional[int] = None
    op_index: Optional[int] = None
    buffers: Tuple[int, ...] = ()
    hint: Optional[str] = None

    def format(self) -> str:
        """Render as a compiler-style single line."""
        where = ""
        if self.set_index is not None or self.op_index is not None:
            coords = []
            if self.set_index is not None:
                coords.append(f"set {self.set_index}")
            if self.op_index is not None:
                coords.append(f"op {self.op_index}")
            where = " at " + ", ".join(coords)
        text = f"{self.severity.label}[{self.code}]{where}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


@dataclass
class AnalysisReport:
    """Ordered collection of diagnostics from one verification pass."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append ``diagnostics`` to the report."""
        self.diagnostics.extend(diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        """Diagnostics of ERROR severity or higher."""
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Diagnostics of WARNING severity."""
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the plan is safe to execute (no errors)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when the analyzer found nothing at all."""
        return not self.diagnostics

    def codes(self) -> Dict[str, int]:
        """Histogram of diagnostic codes."""
        out: Dict[str, int] = {}
        for d in self.diagnostics:
            out[d.code] = out.get(d.code, 0) + 1
        return out

    def has_code(self, code: str) -> bool:
        """Is any diagnostic tagged with ``code``?"""
        return any(d.code == code for d in self.diagnostics)

    def by_code(self, code: str) -> List[Diagnostic]:
        """All diagnostics tagged with ``code``."""
        return [d for d in self.diagnostics if d.code == code]

    def format(self) -> str:
        """Multi-line report, one diagnostic per line."""
        if self.clean:
            return "no diagnostics"
        return "\n".join(d.format() for d in self.diagnostics)

    def raise_if_errors(self) -> "AnalysisReport":
        """Raise :class:`PlanVerificationError` when any error is present.

        Returns the report itself otherwise, so the call chains.
        """
        if not self.ok:
            raise PlanVerificationError(self.errors)
        return self


class PlanVerificationError(ValueError):
    """A plan failed static verification.

    Subclasses ``ValueError`` so pre-analyzer call sites that caught the
    old untyped errors keep working; carries the underlying diagnostics
    in ``self.diagnostics``.
    """

    def __init__(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        summary = "; ".join(d.format() for d in self.diagnostics[:5])
        extra = len(self.diagnostics) - 5
        if extra > 0:
            summary += f"; … and {extra} more"
        super().__init__(f"plan verification failed: {summary}")
