"""Static analysis of execution plans — prove schedules safe *before* running them.

The subsystem has five layers:

* :mod:`repro.analysis.dataflow` — a buffer def/use engine that detects
  read-before-write, intra-set and cross-set hazards, index-range
  violations, scale-buffer misuse and dead writes in any operation-set
  schedule (the invariants of paper §VI-A, checked without execution);
* :mod:`repro.analysis.races` — concurrency-hazard proofs over
  per-operation read/write footprints: intra-set WAW/WAR/RAW races,
  multi-stream launch-schedule sharing, in-place-move undo-completeness
  and transition-matrix-cache freshness;
* :mod:`repro.analysis.sanitizer` — the dynamic twin: an epoch/lockset
  shadow-state recorder (:class:`RaceDetector` around a
  :class:`SanitizedInstance`) that catches unsynchronized cross-thread
  buffer access under the threaded pool at run time;
* :mod:`repro.analysis.verifier` — whole-plan verification
  (:func:`verify_plan`) adding plan-level structure checks: root
  reachability, operation counts, matrix-update coverage, branch-length
  sanity;
* :mod:`repro.analysis.audit` — schedule-quality auditing
  (:func:`audit_plan`): actual launch count versus the rooting's height
  bound and the post-reroot optimum, so scheduling regressions are
  caught statically.

:mod:`repro.analysis.mutate` seeds corrupted plans (and schedules, cache
traces and moves) to mutation-test the analyzer itself, and
``python -m repro.analysis`` is the CLI front end (with ``--self-check``
as the CI gate and ``--races`` / ``--sanitize`` for the concurrency
checkers).
"""

from .audit import ScheduleAudit, audit_plan, audit_tree
from .config import BufferConfig
from .docstrings import DocstringReport, MissingDocstring, check_package
from .diagnostics import (
    AnalysisReport,
    Diagnostic,
    PlanVerificationError,
    Severity,
)
from .dataflow import analyze_operation_sets, analyze_stream
from .mutate import (
    MUTATION_KINDS,
    Mutation,
    analyze_mutation,
    mutate_plan,
    seed_mutations,
)
from .races import (
    CacheEvent,
    Footprint,
    check_cache_coherence,
    check_cache_freshness,
    check_matrix_update_races,
    check_move_undo,
    check_set_races,
    check_stream_schedule,
    operation_footprint,
    round_robin_streams,
    verify_races,
)
from .sanitizer import RaceDetector, RaceReport, SanitizedInstance
from .verifier import (
    verify_gradient_plan,
    verify_instance_compat,
    verify_operation_sets,
    verify_plan,
)

__all__ = [
    "AnalysisReport",
    "BufferConfig",
    "CacheEvent",
    "Diagnostic",
    "DocstringReport",
    "Footprint",
    "MissingDocstring",
    "check_package",
    "MUTATION_KINDS",
    "Mutation",
    "PlanVerificationError",
    "RaceDetector",
    "RaceReport",
    "SanitizedInstance",
    "ScheduleAudit",
    "Severity",
    "analyze_mutation",
    "analyze_operation_sets",
    "analyze_stream",
    "audit_plan",
    "audit_tree",
    "check_cache_coherence",
    "check_cache_freshness",
    "check_matrix_update_races",
    "check_move_undo",
    "check_set_races",
    "check_stream_schedule",
    "mutate_plan",
    "operation_footprint",
    "round_robin_streams",
    "seed_mutations",
    "verify_gradient_plan",
    "verify_instance_compat",
    "verify_operation_sets",
    "verify_plan",
    "verify_races",
]
