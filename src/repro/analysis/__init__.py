"""Static analysis of execution plans — prove schedules safe *before* running them.

The subsystem has three layers:

* :mod:`repro.analysis.dataflow` — a buffer def/use engine that detects
  read-before-write, intra-set and cross-set hazards, index-range
  violations, scale-buffer misuse and dead writes in any operation-set
  schedule (the invariants of paper §VI-A, checked without execution);
* :mod:`repro.analysis.verifier` — whole-plan verification
  (:func:`verify_plan`) adding plan-level structure checks: root
  reachability, operation counts, matrix-update coverage, branch-length
  sanity;
* :mod:`repro.analysis.audit` — schedule-quality auditing
  (:func:`audit_plan`): actual launch count versus the rooting's height
  bound and the post-reroot optimum, so scheduling regressions are
  caught statically.

:mod:`repro.analysis.mutate` seeds corrupted plans to mutation-test the
analyzer itself, and ``python -m repro.analysis`` is the CLI front end
(with ``--self-check`` as the CI gate).
"""

from .audit import ScheduleAudit, audit_plan, audit_tree
from .config import BufferConfig
from .docstrings import DocstringReport, MissingDocstring, check_package
from .diagnostics import (
    AnalysisReport,
    Diagnostic,
    PlanVerificationError,
    Severity,
)
from .dataflow import analyze_operation_sets, analyze_stream
from .mutate import MUTATION_KINDS, Mutation, mutate_plan, seed_mutations
from .verifier import verify_instance_compat, verify_operation_sets, verify_plan

__all__ = [
    "AnalysisReport",
    "BufferConfig",
    "Diagnostic",
    "DocstringReport",
    "MissingDocstring",
    "check_package",
    "MUTATION_KINDS",
    "Mutation",
    "PlanVerificationError",
    "ScheduleAudit",
    "Severity",
    "analyze_operation_sets",
    "analyze_stream",
    "audit_plan",
    "audit_tree",
    "mutate_plan",
    "seed_mutations",
    "verify_instance_compat",
    "verify_operation_sets",
    "verify_plan",
]
