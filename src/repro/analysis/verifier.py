"""Whole-plan static verification.

:func:`verify_plan` proves an :class:`~repro.core.planner.ExecutionPlan`
hazard-free without executing it: the buffer dataflow of every operation
set (via :mod:`repro.analysis.dataflow`), the intra-set race proofs
(via :mod:`repro.analysis.races`), the matrix-update table, the
branch-length vector, and plan-level structure (root reachability,
operation count). :func:`verify_operation_sets` exposes the same engine
for bare schedules — incremental dirty-path updates, hand-built streams
— where no full plan object exists.
"""

from __future__ import annotations

from math import isfinite
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..beagle.operations import Operation
from .config import BufferConfig
from .dataflow import analyze_operation_sets
from .diagnostics import AnalysisReport, Diagnostic, Severity
from .races import check_matrix_update_races, check_set_races

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..beagle.instance import BeagleInstance
    from ..core.planner import ExecutionPlan, GradientPlan

__all__ = [
    "verify_plan",
    "verify_gradient_plan",
    "verify_operation_sets",
    "verify_instance_compat",
]


def verify_operation_sets(
    operation_sets: Sequence[Sequence[Operation]],
    config: BufferConfig,
    *,
    assume_valid: Iterable[int] = (),
    root_buffer: Optional[int] = None,
    matrix_updates: Optional[Sequence[int]] = None,
    check_dead_writes: bool = True,
    races: bool = True,
) -> AnalysisReport:
    """Dataflow-verify a bare operation-set schedule.

    ``races`` (default on) additionally runs the footprint-based
    intra-set WAW/WAR/RAW race prover
    (:func:`repro.analysis.races.check_set_races`) over the same sets —
    this is how ``incremental_plan(verify=True)`` dirty paths get their
    concurrency proof.
    """
    report = AnalysisReport(
        analyze_operation_sets(
            operation_sets,
            config,
            assume_valid=assume_valid,
            root_buffer=root_buffer,
            matrix_updates=matrix_updates,
            check_dead_writes=check_dead_writes,
        )
    )
    if races:
        report.extend(check_set_races(operation_sets))
    return report


def verify_plan(
    plan: "ExecutionPlan",
    *,
    config: Optional[BufferConfig] = None,
    instance: Optional["BeagleInstance"] = None,
) -> AnalysisReport:
    """Statically verify a full execution plan.

    Parameters
    ----------
    plan:
        The plan to check.
    config:
        Buffer layout to verify against; defaults to the layout
        :func:`repro.core.planner.create_instance` would build for the
        plan's tree (``BufferConfig.for_tree``).
    instance:
        Alternatively, an existing engine instance whose actual layout
        should be used — catches plan/instance mismatches.

    Returns
    -------
    AnalysisReport
        Empty (``report.clean``) for every plan the library's planners
        produce; ``report.ok`` is False when execution would fail or
        silently compute a wrong likelihood.

    Notes
    -----
    Incremental plans (``plan.incremental``) are verified under the
    dirty-path contract: buffers outside the plan's destinations are
    assumed live from the preceding full evaluation, the full-traversal
    operation-count invariant does not apply, and the root must be among
    the dirty destinations (a dirty path always ends at the root).

    Plans and :class:`BufferConfig` are backend-agnostic — they name
    buffer indices and operation sets only, never how a set is executed
    — so one verified plan is verified for **every** registered kernel
    backend (the backend contract forbids backends from reordering or
    regrouping a set's reads and writes; see ``docs/BACKENDS.md``).
    """
    if config is not None and instance is not None:
        raise ValueError("pass either config or instance, not both")
    if instance is not None:
        config = BufferConfig.from_instance(instance)
    if config is None:
        config = BufferConfig.for_tree(plan.tree, scaling=plan.scaling)

    report = AnalysisReport()
    if plan.incremental:
        report.extend(_check_incremental_structure(plan, config))
        destinations = {
            op.destination for op_set in plan.operation_sets for op in op_set
        }
        clean = {
            b
            for b in range(config.n_buffers)
            if config.is_internal(b) and b not in destinations
        }
        report.extend(
            analyze_operation_sets(
                plan.operation_sets,
                config,
                assume_valid=clean,
                root_buffer=plan.root_buffer,
                matrix_updates=None,
            )
        )
        report.extend(check_set_races(plan.operation_sets))
        report.extend(
            check_matrix_update_races(plan.matrix_indices, plan.branch_lengths)
        )
        return report
    report.extend(_check_plan_structure(plan, config))
    report.extend(
        analyze_operation_sets(
            plan.operation_sets,
            config,
            root_buffer=plan.root_buffer,
            matrix_updates=plan.matrix_indices,
        )
    )
    report.extend(check_set_races(plan.operation_sets))
    report.extend(
        check_matrix_update_races(plan.matrix_indices, plan.branch_lengths)
    )
    return report


def verify_gradient_plan(gplan: "GradientPlan") -> AnalysisReport:
    """Statically verify a one-sweep all-branch gradient plan.

    The post-order half is checked under the ordinary full-plan contract
    (:func:`verify_plan`). The pre-order half is checked under the
    *upper-bank* contract over the combined index space: upper buffers
    ``upper_base .. upper_base + 2n − 2`` are modelled as additional
    internal partials buffers, the lower internals and the two seeded
    root-child uppers are assumed valid (the post pass and the seed
    copies produce them), and the merged pulley matrix joins the
    matrix-update table. Dead-write checking is off for the upper sets —
    every upper buffer is read *externally* by the per-branch
    recombination, so leaf-node uppers that no upper operation consumes
    are the product, not a bug.

    Structural invariants checked on top of the dataflow: operation
    count (``2n − 4``), seed shape (exactly the two root children,
    seeded from each other's subtrees), bank discipline (``child1``
    lower, ``child2`` and destination upper, each non-root non-root-child
    node written exactly once), and pulley-matrix sanity (the root's own
    matrix slot, finite non-negative merged length).
    """
    report = AnalysisReport()
    report.extend(verify_plan(gplan.post))
    tree = gplan.tree
    n = tree.n_tips
    base = 2 * n - 1
    config = BufferConfig(
        tip_count=n,
        partials_buffer_count=(n - 1) + (2 * n - 1),
        matrix_count=2 * n - 1,
        scale_buffer_count=0,
    )
    lower_internals = set(range(n, 2 * n - 1))
    seeded = {destination for destination, _ in gplan.seeds}
    report.extend(
        verify_operation_sets(
            gplan.upper_operation_sets,
            config,
            assume_valid=lower_internals | seeded,
            matrix_updates=list(gplan.post.matrix_indices)
            + [gplan.pulley_matrix],
            check_dead_writes=False,
        )
    )
    report.extend(_check_gradient_structure(gplan, base))
    return report


def _check_gradient_structure(
    gplan: "GradientPlan", base: int
) -> Iterable[Diagnostic]:
    """Gradient-plan invariants beyond per-operation dataflow."""
    # Imported here: repro.core.planner depends on this module.
    from ..core.schedule import pulley_matrix_update, upper_seeds

    out = []
    tree = gplan.tree
    n = tree.n_tips
    expected_ops = max(2 * n - 4, 0)
    if gplan.n_operations - gplan.post.n_operations != expected_ops:
        actual = gplan.n_operations - gplan.post.n_operations
        out.append(
            Diagnostic(
                code="upper-operation-count",
                severity=Severity.ERROR,
                message=(
                    f"gradient plan has {actual} upper operations but a "
                    f"{n}-tip tree needs exactly {expected_ops} (one per "
                    f"non-root node below the root children)"
                ),
                hint="an upper operation was dropped or duplicated",
            )
        )
    if sorted(gplan.seeds) != sorted(upper_seeds(tree)):
        out.append(
            Diagnostic(
                code="bad-upper-seeds",
                severity=Severity.ERROR,
                message=(
                    f"seeds {gplan.seeds!r} do not seed the two root "
                    f"children from each other's subtrees"
                ),
                hint="each root child's upper buffer is its sibling's lowers",
            )
        )
    seen: set = set()
    for op_set in gplan.upper_operation_sets:
        for op in op_set:
            if op.destination < base:
                out.append(
                    Diagnostic(
                        code="upper-destination-in-lower-bank",
                        severity=Severity.ERROR,
                        message=(
                            f"upper operation writes lower buffer "
                            f"{op.destination}; the pre-order pass must "
                            f"never clobber post-order partials"
                        ),
                        buffers=(op.destination,),
                    )
                )
            if op.child1 >= base:
                out.append(
                    Diagnostic(
                        code="upper-child1-not-lower",
                        severity=Severity.ERROR,
                        message=(
                            f"upper operation for buffer {op.destination} "
                            f"reads child1 {op.child1} from the upper "
                            f"bank; the sibling contribution must come "
                            f"from lower partials"
                        ),
                        buffers=(op.child1,),
                    )
                )
            if op.child2 < base:
                out.append(
                    Diagnostic(
                        code="upper-child2-not-upper",
                        severity=Severity.ERROR,
                        message=(
                            f"upper operation for buffer {op.destination} "
                            f"reads child2 {op.child2} from the lower "
                            f"bank; the parent contribution must come "
                            f"from upper partials"
                        ),
                        buffers=(op.child2,),
                    )
                )
            if op.destination in seen:
                out.append(
                    Diagnostic(
                        code="upper-buffer-rewritten",
                        severity=Severity.ERROR,
                        message=(
                            f"upper buffer {op.destination} is written "
                            f"more than once in one sweep"
                        ),
                        buffers=(op.destination,),
                    )
                )
            seen.add(op.destination)
    expected_matrix, expected_length = pulley_matrix_update(tree)
    if gplan.pulley_matrix != expected_matrix:
        out.append(
            Diagnostic(
                code="bad-pulley-matrix",
                severity=Severity.ERROR,
                message=(
                    f"pulley matrix slot {gplan.pulley_matrix} is not the "
                    f"root's matrix index {expected_matrix}"
                ),
                buffers=(gplan.pulley_matrix,),
            )
        )
    if not isfinite(gplan.pulley_length) or gplan.pulley_length < 0:
        out.append(
            Diagnostic(
                code="invalid-branch-length",
                severity=Severity.ERROR,
                message=(
                    f"merged pulley length {gplan.pulley_length!r} must be "
                    f"finite and non-negative"
                ),
                buffers=(gplan.pulley_matrix,),
            )
        )
    elif abs(gplan.pulley_length - expected_length) > 0.0:
        out.append(
            Diagnostic(
                code="stale-pulley-length",
                severity=Severity.WARNING,
                message=(
                    f"merged pulley length {gplan.pulley_length!r} does "
                    f"not match the tree's root-child lengths "
                    f"({expected_length!r}); the gradient of the pulley "
                    f"edge would be evaluated at the wrong point"
                ),
                buffers=(gplan.pulley_matrix,),
            )
        )
    return out


def verify_instance_compat(
    plan: "ExecutionPlan", instance: "BeagleInstance"
) -> AnalysisReport:
    """Verify a plan against the layout of a concrete instance."""
    return verify_plan(plan, instance=instance)


def _check_incremental_structure(
    plan: "ExecutionPlan", config: BufferConfig
) -> Iterable[Diagnostic]:
    """Plan-level invariants of a dirty-path (incremental) plan.

    The full-traversal operation-count check does not apply — an
    incremental plan covers only the dirty ancestors — but the root must
    still be written (every dirty path ends at the root), and the matrix
    table must be well-formed.
    """
    out = list(_check_root_written(plan, config))
    out.extend(_check_matrix_table(plan))
    out.extend(_check_scale_writes(plan))
    return out


def _check_plan_structure(
    plan: "ExecutionPlan", config: BufferConfig
) -> Iterable[Diagnostic]:
    """Plan-level invariants that are not per-operation dataflow."""
    out = list(_check_root_written(plan, config))

    expected_ops = plan.tree.n_tips - 1
    if plan.n_operations != expected_ops:
        out.append(
            Diagnostic(
                code="operation-count",
                severity=Severity.ERROR,
                message=(
                    f"plan has {plan.n_operations} operations but a "
                    f"{plan.tree.n_tips}-tip tree needs exactly "
                    f"{expected_ops} (one per internal node)"
                ),
                hint="an operation was dropped or duplicated",
            )
        )

    out.extend(_check_matrix_table(plan))
    out.extend(_check_scale_writes(plan))
    return out


def _check_root_written(
    plan: "ExecutionPlan", config: BufferConfig
) -> Iterable[Diagnostic]:
    """The root buffer must be an internal buffer some operation writes."""
    out = []
    destinations = {
        op.destination for op_set in plan.operation_sets for op in op_set
    }
    if plan.root_buffer not in destinations:
        if config.is_internal(plan.root_buffer):
            out.append(
                Diagnostic(
                    code="root-not-written",
                    severity=Severity.ERROR,
                    message=(
                        f"root buffer {plan.root_buffer} is never written; "
                        f"the root reduction would read stale or "
                        f"uninitialized partials"
                    ),
                    buffers=(plan.root_buffer,),
                    hint="the final operation set must compute the root",
                )
            )
        else:
            out.append(
                Diagnostic(
                    code="root-not-written",
                    severity=Severity.ERROR,
                    message=(
                        f"root buffer {plan.root_buffer} is not an internal "
                        f"partials buffer"
                    ),
                    buffers=(plan.root_buffer,),
                )
            )
    return out


def _check_matrix_table(plan: "ExecutionPlan") -> Iterable[Diagnostic]:
    """The matrix-update table must pair up and hold finite lengths."""
    out = []
    if len(plan.matrix_indices) != len(plan.branch_lengths):
        out.append(
            Diagnostic(
                code="matrix-update-shape",
                severity=Severity.ERROR,
                message=(
                    f"{len(plan.matrix_indices)} matrix indices but "
                    f"{len(plan.branch_lengths)} branch lengths"
                ),
            )
        )
    for m, t in zip(plan.matrix_indices, plan.branch_lengths):
        if not isfinite(t) or t < 0:
            out.append(
                Diagnostic(
                    code="invalid-branch-length",
                    severity=Severity.ERROR,
                    message=(
                        f"matrix {m} is updated with branch length {t!r}; "
                        f"lengths must be finite and non-negative"
                    ),
                    buffers=(m,),
                )
            )
    return out


def _check_scale_writes(plan: "ExecutionPlan") -> Iterable[Diagnostic]:
    """Warn when a scaling plan has operations that skip scale writes."""
    out = []
    if plan.scaling:
        missing = [
            op.destination
            for op_set in plan.operation_sets
            for op in op_set
            if op.destination_scale < 0
        ]
        if missing:
            out.append(
                Diagnostic(
                    code="missing-scale-write",
                    severity=Severity.WARNING,
                    message=(
                        f"plan has scaling enabled but {len(missing)} "
                        f"operation(s) write no scale factors (first: "
                        f"buffer {missing[0]}); their levels can underflow"
                    ),
                    buffers=tuple(missing[:4]),
                )
            )
    return out
