"""Schedule-quality auditing: how far is a plan from optimal?

The paper's whole result is a *count*: how many concurrent operation
sets (kernel launches) a schedule needs. The auditor reports that count
against the two relevant lower bounds —

* the **rooting bound**: the tree's topological height, the fewest sets
  any grouping of this rooting can achieve (paper §IV-B);
* the **reroot bound**: the minimum rooting bound over every edge the
  tree could be rooted on (paper §V), computed in O(n) with
  :func:`repro.core.reroot_opt.edge_rooting_heights`.

A regression in scheduling quality (say, a planner change that stops
batching a level) shows up as a nonzero ``gap_vs_rooting`` without any
behavioural test having to execute a plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.opsets import min_operation_sets
from ..core.reroot_opt import edge_rooting_heights

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.planner import ExecutionPlan
    from ..trees import Tree

__all__ = ["ScheduleAudit", "audit_plan", "audit_tree"]


@dataclass(frozen=True)
class ScheduleAudit:
    """Launch economics of one schedule versus its lower bounds.

    Attributes
    ----------
    n_operations:
        Partial-likelihood operations in the schedule (``n − 1``).
    n_sets:
        Concurrent operation sets the schedule actually uses — the
        kernel-launch count, the paper's Figure 4 quantity.
    rooting_bound:
        Minimum sets achievable for the tree *as rooted* (its height).
    reroot_bound:
        Minimum over all rootings — what optimal rerooting would reach.
    """

    n_operations: int
    n_sets: int
    rooting_bound: int
    reroot_bound: int

    @property
    def serial_sets(self) -> int:
        """Launches of the serial baseline (one per operation)."""
        return self.n_operations

    @property
    def gap_vs_rooting(self) -> int:
        """Extra launches versus the optimal grouping of this rooting."""
        return self.n_sets - self.rooting_bound

    @property
    def gap_vs_reroot(self) -> int:
        """Extra launches versus the optimum over all rootings."""
        return self.n_sets - self.reroot_bound

    @property
    def optimal_for_rooting(self) -> bool:
        """Does the schedule meet this rooting's launch lower bound?"""
        return self.gap_vs_rooting == 0

    @property
    def globally_optimal(self) -> bool:
        """Does the schedule meet the bound over *all* rootings?"""
        return self.gap_vs_reroot == 0

    @property
    def concurrency_speedup(self) -> float:
        """Launch-count speedup of this schedule over the serial order."""
        if self.n_sets == 0:
            return 1.0
        return self.serial_sets / self.n_sets

    def format(self) -> str:
        """Multi-line human-readable audit table with a verdict line."""
        lines = [
            f"operations:            {self.n_operations}",
            f"operation sets:        {self.n_sets} "
            f"(serial baseline: {self.serial_sets})",
            f"rooting lower bound:   {self.rooting_bound} "
            f"(gap {self.gap_vs_rooting:+d})",
            f"reroot lower bound:    {self.reroot_bound} "
            f"(gap {self.gap_vs_reroot:+d})",
            f"launch speedup:        {self.concurrency_speedup:.2f}x vs serial",
        ]
        if self.globally_optimal:
            lines.append("verdict:               globally optimal")
        elif self.optimal_for_rooting:
            lines.append(
                "verdict:               optimal for this rooting; rerooting "
                f"would save {self.gap_vs_reroot} launch(es)"
            )
        else:
            lines.append(
                "verdict:               suboptimal grouping; "
                f"{self.gap_vs_rooting} launch(es) above this rooting's bound"
            )
        return "\n".join(lines)


def audit_tree(tree: "Tree", n_sets: int, n_operations: int) -> ScheduleAudit:
    """Audit a set count achieved on ``tree`` against both bounds."""
    rooting_bound = min_operation_sets(tree)
    heights = edge_rooting_heights(tree)
    candidates = [h for _, _, h in heights]
    candidates.append(rooting_bound)  # the current rooting competes too
    return ScheduleAudit(
        n_operations=n_operations,
        n_sets=n_sets,
        rooting_bound=rooting_bound,
        reroot_bound=min(candidates),
    )


def audit_plan(plan: "ExecutionPlan") -> ScheduleAudit:
    """Audit an execution plan's launch count."""
    return audit_tree(plan.tree, plan.n_launches, plan.n_operations)
