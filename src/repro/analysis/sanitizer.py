"""Dynamic concurrency checking: a shadow-state buffer sanitizer.

The static race proofs (:mod:`repro.analysis.races`) cover what a
*schedule* promises; this module checks what *threads actually do*. A
:class:`RaceDetector` is an epoch/lockset access recorder: every partials,
matrix and scale buffer access made through a :class:`SanitizedInstance`
wrapper is logged as ``(engine, resource, thread, epoch, locks held)``,
and two accesses to one resource race when they come from different
threads inside the same epoch, hold no lock in common, and at least one
writes. Epochs model synchronization: the pool advances the detector's
epoch at drain barriers, so accesses ordered by a barrier can never be
paired.

The sanitizer is **off by default** and adds zero overhead when off —
nothing wraps the engine unless ``sanitize=`` / ``--sanitize`` asks for
it. When on, :class:`SanitizedInstance` intercepts the engine's public
execution surface (``update_partials_set``, ``update_partials_serial``,
``update_transition_matrices``, the scale bank, and the likelihood
reductions), records footprints, and delegates — results are
bit-identical with and without the wrapper.

Offender pairs are reported as :class:`RaceReport` values (buffer index,
both thread ids, both access kinds) and as ERROR-severity
``data-race`` diagnostics through the usual
:class:`~repro.analysis.diagnostics.AnalysisReport`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..beagle.operations import Operation
from .diagnostics import AnalysisReport, Diagnostic, Severity
from .races import operation_footprint

__all__ = ["RaceReport", "RaceDetector", "SanitizedInstance"]

#: A dynamic resource: (engine token, buffer kind, buffer index).
_DynResource = Tuple[int, str, int]


@dataclass(frozen=True)
class RaceReport:
    """One detected cross-thread race on one engine buffer.

    ``first_*`` describes the access already on record, ``second_*``
    the conflicting access that completed the pair; ``epoch`` is the
    synchronization window both fell into.
    """

    kind: str
    index: int
    first_thread: int
    second_thread: int
    first_access: str
    second_access: str
    epoch: int

    def format(self) -> str:
        """Render as a one-line offender-pair report."""
        return (
            f"data race on {self.kind} buffer {self.index}: "
            f"{self.first_access} by thread {self.first_thread} vs "
            f"{self.second_access} by thread {self.second_thread} "
            f"(epoch {self.epoch}, no common lock)"
        )


class RaceDetector:
    """Thread-safe shadow state shared by every sanitized engine.

    The detector keeps, per (engine, resource), the set of threads that
    touched the resource in the current epoch together with the locks
    each held; a new access races with a recorded one when the threads
    differ, the locksets are disjoint, and either side writes. One
    report is emitted per offending (resource, thread pair) to keep the
    output readable under heavy traffic.

    Engines are registered with :meth:`token_for`, which pins the
    underlying object for the detector's lifetime so Python's ``id``
    reuse can never alias two engines into one shadow slot.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._pinned: Dict[int, Any] = {}
        self._epoch = 0
        #: (engine, kind, index) -> thread id -> (has_write, locksets seen)
        self._accesses: Dict[
            _DynResource, Dict[int, Tuple[bool, FrozenSet[str]]]
        ] = {}
        self._reported: set[Tuple[_DynResource, int, int]] = set()
        self.races: List[RaceReport] = []
        self.accesses_recorded = 0

    # -- lifecycle -----------------------------------------------------
    def token_for(self, engine: Any) -> int:
        """A stable shadow-state token for ``engine`` (pins the object)."""
        with self._lock:
            token = id(engine)
            self._pinned.setdefault(token, engine)
            return token

    def advance_epoch(self) -> int:
        """Declare a synchronization barrier: prior accesses can no
        longer race with future ones. Returns the new epoch."""
        with self._lock:
            self._epoch += 1
            self._accesses.clear()
            # Stale tokens can no longer pair with anything, so the
            # engines they pinned may be released — otherwise a
            # long-lived detector would keep every per-job engine (and
            # its buffers) alive for the whole run.
            self._pinned.clear()
            return self._epoch

    @property
    def epoch(self) -> int:
        """The current synchronization window."""
        return self._epoch

    # -- lockset tracking ----------------------------------------------
    @contextmanager
    def locking(self, name: str) -> Iterator[None]:
        """Declare that the calling thread holds lock ``name`` within
        the block; accesses sharing a declared lock never race."""
        held = getattr(self._local, "held", None)
        if held is None:
            held = []
            self._local.held = held
        held.append(name)
        try:
            yield
        finally:
            held.pop()

    def _held(self) -> FrozenSet[str]:
        held = getattr(self._local, "held", None)
        return frozenset(held) if held else frozenset()

    # -- recording -----------------------------------------------------
    def record(
        self, token: int, kind: str, index: int, access: str
    ) -> None:
        """Record one buffer access and pair it against the epoch's log.

        ``access`` is ``"read"`` or ``"write"``. Same-thread accesses
        never race; cross-thread pairs race unless both held a common
        declared lock or both only read.
        """
        self.record_batch(token, ((kind, index, access),))

    def record_batch(
        self, token: int, accesses: Sequence[Tuple[str, int, str]]
    ) -> None:
        """Record many accesses under one lock acquisition.

        Semantically identical to calling :meth:`record` per access —
        this is the hot path for whole operation sets, where paying the
        lock/thread-identity cost per buffer would dominate the kernel.
        """
        thread = threading.get_ident()
        locks = self._held()
        with self._lock:
            self.accesses_recorded += len(accesses)
            for kind, index, access in accesses:
                is_write = access == "write"
                resource: _DynResource = (token, kind, index)
                log = self._accesses.setdefault(resource, {})
                for other_thread, (other_write, other_locks) in log.items():
                    if other_thread == thread:
                        continue
                    if not (is_write or other_write):
                        continue
                    if locks & other_locks:
                        continue
                    pair = (resource, *sorted((thread, other_thread)))
                    if pair in self._reported:
                        continue
                    self._reported.add(pair)
                    self.races.append(
                        RaceReport(
                            kind=kind,
                            index=index,
                            first_thread=other_thread,
                            second_thread=thread,
                            first_access="write" if other_write else "read",
                            second_access=access,
                            epoch=self._epoch,
                        )
                    )
                prior = log.get(thread)
                if prior is None:
                    log[thread] = (is_write, locks)
                else:
                    log[thread] = (prior[0] or is_write, prior[1] & locks)

    # -- reporting -----------------------------------------------------
    @property
    def clean(self) -> bool:
        """True while no race has been detected."""
        return not self.races

    def to_report(self) -> AnalysisReport:
        """The detected races as ERROR ``data-race`` diagnostics."""
        return AnalysisReport(
            [
                Diagnostic(
                    code="data-race",
                    severity=Severity.ERROR,
                    message=race.format(),
                    buffers=(race.index,),
                    hint=(
                        "give each thread its own engine instance or "
                        "synchronize the accesses"
                    ),
                )
                for race in self.races
            ]
        )

    def format(self) -> str:
        """Human-readable summary of the detector's findings."""
        if self.clean:
            return (
                f"sanitizer clean: {self.accesses_recorded} accesses "
                f"recorded, no cross-thread races"
            )
        lines = [
            f"sanitizer found {len(self.races)} race(s) in "
            f"{self.accesses_recorded} recorded accesses:"
        ]
        lines.extend("  " + race.format() for race in self.races)
        return "\n".join(lines)


class _SanitizedScale:
    """Scale-bank facade recording reads/writes into the detector."""

    def __init__(self, inner: Any, detector: RaceDetector, token: int) -> None:
        self._inner = inner
        self._detector = detector
        self._token = token

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def write(self, index: int, log_factors: Any) -> None:
        """Record then delegate a per-node scale write."""
        self._detector.record(self._token, "scale", index, "write")
        self._inner.write(index, log_factors)

    def read(self, index: int) -> Any:
        """Record then delegate a scale read."""
        self._detector.record(self._token, "scale", index, "read")
        return self._inner.read(index)

    def reset(self, index: int) -> None:
        """Record then delegate a cumulative-slot reset (a write)."""
        self._detector.record(self._token, "scale", index, "write")
        self._inner.reset(index)

    def accumulate(self, source_indices: Sequence[int], cumulative_index: int) -> None:
        """Record the gather (reads) and the cumulative write, then
        delegate."""
        for index in source_indices:
            self._detector.record(self._token, "scale", int(index), "read")
        self._detector.record(self._token, "scale", cumulative_index, "write")
        self._inner.accumulate(source_indices, cumulative_index)


class SanitizedInstance:
    """A transparent engine wrapper that shadows every buffer access.

    Wraps a :class:`~repro.beagle.instance.BeagleInstance` (results are
    bit-identical — the wrapper only records and delegates) and reports
    each operation's footprint to the shared :class:`RaceDetector`
    before executing it. Compose it *innermost* in a worker stack so the
    resilient/fault layers above still exercise it.
    """

    def __init__(self, inner: Any, detector: RaceDetector) -> None:
        self._inner = inner
        self._detector = detector
        self._token = detector.token_for(inner)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    @property
    def detector(self) -> RaceDetector:
        """The shared shadow state this wrapper records into."""
        return self._detector

    @property
    def scale(self) -> Any:
        """The engine's scale bank, wrapped to record its accesses."""
        return _SanitizedScale(self._inner.scale, self._detector, self._token)

    def _record_operations(self, operations: Sequence[Operation]) -> None:
        accesses: List[Tuple[str, int, str]] = []
        for op in operations:
            fp = operation_footprint(op)
            accesses.extend((kind, index, "read") for kind, index in fp.reads)
            accesses.extend((kind, index, "write") for kind, index in fp.writes)
        self._detector.record_batch(self._token, accesses)

    def update_partials_set(self, operations: Sequence[Operation]) -> None:
        """Record the set's footprints, then launch it on the engine."""
        self._record_operations(operations)
        self._inner.update_partials_set(operations)

    def update_partials_serial(self, operations: Sequence[Operation]) -> None:
        """Record the operations' footprints, then run them serially."""
        self._record_operations(operations)
        self._inner.update_partials_serial(operations)

    def update_transition_matrices(
        self,
        eigen_index: int,
        matrix_indices: Sequence[int],
        branch_lengths: Sequence[float],
    ) -> None:
        """Record the batched matrix writes, then delegate."""
        self._detector.record_batch(
            self._token,
            [("matrix", int(index), "write") for index in matrix_indices],
        )
        self._inner.update_transition_matrices(
            eigen_index, matrix_indices, branch_lengths
        )

    def set_transition_matrix(self, matrix_index: int, matrix: Any) -> None:
        """Record the direct matrix install, then delegate."""
        self._detector.record(self._token, "matrix", int(matrix_index), "write")
        self._inner.set_transition_matrix(matrix_index, matrix)

    def calculate_root_log_likelihood(
        self, root_buffer: int, cumulative_scale_index: int = -1
    ) -> float:
        """Record the root (and cumulative-scale) reads, then reduce."""
        self._detector.record(self._token, "partials", root_buffer, "read")
        if cumulative_scale_index >= 0:
            self._detector.record(
                self._token, "scale", cumulative_scale_index, "read"
            )
        return float(
            self._inner.calculate_root_log_likelihood(
                root_buffer, cumulative_scale_index
            )
        )

    def calculate_edge_log_likelihood(
        self,
        parent_buffer: int,
        child_buffer: int,
        matrix_index: int,
        cumulative_scale_index: int = -1,
    ) -> float:
        """Record the edge reduction's reads, then delegate."""
        self._detector.record(self._token, "partials", parent_buffer, "read")
        self._detector.record(self._token, "partials", child_buffer, "read")
        self._detector.record(self._token, "matrix", matrix_index, "read")
        if cumulative_scale_index >= 0:
            self._detector.record(
                self._token, "scale", cumulative_scale_index, "read"
            )
        return float(
            self._inner.calculate_edge_log_likelihood(
                parent_buffer, child_buffer, matrix_index, cumulative_scale_index
            )
        )

    def get_partials(self, buffer_index: int) -> Any:
        """Record the inspection read, then delegate."""
        self._detector.record(self._token, "partials", buffer_index, "read")
        return self._inner.get_partials(buffer_index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SanitizedInstance of {self._inner!r}>"
