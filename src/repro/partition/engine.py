"""Partitioned likelihood evaluation with cross-partition concurrency.

:class:`PartitionedLikelihood` evaluates one tree against every partition
of a :class:`~repro.partition.dataset.PartitionedDataset` and reports both
the combined log-likelihood and the launch economics of the two execution
styles the paper's §IV-A describes:

* **sequential partitions** — each partition's operation sets launch on
  their own (launches = partitions × sets);
* **concurrent partitions** — set *j* of every partition shares one
  multi-operation launch (launches = sets), possible because operations
  of different partitions touch disjoint buffers.

The real NumPy engine computes each partition with its own instance
(different pattern counts cannot share one stacked ``matmul``), so
cross-partition merging affects the *device model* accounting only —
exactly the substitution documented in DESIGN.md. The likelihood values
themselves are always real.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from ..beagle.instance import BeagleInstance
from ..core.planner import ExecutionPlan, create_instance, execute_plan, make_plan
from ..core.reroot_opt import optimal_reroot_fast
from ..gpu.device import DeviceSpec, GP100
from ..obs import get_recorder
from ..gpu.perfmodel import (
    EvaluationTiming,
    LaunchTiming,
    WorkloadDims,
    launch_time_mixed,
)
from ..trees import Tree
from .dataset import PartitionedDataset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.pool import JobContext, LikelihoodPool
    from ..exec.sharding import ShardedLikelihood

__all__ = ["PartitionedLikelihood"]


class PartitionedLikelihood:
    """Joint likelihood of a tree over a partitioned dataset.

    Parameters
    ----------
    tree:
        Shared tree (tip names must match the dataset's taxa).
    dataset:
        The partitions, each with its own model and rate mixture.
    scaling:
        Per-node rescaling for every partition.
    mode:
        Scheduling mode passed to :func:`repro.core.planner.make_plan`.
    reroot:
        ``"none"`` or ``"fast"`` — reroot once for all partitions (the
        tree is shared, so one rerooting benefits every subset).
    verify:
        Statically verify the shared plan (:mod:`repro.analysis`) before
        any partition executes it; one verification covers all
        partitions because the schedule depends only on the tree.
    pool:
        Optional :class:`~repro.exec.pool.LikelihoodPool`. With a pool,
        partitions are *real concurrent jobs*: each partition evaluates
        on its own supervised worker (partitions touch disjoint
        instances, so they are embarrassingly parallel) with the pool's
        deadlines, failover and health checks. Values are bit-identical
        to the serial path — per-partition log-likelihoods are summed in
        dataset order either way.
    shards:
        When > 0, shard *within* each partition: every partition's
        site patterns are split into this many shards, evaluated
        through a :class:`~repro.exec.sharding.ShardedLikelihood`
        (sharing ``pool`` when one is configured) and recombined by the
        deterministic reduction tree, so per-partition values — and the
        dataset-order sum — are bit-identical across shard counts,
        pool sizes, completion orders and faults (and agree with the
        unsharded path to summation reassociation — BLAS ``dot`` there,
        the fixed pairwise tree here). The two concurrency axes
        compose: partitions in dataset order, shards inside each.
        Incompatible with ``scaling`` (a sharded partition escalates
        its own underflowing shards).
    """

    def __init__(
        self,
        tree: Tree,
        dataset: PartitionedDataset,
        *,
        scaling: bool = False,
        mode: str = "concurrent",
        reroot: str = "none",
        verify: bool = False,
        pool: Optional["LikelihoodPool"] = None,
        shards: int = 0,
    ) -> None:
        if reroot == "fast":
            tree = optimal_reroot_fast(tree).tree
        elif reroot != "none":
            raise ValueError(f"unknown reroot option {reroot!r}")
        if shards < 0:
            raise ValueError("shards must be non-negative")
        if shards > 0 and scaling:
            raise ValueError(
                "sharded partitions manage scaling per shard; "
                "use scaling=False"
            )
        self.tree = tree
        self.dataset = dataset
        self.mode = mode
        self.shards = shards
        self._sharded: Optional[List["ShardedLikelihood"]] = None
        self.scaling = scaling
        self.verify = verify
        # One plan: the schedule depends only on the tree, not the data.
        self.pool = pool
        self.plan: ExecutionPlan = make_plan(
            tree, mode, scaling=scaling, verify=verify
        )
        self._instances: Optional[List[BeagleInstance]] = None

    # ------------------------------------------------------------------
    @property
    def instances(self) -> List[BeagleInstance]:
        """Per-partition engine instances (built lazily)."""
        if self._instances is None:
            self._instances = [
                create_instance(
                    self.tree,
                    p.model,
                    p.patterns,
                    rates=p.rates,
                    scaling=self.scaling,
                )
                for p in self.dataset
            ]
        return self._instances

    def log_likelihood(self) -> float:
        """Sum of per-partition log-likelihoods (real computation).

        The sum runs over partitions in dataset order whether the
        evaluations were serial or pooled, so the float result is
        bit-identical between the two paths.
        """
        return sum(self.partition_log_likelihoods())

    def partition_log_likelihoods(self) -> List[float]:
        """Per-partition log-likelihoods, in dataset order."""
        obs = get_recorder()
        with obs.span(
            "partition.evaluate",
            category="partition",
            partitions=len(self.dataset),
            pooled=self.pool is not None,
        ):
            if self.shards > 0:
                return [
                    sharded.log_likelihood()
                    for sharded in self._sharded_evaluators()
                ]
            if self.pool is not None:
                instances = self.instances
                return self.pool.map(
                    [self._partition_job(instance) for instance in instances],
                    labels=[f"partition-{i}" for i in range(len(instances))],
                )
            return [
                execute_plan(instance, self.plan)
                for instance in self.instances
            ]

    def _sharded_evaluators(self) -> List["ShardedLikelihood"]:
        """Per-partition sharded engines (built lazily, pool shared)."""
        if self._sharded is None:
            from ..exec.sharding import ShardedLikelihood

            self._sharded = [
                ShardedLikelihood(
                    self.tree,
                    p.model,
                    p.patterns,
                    n_shards=self.shards,
                    rates=p.rates,
                    mode=self.mode,
                    pool=self.pool,
                )
                for p in self.dataset
            ]
        return self._sharded

    def _partition_job(
        self, instance: BeagleInstance
    ) -> Callable[["JobContext"], float]:
        return lambda ctx: ctx.execute(instance, self.plan)

    # ------------------------------------------------------------------
    # Launch accounting (paper §IV-A)
    # ------------------------------------------------------------------
    def launches_sequential_partitions(self) -> int:
        """Kernel launches when partitions are evaluated one at a time."""
        return len(self.dataset) * self.plan.n_launches

    def launches_concurrent_partitions(self) -> int:
        """Kernel launches when partitions share multi-operation launches."""
        return self.plan.n_launches

    def _partition_dims(self) -> List[WorkloadDims]:
        return [
            WorkloadDims(
                patterns=p.n_patterns,
                states=p.model.n_states,
                categories=p.rates.n_categories,
            )
            for p in self.dataset
        ]

    def device_timing(
        self,
        spec: DeviceSpec = GP100,
        *,
        concurrent_partitions: bool = True,
    ) -> EvaluationTiming:
        """Modelled device timing of one joint evaluation.

        With ``concurrent_partitions`` every operation set is one merged
        launch containing that set's operations from *all* partitions
        (heterogeneous thread/FLOP totals handled by
        :func:`repro.gpu.perfmodel.launch_time_mixed`); otherwise the
        per-partition launches simply concatenate.
        """
        dims = self._partition_dims()
        sizes = self.plan.set_sizes
        launches: List[LaunchTiming] = []
        if concurrent_partitions:
            for k in sizes:
                n_ops = k * len(dims)
                threads = sum(k * d.threads_per_operation for d in dims)
                flops = sum(k * d.flops_per_operation for d in dims)
                launches.append(launch_time_mixed(spec, n_ops, threads, flops))
        else:
            for d in dims:
                for k in sizes:
                    launches.append(
                        launch_time_mixed(
                            spec,
                            k,
                            k * d.threads_per_operation,
                            k * d.flops_per_operation,
                        )
                    )
        return EvaluationTiming(launches=launches)

    @property
    def n_launches(self) -> int:
        """Kernel launches per joint evaluation (merged partitions)."""
        return self.plan.n_launches

    def with_tree(self, tree: Tree) -> "PartitionedLikelihood":
        """A new evaluator on a different tree, sharing the dataset.

        This is the interface :func:`repro.inference.mcmc.run_mcmc`
        drives, so partitioned analyses can be sampled directly.
        """
        return PartitionedLikelihood(
            tree,
            self.dataset,
            scaling=self.scaling,
            mode=self.mode,
            verify=self.verify,
            pool=self.pool,
            shards=self.shards,
        )

    def modelled_seconds(self, spec: DeviceSpec = GP100) -> float:
        """Device-model time of one joint evaluation (merged launches)."""
        return self.device_timing(spec, concurrent_partitions=True).seconds

    def partition_concurrency_speedup(self, spec: DeviceSpec = GP100) -> float:
        """Modelled gain of concurrent over sequential partition launches."""
        sequential = self.device_timing(spec, concurrent_partitions=False)
        concurrent = self.device_timing(spec, concurrent_partitions=True)
        return sequential.seconds / concurrent.seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PartitionedLikelihood partitions={len(self.dataset)} "
            f"tips={self.tree.n_tips} mode={self.mode}>"
        )
