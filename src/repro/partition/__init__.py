"""Partitioned-analysis substrate (paper §IV-A)."""

from .dataset import (
    DataPartition,
    PartitionedDataset,
    partition_by_codon_position,
    partition_by_ranges,
)
from .engine import PartitionedLikelihood

__all__ = [
    "DataPartition",
    "PartitionedDataset",
    "partition_by_ranges",
    "partition_by_codon_position",
    "PartitionedLikelihood",
]
