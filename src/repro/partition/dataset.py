"""Partitioned datasets (paper §IV-A).

A *partitioned analysis* splits the alignment into subsets — typically by
gene or codon position — each with its own substitution model and rate
parameters. The likelihoods of the subsets are independent, which is the
paper's first medium-grained concurrency exploit: partial-likelihood
operations from different partitions can share a kernel launch.

This module holds the data side: :class:`DataPartition` (one subset) and
:class:`PartitionedDataset` (the collection, sharing one taxon set), plus
helpers to split an alignment by site ranges or by codon position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..data.alignment import Alignment
from ..data.patterns import PatternData, compress
from ..models.ratematrix import SubstitutionModel
from ..models.siterates import RateCategories, single_rate

__all__ = [
    "DataPartition",
    "PartitionedDataset",
    "partition_by_ranges",
    "partition_by_codon_position",
]


@dataclass(frozen=True)
class DataPartition:
    """One data subset with its own model.

    Attributes
    ----------
    name:
        Subset label (e.g. ``"gene1"`` or ``"codon_pos_3"``).
    patterns:
        Compressed site patterns of the subset.
    model:
        The subset's substitution model (independent parameters — the
        model flexibility that motivates partitioning).
    rates:
        Among-site rate categories for the subset.
    """

    name: str
    patterns: PatternData
    model: SubstitutionModel
    rates: RateCategories = field(default_factory=single_rate)

    @property
    def n_patterns(self) -> int:
        """Unique site patterns in this partition."""
        return self.patterns.n_patterns

    @property
    def taxa(self) -> Tuple[str, ...]:
        """Taxon names of this partition's pattern data."""
        return self.patterns.taxa


class PartitionedDataset:
    """An ordered collection of partitions over one shared taxon set."""

    def __init__(self, partitions: Sequence[DataPartition]) -> None:
        if not partitions:
            raise ValueError("need at least one partition")
        names = [p.name for p in partitions]
        if len(set(names)) != len(names):
            raise ValueError("partition names must be unique")
        taxa = set(partitions[0].taxa)
        for p in partitions[1:]:
            if set(p.taxa) != taxa:
                raise ValueError(
                    f"partition {p.name!r} has a different taxon set"
                )
        self._partitions = list(partitions)

    def __len__(self) -> int:
        return len(self._partitions)

    def __iter__(self):
        return iter(self._partitions)

    def __getitem__(self, index: int) -> DataPartition:
        return self._partitions[index]

    @property
    def names(self) -> List[str]:
        """Partition names, in dataset order."""
        return [p.name for p in self._partitions]

    @property
    def taxa(self) -> Tuple[str, ...]:
        """Taxon names shared by every partition."""
        return self._partitions[0].taxa

    @property
    def total_patterns(self) -> int:
        """Unique site patterns summed over partitions."""
        return sum(p.n_patterns for p in self._partitions)


def partition_by_ranges(
    alignment: Alignment,
    ranges: Sequence[Tuple[int, int]],
    models: Sequence[SubstitutionModel],
    *,
    names: Optional[Sequence[str]] = None,
    rates: Optional[Sequence[RateCategories]] = None,
) -> PartitionedDataset:
    """Split an alignment into half-open site ranges ``[start, stop)``.

    Parameters
    ----------
    ranges:
        Site ranges; they may not overlap and must stay in bounds.
    models:
        One model per range.
    names:
        Optional labels; default ``part1 ..``.
    rates:
        Optional per-partition rate categories.
    """
    if len(ranges) != len(models):
        raise ValueError("need exactly one model per range")
    if names is not None and len(names) != len(ranges):
        raise ValueError("need exactly one name per range")
    if rates is not None and len(rates) != len(ranges):
        raise ValueError("need exactly one rate mixture per range")
    used = [False] * alignment.n_sites
    partitions = []
    for i, ((start, stop), model) in enumerate(zip(ranges, models)):
        if not 0 <= start < stop <= alignment.n_sites:
            raise ValueError(f"range ({start}, {stop}) out of bounds")
        for site in range(start, stop):
            if used[site]:
                raise ValueError(f"site {site} assigned to two partitions")
            used[site] = True
        subset = alignment.site_subset(range(start, stop))
        partitions.append(
            DataPartition(
                name=names[i] if names else f"part{i + 1}",
                patterns=compress(subset),
                model=model,
                rates=rates[i] if rates else single_rate(),
            )
        )
    return PartitionedDataset(partitions)


def partition_by_codon_position(
    alignment: Alignment,
    models: Sequence[SubstitutionModel],
    *,
    rates: Optional[Sequence[RateCategories]] = None,
) -> PartitionedDataset:
    """The classic three-way split by codon position.

    Requires a nucleotide alignment whose length is a multiple of 3 and
    exactly three models (positions 1, 2, 3).
    """
    if alignment.n_sites % 3 != 0:
        raise ValueError("alignment length must be a multiple of 3")
    if len(models) != 3:
        raise ValueError("need exactly three models (codon positions)")
    if rates is not None and len(rates) != 3:
        raise ValueError("need exactly three rate mixtures")
    partitions = []
    for pos in range(3):
        subset = alignment.site_subset(range(pos, alignment.n_sites, 3))
        partitions.append(
            DataPartition(
                name=f"codon_pos_{pos + 1}",
                patterns=compress(subset),
                model=models[pos],
                rates=rates[pos] if rates else single_rate(),
            )
        )
    return PartitionedDataset(partitions)
