"""The BEAGLE-work-alike likelihood instance.

:class:`BeagleInstance` mirrors the buffer-indexed API of the BEAGLE
library (§III of the paper): tips and internal nodes are *partials
buffers*, branches are *transition-matrix buffers*, and likelihood
evaluation is driven by submitting :class:`~repro.beagle.operations.Operation`
lists. The instance does not know about trees — exactly as in BEAGLE, the
calling code (here :mod:`repro.core.planner`) maps a tree traversal onto
buffer indices.

Execution instrumentation (``stats``) records kernel launches, operations
and effective FLOPs so the GPU device model (:mod:`repro.gpu`) and the
benchmarks can account throughput the way the paper does (§VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..models.eigen import EigenDecomposition
from ..obs import get_recorder, record_backend_info
from ..obs.profile import (
    PHASE_MATRICES,
    PHASE_PARTIALS,
    PHASE_ROOT,
)
from .backend import KernelBackend
from .kernels import (
    child_contribution,
    dense_tip_partials,
    edge_site_likelihoods,
    operation_flops,
)
from .operations import Operation, operations_independent
from .resources import resolve_backend
from .scaling import ScaleBufferBank
from .workspace import TransitionMatrixCache, Workspace

__all__ = ["BeagleInstance", "InstanceStats"]


@dataclass
class InstanceStats:
    """Execution counters since construction or the last ``reset``."""

    kernel_launches: int = 0
    operations: int = 0
    flops: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.kernel_launches = 0
        self.operations = 0
        self.flops = 0


class BeagleInstance:
    """A likelihood-computation instance over fixed-size buffers.

    Every operation set — regardless of size — executes through a
    preallocated :class:`~repro.beagle.workspace.Workspace` arena, so
    batched execution is allocation-free in steady state and per-
    operation results are bit-identical however the scheduler groups
    operations into sets (full traversals and incremental dirty paths
    agree exactly). An optional
    :class:`~repro.beagle.workspace.TransitionMatrixCache` can be
    attached as :attr:`matrix_cache` to serve repeated
    ``update_transition_matrices`` lengths from an LRU instead of
    recomputing the eigen-multiply.

    Parameters
    ----------
    tip_count:
        Number of tip buffers (indices ``0 .. tip_count-1``).
    partials_buffer_count:
        Number of internal partials buffers (indices ``tip_count ..``).
    matrix_count:
        Number of transition-matrix buffers.
    pattern_count, state_count:
        Data dimensions ``p`` and ``s``.
    category_count:
        Rate categories ``c`` (default 1).
    scale_buffer_count:
        Scale buffers for manual rescaling (0 disables).
    dtype:
        Floating-point precision of partials and matrices:
        ``numpy.float64`` (default) or ``numpy.float32``. Single
        precision is the GPU-typical configuration whose underflow on
        large trees motivates the paper's ``--manualscale`` option
        (§VI-F); scale buffers always stay in double precision, exactly
        as BEAGLE keeps log scalers at higher precision.
    backend:
        The kernel implementation executing this instance's launches:
        ``None`` (default — resolve via
        :func:`repro.beagle.resources.resolve_backend`, honouring the
        ``REPRO_BACKEND`` environment variable), a registered resource
        name, or a :class:`~repro.beagle.backend.KernelBackend` object.
        See ``docs/BACKENDS.md`` for the contract backends honour.
    """

    def __init__(
        self,
        tip_count: int,
        partials_buffer_count: int,
        matrix_count: int,
        pattern_count: int,
        state_count: int,
        category_count: int = 1,
        scale_buffer_count: int = 0,
        dtype=np.float64,
        backend: Union[None, str, KernelBackend] = None,
    ) -> None:
        if min(tip_count, partials_buffer_count, matrix_count) < 1:
            raise ValueError("buffer counts must be positive")
        if min(pattern_count, state_count, category_count) < 1:
            raise ValueError("data dimensions must be positive")
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("dtype must be float32 or float64")
        self.dtype = dtype
        #: The resolved kernel backend executing this instance's launches.
        self.backend: KernelBackend = resolve_backend(backend)
        self.tip_count = tip_count
        self.partials_buffer_count = partials_buffer_count
        self.matrix_buffer_count = matrix_count
        self.pattern_count = pattern_count
        self.state_count = state_count
        self.category_count = category_count

        # Tip storage: compact codes or explicit partials, per tip index.
        self._tip_codes: Dict[int, np.ndarray] = {}
        self._tip_partials: Dict[int, np.ndarray] = {}
        # Dense mirror of tip codes for vectorised multi-operation gathers.
        self._tip_codes_dense = np.zeros((tip_count, pattern_count), dtype=np.int64)
        # Internal partials: one dense block, views handed to kernels.
        self._partials = np.zeros(
            (partials_buffer_count, category_count, pattern_count, state_count),
            dtype=dtype,
        )
        self._partials_valid = np.zeros(partials_buffer_count, dtype=bool)
        # Pre-order upper-partial bank (one slot per node, tips included);
        # allocated lazily by enable_upper_partials() so likelihood-only
        # instances pay nothing for the gradient engine.
        self._upper: Optional[np.ndarray] = None
        self._upper_valid: Optional[np.ndarray] = None
        self._matrices = np.zeros(
            (matrix_count, category_count, state_count, state_count), dtype=dtype
        )
        self.scale = ScaleBufferBank(scale_buffer_count, pattern_count)

        self._weights = np.ones(pattern_count)
        self._frequencies = np.full(state_count, 1.0 / state_count)
        self._category_rates = np.ones(category_count)
        self._category_weights = np.full(category_count, 1.0 / category_count)
        self._rates_key: bytes = self._category_rates.tobytes()
        self._eigens: Dict[int, EigenDecomposition] = {}

        #: Optional LRU transition-matrix cache; ``None`` disables caching.
        self.matrix_cache: Optional[TransitionMatrixCache] = None
        # Scratch arena for batched set execution, created on first use.
        self._workspace: Optional[Workspace] = None

        self.stats = InstanceStats()
        if get_recorder().enabled:
            # Info-metric: a metrics export names the backend that
            # actually executed (the CI backend-matrix grep gate).
            record_backend_info(self.backend.info)

    # ------------------------------------------------------------------
    # Data setters (the beagleSet* family)
    # ------------------------------------------------------------------
    def set_tip_states(self, tip_index: int, codes: Sequence[int]) -> None:
        """Compact observed states for a tip (``state_count`` = unknown)."""
        self._check_tip(tip_index)
        arr = np.asarray(codes, dtype=np.int64)
        if arr.shape != (self.pattern_count,):
            raise ValueError("codes length must equal pattern count")
        if arr.min() < 0 or arr.max() > self.state_count:
            raise ValueError("tip codes out of range")
        self._tip_codes[tip_index] = arr
        self._tip_codes_dense[tip_index] = arr
        self._tip_partials.pop(tip_index, None)

    def set_tip_partials(self, tip_index: int, partials: np.ndarray) -> None:
        """Explicit tip partials ``(patterns, states)`` (ambiguity codes)."""
        self._check_tip(tip_index)
        arr = np.asarray(partials, dtype=self.dtype)
        if arr.shape != (self.pattern_count, self.state_count):
            raise ValueError("tip partials must be (patterns, states)")
        # Broadcast across categories once; kernels then treat the tip
        # exactly like an internal buffer.
        self._tip_partials[tip_index] = np.broadcast_to(
            arr, (self.category_count,) + arr.shape
        ).copy()
        self._tip_codes.pop(tip_index, None)

    def set_pattern_weights(self, weights: Sequence[float]) -> None:
        """Per-pattern multiplicities used by the likelihood reductions."""
        arr = np.asarray(weights, dtype=np.float64)
        if arr.shape != (self.pattern_count,):
            raise ValueError("weights length must equal pattern count")
        if np.any(arr < 0):
            raise ValueError("pattern weights must be non-negative")
        self._weights = arr

    def set_state_frequencies(self, frequencies: Sequence[float]) -> None:
        """Stationary state frequencies π (renormalised to sum to 1)."""
        arr = np.asarray(frequencies, dtype=np.float64)
        if arr.shape != (self.state_count,):
            raise ValueError("frequency length must equal state count")
        if np.any(arr < 0) or arr.sum() <= 0:
            raise ValueError("frequencies must be non-negative and sum > 0")
        self._frequencies = arr / arr.sum()

    def set_category_rates(self, rates: Sequence[float]) -> None:
        """Rate multiplier of each among-site rate category.

        Changing the rates also changes the rates version key, so any
        attached :attr:`matrix_cache` entries computed under the old
        rates can no longer be served (their keys stop matching).
        """
        arr = np.asarray(rates, dtype=np.float64)
        if arr.shape != (self.category_count,):
            raise ValueError("rates length must equal category count")
        self._category_rates = arr
        self._rates_key = arr.tobytes()

    def set_category_weights(self, weights: Sequence[float]) -> None:
        """Prior probability of each rate category (must sum to 1)."""
        arr = np.asarray(weights, dtype=np.float64)
        if arr.shape != (self.category_count,):
            raise ValueError("weights length must equal category count")
        if np.any(arr < 0) or not np.isclose(arr.sum(), 1.0):
            raise ValueError("category weights must be a distribution")
        self._category_weights = arr

    def set_eigen_decomposition(self, index: int, eigen: EigenDecomposition) -> None:
        """Install a model's eigendecomposition under a buffer index."""
        if eigen.n_states != self.state_count:
            raise ValueError("eigen decomposition has wrong state count")
        self._eigens[index] = eigen

    # ------------------------------------------------------------------
    # Transition matrices
    # ------------------------------------------------------------------
    def update_transition_matrices(
        self,
        eigen_index: int,
        matrix_indices: Sequence[int],
        branch_lengths: Sequence[float],
    ) -> None:
        """Compute ``P(rate_c · t)`` for each (matrix, branch) pair.

        All matrices for all categories are produced by one batched
        eigen-multiply — the work BEAGLE performs in
        ``beagleUpdateTransitionMatrices``. When a
        :attr:`matrix_cache` is attached, each pair is first looked up
        in the LRU (keyed by eigen decomposition, rates version and
        quantized branch length); only the misses are computed — still
        in one batched call — and cached. Because the eigen-multiply is
        batch-composition invariant, cached and freshly computed
        matrices are bit-identical.
        """
        if eigen_index not in self._eigens:
            raise KeyError(f"eigen decomposition {eigen_index} not set")
        idx = np.asarray(matrix_indices, dtype=np.int64)
        t = np.asarray(branch_lengths, dtype=np.float64)
        if idx.shape != t.shape:
            raise ValueError("matrix indices and branch lengths must pair up")
        if idx.size and (idx.min() < 0 or idx.max() >= self._matrices.shape[0]):
            raise IndexError("matrix index out of range")
        obs = get_recorder()
        with obs.span(
            "kernel.matrices", category="kernel", matrices=int(idx.size)
        ), obs.phase(PHASE_MATRICES):
            if self.matrix_cache is not None:
                self._update_matrices_cached(
                    self.matrix_cache, self._eigens[eigen_index], idx, t, obs
                )
                return
            # (k·C,) scaled times -> (k, C, S, S)
            scaled = (t[:, None] * self._category_rates[None, :]).reshape(-1)
            P = self.backend.materialize_matrices(self._eigens[eigen_index], scaled)
            P = P.reshape(
                len(idx), self.category_count, self.state_count, self.state_count
            )
            self._matrices[idx] = P

    def _update_matrices_cached(
        self,
        cache: TransitionMatrixCache,
        eigen: EigenDecomposition,
        idx: np.ndarray,
        t: np.ndarray,
        obs,
    ) -> None:
        """Serve matrix updates from the LRU; batch-compute the misses.

        Duplicate branch lengths *within* one call are computed once and
        counted as hits — a tree with tied lengths warms its own call.
        """
        resolved: List[Optional[np.ndarray]] = []
        # key -> (effective length, positions awaiting the computed matrix)
        pending: Dict[Hashable, Tuple[float, List[int]]] = {}
        for i in range(idx.size):
            length = float(t[i])
            key = cache.key_for(eigen, self._rates_key, length)
            cached = cache.lookup(key)
            if cached is not None:
                resolved.append(cached)
            else:
                entry = pending.get(key)
                if entry is None:
                    pending[key] = (cache.effective_length(length), [i])
                else:
                    entry[1].append(i)
                resolved.append(None)
        n_misses = len(pending)
        n_hits = int(idx.size) - n_misses
        if pending:
            C, S = self.category_count, self.state_count
            lengths = np.array([eff for eff, _ in pending.values()])
            scaled = (lengths[:, None] * self._category_rates[None, :]).reshape(-1)
            P = self.backend.materialize_matrices(eigen, scaled).reshape(
                n_misses, C, S, S
            )
            for j, (key, (_, positions)) in enumerate(pending.items()):
                matrix = np.ascontiguousarray(P[j])
                cache.store(key, matrix, pin=eigen)
                for position in positions:
                    resolved[position] = matrix
        for i in range(idx.size):
            self._matrices[idx[i]] = resolved[i]
        cache.hits += n_hits
        cache.misses += n_misses
        if obs.enabled:
            if n_hits:
                obs.count("repro_matrix_cache_hits_total", n_hits)
            if n_misses:
                obs.count("repro_matrix_cache_misses_total", n_misses)

    def set_transition_matrix(self, matrix_index: int, matrix: np.ndarray) -> None:
        """Directly install a ``(C, S, S)`` or ``(S, S)`` matrix buffer."""
        arr = np.asarray(matrix, dtype=np.float64)
        if arr.ndim == 2:
            arr = np.broadcast_to(
                arr, (self.category_count,) + arr.shape
            )
        if arr.shape != self._matrices.shape[1:]:
            raise ValueError("matrix has wrong shape")
        self._matrices[matrix_index] = arr

    # ------------------------------------------------------------------
    # Buffer access helpers
    # ------------------------------------------------------------------
    def _check_tip(self, tip_index: int) -> None:
        if not 0 <= tip_index < self.tip_count:
            raise IndexError(f"tip index {tip_index} out of range")

    def _internal_slot(self, buffer_index: int) -> int:
        slot = buffer_index - self.tip_count
        if not 0 <= slot < self.partials_buffer_count:
            raise IndexError(f"partials buffer {buffer_index} out of range")
        return slot

    def _child_arrays(self, buffer_index: int):
        """Return ``(partials, codes)`` for a child buffer (one is None)."""
        if buffer_index < self.tip_count:
            if buffer_index in self._tip_codes:
                return None, self._tip_codes[buffer_index]
            if buffer_index in self._tip_partials:
                return self._tip_partials[buffer_index], None
            raise ValueError(f"tip buffer {buffer_index} has no data")
        slot = self._internal_slot(buffer_index)
        if not self._partials_valid[slot]:
            raise ValueError(
                f"partials buffer {buffer_index} read before being computed"
            )
        return self._partials[slot], None

    def get_partials(self, buffer_index: int) -> np.ndarray:
        """Copy of a computed partials buffer ``(C, P, S)``."""
        partials, codes = self._child_arrays(buffer_index)
        if partials is None:
            # Expand tip codes for inspection convenience.
            return child_contribution(
                np.broadcast_to(
                    np.eye(self.state_count),
                    (self.category_count, self.state_count, self.state_count),
                ),
                codes=codes,
            )
        return np.array(partials, copy=True)

    def invalidate_partials(self) -> None:
        """Mark every internal buffer as not-yet-computed."""
        self._partials_valid[:] = False

    # ------------------------------------------------------------------
    # Pre-order upper partials (the all-branch gradient bank)
    # ------------------------------------------------------------------
    @property
    def upper_base(self) -> int:
        """First upper-partial buffer index (one past the lower buffers).

        The upper partials of the node with lower buffer index ``i`` live
        at global index ``upper_base + i``; operations over the combined
        space need no bank tag (see :mod:`repro.core.schedule`).
        """
        return self.tip_count + self.partials_buffer_count

    def enable_upper_partials(self) -> None:
        """Allocate the upper-partial bank (idempotent).

        One ``(C, P, S)`` slot per node — tips included, because every
        branch (tip branches too) has a far-side half-tree. Roughly
        doubles the partials footprint, which is why the bank is opt-in.
        """
        if self._upper is None:
            n = self.upper_base
            self._upper = np.zeros(
                (n, self.category_count, self.pattern_count, self.state_count),
                dtype=self.dtype,
            )
            self._upper_valid = np.zeros(n, dtype=bool)

    def invalidate_upper_partials(self) -> None:
        """Mark every upper-partial buffer as not-yet-computed."""
        if self._upper_valid is not None:
            self._upper_valid[:] = False

    def _upper_slot(self, buffer_index: int) -> int:
        """Bank slot of a global upper buffer index (range-checked)."""
        if self._upper is None:
            raise ValueError(
                "upper partials not enabled; call enable_upper_partials()"
            )
        slot = buffer_index - self.upper_base
        if not 0 <= slot < self._upper.shape[0]:
            raise IndexError(f"upper buffer {buffer_index} out of range")
        return slot

    def _upper_array(self, buffer_index: int) -> np.ndarray:
        """Validated ``(C, P, S)`` view of a computed upper buffer."""
        slot = self._upper_slot(buffer_index)
        assert self._upper is not None and self._upper_valid is not None
        if not self._upper_valid[slot]:
            raise ValueError(
                f"upper buffer {buffer_index} read before being computed"
            )
        return self._upper[slot]

    def seed_upper_partials(self, destination: int, source: int) -> None:
        """Seed a root child's upper buffer from its sibling's lowers.

        ``destination`` is a global upper index (``upper_base + node``),
        ``source`` a lower buffer. Under the suppressed-root (pulley)
        view the far side of a root child's branch is exactly the sibling
        subtree, so the seed is a copy — tip codes are expanded to dense
        one-hot partials in the instance dtype.
        """
        slot = self._upper_slot(destination)
        assert self._upper is not None and self._upper_valid is not None
        partials, codes = self._child_arrays(source)
        if partials is None:
            self._upper[slot] = dense_tip_partials(
                codes, self.state_count, self.category_count, self.dtype
            )
        else:
            self._upper[slot] = partials
        self._upper_valid[slot] = True

    def upper_partials(self, node_buffer: int) -> np.ndarray:
        """Copy of a node's computed upper partials ``(C, P, S)``.

        ``node_buffer`` is the node's *lower* buffer index; the method
        offsets into the upper bank itself.
        """
        return np.array(self._upper_array(self.upper_base + node_buffer), copy=True)

    def update_upper_partials_set(self, operations: Sequence[Operation]) -> None:
        """Execute one independent *upper*-partial operation set.

        The pre-order analogue of :meth:`update_partials_set`: each
        operation's ``child1`` is a sibling's lower buffer, its ``child2``
        the parent's upper buffer, and the destination an upper buffer.
        Delegated to the backend's
        :meth:`~repro.beagle.backend.KernelBackend.update_upper_partials`.
        """
        ops = list(operations)
        if not ops:
            return
        if not operations_independent(ops):
            raise ValueError("operation set contains internal dependencies")
        if self._upper is None:
            raise ValueError(
                "upper partials not enabled; call enable_upper_partials()"
            )
        k = len(ops)
        obs = get_recorder()
        if obs.enabled:
            obs.count("repro_kernel_launches_total")
            obs.count("repro_operations_evaluated_total", k)
            obs.observe("repro_operations_per_set", k)
            with obs.span("kernel.upper", category="kernel", operations=k):
                self.backend.update_upper_partials(self, ops)
        else:
            self.backend.update_upper_partials(self, ops)
        self.stats.kernel_launches += 1
        self.stats.operations += k
        self.stats.flops += k * self.flops_per_operation

    def enable_scaling(self, count: int) -> None:
        """Grow the scale bank to at least ``count`` buffers.

        Rescaling escalation (:class:`repro.exec.resilient.ResilientInstance`)
        upgrades an instance created without scale buffers when underflow
        is detected mid-run; existing buffers keep their contents so the
        call is idempotent and safe between evaluations.
        """
        if count < 0:
            raise ValueError("scale buffer count must be non-negative")
        if count <= self.scale.count:
            return
        bank = ScaleBufferBank(count, self.pattern_count)
        if self.scale.count:
            bank._logs[: self.scale.count] = self.scale._logs
        self.scale = bank

    # ------------------------------------------------------------------
    # Core execution (beagleUpdatePartials)
    # ------------------------------------------------------------------
    def update_partials_serial(self, operations: Sequence[Operation]) -> None:
        """Execute operations one per kernel launch (the baseline mode;
        the paper's modified BEAGLE with multi-operation launches
        disabled, §VII-C)."""
        obs = get_recorder()
        if obs.enabled:
            n = len(operations)
            obs.count("repro_kernel_launches_total", n)
            obs.count("repro_operations_evaluated_total", n)
            with obs.span(
                "kernel.serial", category="kernel", operations=n
            ), obs.phase(PHASE_PARTIALS):
                for op in operations:
                    self._execute_single(op)
        else:
            for op in operations:
                self._execute_single(op)

    def update_partials_set(self, operations: Sequence[Operation]) -> None:
        """Execute one *independent* operation set as a single launch.

        Raises
        ------
        ValueError
            If the operations are not mutually independent — the caller
            (scheduler) must guarantee set independence, exactly as the
            BEAGLE library requires.
        """
        ops = list(operations)
        if not ops:
            return
        if not operations_independent(ops):
            raise ValueError("operation set contains internal dependencies")
        k = len(ops)
        obs = get_recorder()
        if obs.enabled:
            # Observability bookkeeping sits behind one branch so the
            # disabled (null-recorder) path stays allocation-free.
            obs.count("repro_kernel_launches_total")
            obs.count("repro_operations_evaluated_total", k)
            obs.observe("repro_operations_per_set", k)
            with obs.span("kernel.batch", category="kernel", operations=k):
                self._run_operation_set(ops, k)
        else:
            self._run_operation_set(ops, k)

    @property
    def workspace(self) -> Workspace:
        """The instance's batched-execution arena (created on first use
        by the backend's :meth:`~repro.beagle.backend.KernelBackend.create_workspace`)."""
        if self._workspace is None:
            self._workspace = self.backend.create_workspace(
                self.dtype,
                self.category_count,
                self.pattern_count,
                self.state_count,
            )
        return self._workspace

    def adopt_workspace(self, workspace: Workspace) -> None:
        """Execute through a shared :class:`Workspace` arena.

        The serving layer (:mod:`repro.serve.coalesce`) coalesces
        same-shaped requests from different tenants onto one arena so a
        batch of N instances allocates scratch once instead of N times.
        Sharing is safe because the arena is pure per-launch scratch:
        every launch first writes the rows it uses (gathers and matmuls
        all take ``out=``) before reading them, so no state survives
        between instances — results are bit-identical to running each
        instance on a private arena. The caller must serialise launches
        across adopters (one batch runs on one worker).

        Raises
        ------
        ValueError
            If the arena's dimensions do not match this instance's.
        """
        if not workspace.compatible_with(
            self.dtype,
            self.category_count,
            self.pattern_count,
            self.state_count,
        ):
            raise ValueError(
                "workspace dimensions "
                f"(dtype={workspace.dtype}, C={workspace.category_count}, "
                f"P={workspace.pattern_count}, S={workspace.state_count}) "
                "do not match instance "
                f"(dtype={np.dtype(self.dtype)}, C={self.category_count}, "
                f"P={self.pattern_count}, S={self.state_count})"
            )
        self._workspace = workspace

    def _run_operation_set(self, ops: List[Operation], k: int) -> None:
        """Body of :meth:`update_partials_set` after validation.

        Delegates the launch to the instance's :attr:`backend`
        (:meth:`~repro.beagle.backend.KernelBackend.update_partials_batch`)
        and keeps the execution counters here so accounting is identical
        across backends. Every backend runs the set through the
        :class:`Workspace` arena — gathers, batched matmuls and the
        final scatter all write into preallocated buffers — so
        steady-state execution performs **zero per-set array
        allocations** and results are bit-identical to the serial
        kernel however operations are grouped (the contract the parity
        gate enforces per backend; see ``docs/BACKENDS.md``).
        """
        self.backend.update_partials_batch(self, ops)
        self.stats.kernel_launches += 1
        self.stats.operations += k
        self.stats.flops += k * self.flops_per_operation

    def _execute_single(self, op: Operation, count_launch: bool = True) -> None:
        self.backend.update_partials_single(self, op)
        self._finish_operation(op)
        if count_launch:
            self.stats.kernel_launches += 1
        self.stats.operations += 1
        self.stats.flops += self.flops_per_operation

    def _finish_operation(self, op: Operation) -> None:
        slot = self._internal_slot(op.destination)
        self._partials_valid[slot] = True
        if op.destination_scale >= 0:
            logs = self.backend.rescale(self._partials[slot])
            self.scale.write(op.destination_scale, logs)

    # ------------------------------------------------------------------
    # Likelihood reductions
    # ------------------------------------------------------------------
    def site_log_likelihoods(
        self,
        root_buffer: int,
        cumulative_scale_index: int = -1,
    ) -> np.ndarray:
        """Per-pattern log site likelihoods at the root buffer.

        ``log Σ_c w_c Σ_z π_z L_root[c,p,z] (+ scale_p)`` for every
        pattern ``p``, *without* the weight contraction — the surface the
        sharded engine (:mod:`repro.exec.sharding`) reduces through its
        deterministic summation tree. Always ``float64``, regardless of
        the instance dtype (log scalers stay double, as in BEAGLE).
        """
        partials, _ = self._child_arrays(root_buffer)
        if partials is None:
            raise ValueError("root buffer must hold partials, not tip codes")
        site = self.backend.root_reduce(
            partials, self._frequencies, self._category_weights
        )
        with np.errstate(divide="ignore"):
            logs = np.log(site)
        if cumulative_scale_index >= 0:
            logs = logs + self.scale.read(cumulative_scale_index)
        return np.asarray(logs, dtype=np.float64)

    def calculate_root_log_likelihood(
        self,
        root_buffer: int,
        cumulative_scale_index: int = -1,
    ) -> float:
        """Weighted log-likelihood at the root buffer.

        ``Σ_p w_p · (log Σ_c w_c Σ_z π_z L_root[c,p,z] + scale_p)``.
        """
        obs = get_recorder()
        with obs.span(
            "kernel.root", category="kernel", root_buffer=root_buffer
        ), obs.phase(PHASE_ROOT):
            logs = self.site_log_likelihoods(
                root_buffer, cumulative_scale_index
            )
            return float(np.dot(self._weights, logs))

    def calculate_edge_log_likelihood(
        self,
        parent_buffer: int,
        child_buffer: int,
        matrix_index: int,
        cumulative_scale_index: int = -1,
    ) -> float:
        """Log-likelihood across one edge (beagleCalculateEdgeLogLikelihoods).

        The tree is viewed as rooted on the edge between the two buffers;
        both partials are combined through the edge's transition matrix.
        """
        parent, parent_codes = self._child_arrays(parent_buffer)
        if parent is None:
            raise ValueError("parent buffer must hold partials")
        contribution = child_contribution(
            self._matrices[matrix_index], *self._child_arrays(child_buffer)
        )
        site = edge_site_likelihoods(
            parent, contribution, self._frequencies, self._category_weights
        )
        with np.errstate(divide="ignore"):
            logs = np.log(site)
        if cumulative_scale_index >= 0:
            logs = logs + self.scale.read(cumulative_scale_index)
        return float(np.dot(self._weights, logs))

    # ------------------------------------------------------------------
    def memory_footprint(self) -> dict:
        """Bytes held by each buffer class (the device-memory budget).

        The paper's device (Table I) pairs 3,584 cores with 16 GB of
        HBM2; partials dominate the budget at ``(n−1)·C·P·S`` floats, so
        this breakdown is what decides the largest tree×pattern problem a
        card can hold.
        """
        tips = sum(a.nbytes for a in self._tip_codes.values())
        tips += sum(a.nbytes for a in self._tip_partials.values())
        tips += self._tip_codes_dense.nbytes
        upper = int(self._upper.nbytes) if self._upper is not None else 0
        return {
            "partials": int(self._partials.nbytes),
            "upper_partials": upper,
            "matrices": int(self._matrices.nbytes),
            "tips": int(tips),
            "scale": int(self.scale._logs.nbytes),
            "total": int(
                self._partials.nbytes
                + upper
                + self._matrices.nbytes
                + tips
                + self.scale._logs.nbytes
            ),
        }

    @property
    def flops_per_operation(self) -> int:
        """Effective FLOPs of one partial-likelihood operation."""
        return operation_flops(
            self.pattern_count, self.state_count, self.category_count
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BeagleInstance tips={self.tip_count} "
            f"partials={self.partials_buffer_count} p={self.pattern_count} "
            f"s={self.state_count} c={self.category_count}>"
        )
