"""BEAGLE-work-alike likelihood engine: buffers, operations, kernels."""

from .operations import Operation, operations_independent, validate_operation_order
from .kernels import (
    child_contribution,
    edge_site_likelihoods,
    operation_flops,
    rescale_partials,
    root_site_likelihoods,
    update_partials,
    update_partials_batch,
)
from .scaling import ScaleBufferBank
from .workspace import TransitionMatrixCache, Workspace
from .instance import BeagleInstance, InstanceStats
from .reference import brute_force_log_likelihood, pruning_log_likelihood

__all__ = [
    "Operation",
    "operations_independent",
    "validate_operation_order",
    "child_contribution",
    "update_partials",
    "update_partials_batch",
    "rescale_partials",
    "root_site_likelihoods",
    "edge_site_likelihoods",
    "operation_flops",
    "ScaleBufferBank",
    "TransitionMatrixCache",
    "Workspace",
    "BeagleInstance",
    "InstanceStats",
    "brute_force_log_likelihood",
    "pruning_log_likelihood",
]
