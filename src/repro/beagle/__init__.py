"""BEAGLE-work-alike likelihood engine: buffers, operations, kernels.

Execution is pluggable: every instance delegates its kernel launches to
a :class:`~repro.beagle.backend.KernelBackend` selected through the
resource registry (:mod:`repro.beagle.resources`), and the parity gate
(:mod:`repro.beagle.parity`) measures each registered backend against
the reference. See ``docs/BACKENDS.md`` for the backend contract.
"""

from .operations import Operation, operations_independent, validate_operation_order
from .kernels import (
    child_contribution,
    edge_site_likelihoods,
    operation_flops,
    rescale_partials,
    root_site_likelihoods,
    update_partials,
    update_partials_batch,
)
from .scaling import ScaleBufferBank
from .workspace import TransitionMatrixCache, Workspace
from .backend import (
    PARITY_BIT_IDENTICAL,
    PARITY_TOLERANCE,
    BackendInfo,
    KernelBackend,
)
from .backends import (
    NUMBA_AVAILABLE,
    BlockedNumpyBackend,
    NumbaBackend,
    ReferenceBackend,
)
from .resources import (
    BACKEND_ENV_VAR,
    DEFAULT_RESOURCE,
    ResourceRequirements,
    UnknownResourceError,
    acquire,
    available_resources,
    list_resources,
    register_resource,
    resolve_backend,
)
from .parity import ParityCheck, ParityReport, parity_report
from .instance import BeagleInstance, InstanceStats
from .reference import brute_force_log_likelihood, pruning_log_likelihood

__all__ = [
    "Operation",
    "operations_independent",
    "validate_operation_order",
    "child_contribution",
    "update_partials",
    "update_partials_batch",
    "rescale_partials",
    "root_site_likelihoods",
    "edge_site_likelihoods",
    "operation_flops",
    "ScaleBufferBank",
    "TransitionMatrixCache",
    "Workspace",
    "PARITY_BIT_IDENTICAL",
    "PARITY_TOLERANCE",
    "BackendInfo",
    "KernelBackend",
    "ReferenceBackend",
    "BlockedNumpyBackend",
    "NumbaBackend",
    "NUMBA_AVAILABLE",
    "BACKEND_ENV_VAR",
    "DEFAULT_RESOURCE",
    "ResourceRequirements",
    "UnknownResourceError",
    "register_resource",
    "available_resources",
    "list_resources",
    "acquire",
    "resolve_backend",
    "ParityCheck",
    "ParityReport",
    "parity_report",
    "BeagleInstance",
    "InstanceStats",
    "brute_force_log_likelihood",
    "pruning_log_likelihood",
]
