"""Independent reference likelihood implementations.

Two oracles used to validate the buffer-based engine, deliberately sharing
no code with it:

* :func:`brute_force_log_likelihood` — sums the joint probability over
  *every* combination of internal-node states (Felsenstein's Eq. before
  pruning). Exponential in internal nodes; only for ≤ ~6 tips, but it is
  the ground truth the pruning algorithm must equal.
* :func:`pruning_log_likelihood` — a plain, recursive Felsenstein pruning
  over the tree with per-node dictionaries (no buffers, no batching).
  Fast enough for medium trees; used to cross-check engine results where
  brute force is infeasible.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

import numpy as np

from ..data.patterns import PatternData
from ..models.ratematrix import SubstitutionModel
from ..models.siterates import RateCategories, single_rate
from ..trees import Tree

__all__ = ["brute_force_log_likelihood", "pruning_log_likelihood"]


def _tip_partial_lookup(patterns: PatternData) -> Dict[str, np.ndarray]:
    return {name: patterns.tip_partials(name) for name in patterns.taxa}


def brute_force_log_likelihood(
    tree: Tree,
    model: SubstitutionModel,
    patterns: PatternData,
    rates: Optional[RateCategories] = None,
) -> float:
    """Joint-state enumeration likelihood (exact, exponential cost)."""
    rates = rates or single_rate()
    s = model.n_states
    internals = tree.internals()
    if s ** len(internals) > 2_000_000:
        raise ValueError("tree too large for brute-force enumeration")
    tips = _tip_partial_lookup(patterns)
    pi = model.frequencies
    n_patterns = patterns.n_patterns

    site_likelihood = np.zeros(n_patterns)
    for rate, weight in zip(rates.rates, rates.probabilities):
        matrices = {
            id(node): model.transition_matrix(rate * node.length)
            for node in tree.nodes()
            if node.parent is not None
        }
        total = np.zeros(n_patterns)
        for assignment in itertools.product(range(s), repeat=len(internals)):
            states = {id(node): st for node, st in zip(internals, assignment)}
            prob = np.full(n_patterns, pi[states[id(tree.root)]])
            for node in tree.nodes():
                if node.parent is None:
                    continue
                parent_state = states[id(node.parent)]
                if node.is_tip:
                    P_row = matrices[id(node)][parent_state]
                    prob = prob * (tips[node.name] @ P_row)
                else:
                    prob = prob * matrices[id(node)][parent_state, states[id(node)]]
            total += prob
        site_likelihood += weight * total

    with np.errstate(divide="ignore"):
        return float(np.dot(patterns.weights, np.log(site_likelihood)))


def pruning_log_likelihood(
    tree: Tree,
    model: SubstitutionModel,
    patterns: PatternData,
    rates: Optional[RateCategories] = None,
    *,
    rescaled: bool = False,
) -> float:
    """Plain Felsenstein pruning, independent of the buffer engine.

    With ``rescaled=True`` every internal node's partials are divided by
    their per-pattern maximum and the logs accumulated separately, so the
    oracle stays finite on trees deep enough to underflow ``float64``
    (the regime the engine needs scale buffers for). The two paths share
    the same arithmetic; ``rescaled=True`` only re-normalises.
    """
    rates = rates or single_rate()
    tips = _tip_partial_lookup(patterns)
    pi = model.frequencies
    n_patterns = patterns.n_patterns

    if not rescaled:
        site_likelihood = np.zeros(n_patterns)
        for rate, weight in zip(rates.rates, rates.probabilities):
            partials: Dict[int, np.ndarray] = {}
            for node in tree.root.traverse_postorder():
                if node.is_tip:
                    partials[id(node)] = tips[node.name]
                    continue
                value = np.ones((n_patterns, model.n_states))
                for child in node.children:
                    P = model.transition_matrix(rate * child.length)
                    value = value * (partials[id(child)] @ P.T)
                partials[id(node)] = value
            site_likelihood += weight * (partials[id(tree.root)] @ pi)

        with np.errstate(divide="ignore"):
            return float(np.dot(patterns.weights, np.log(site_likelihood)))

    # Rescaled path: per-pattern log site likelihoods per category,
    # combined with logaddexp so no intermediate ever leaves log space.
    log_site_by_category = []
    for rate, weight in zip(rates.rates, rates.probabilities):
        partials = {}
        log_scale: Dict[int, np.ndarray] = {}
        for node in tree.root.traverse_postorder():
            if node.is_tip:
                partials[id(node)] = tips[node.name]
                log_scale[id(node)] = np.zeros(n_patterns)
                continue
            value = np.ones((n_patterns, model.n_states))
            scale = np.zeros(n_patterns)
            for child in node.children:
                P = model.transition_matrix(rate * child.length)
                value = value * (partials[id(child)] @ P.T)
                scale = scale + log_scale[id(child)]
            factors = value.max(axis=1)
            nonzero = factors > 0.0
            value[nonzero] /= factors[nonzero, None]
            with np.errstate(divide="ignore"):
                scale = scale + np.where(nonzero, np.log(factors), -np.inf)
            partials[id(node)] = value
            log_scale[id(node)] = scale
        root = tree.root
        with np.errstate(divide="ignore"):
            log_site_by_category.append(
                np.log(weight) + np.log(partials[id(root)] @ pi) + log_scale[id(root)]
            )
    log_site = np.logaddexp.reduce(np.stack(log_site_by_category), axis=0)
    return float(np.dot(patterns.weights, log_site))
