"""The backend parity gate: measure a backend against the reference.

A backend's :class:`~repro.beagle.backend.BackendInfo` *claims* a parity
class — ``bit-identical`` or ``tolerance`` with a bound. This module
checks the claim: :func:`parity_report` evaluates a seeded battery of
configurations (double/single precision, as-given and rerooted trees,
serial and batched launches, incremental propose/accept, sharded
reduction) on both the candidate backend and the reference, and
classifies the measured deviations.

The gate's rule, enforced by :attr:`ParityReport.ok`:

* a ``bit-identical`` claim requires **every** deviation to be exactly
  zero — same dtype in, same bits out, however operations were batched;
* a ``tolerance`` claim requires every absolute log-likelihood deviation
  to stay within the backend's declared ``tolerance``.

``examples/backend_bench.py`` and ``benchmarks/bench_backend_matrix.py``
print these reports; the hypothesis suite
(``tests/property/test_backend_parity.py``) covers randomized plans on
top of this fixed battery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from .backend import (
    PARITY_BIT_IDENTICAL,
    PARITY_TOLERANCE,
    BackendInfo,
    KernelBackend,
)
from .resources import resolve_backend

__all__ = ["ParityCheck", "ParityReport", "parity_report"]


@dataclass(frozen=True)
class ParityCheck:
    """One configuration's outcome: the two log-likelihoods and the gap."""

    label: str
    reference_ll: float
    backend_ll: float

    @property
    def delta(self) -> float:
        """Absolute deviation of the backend from the reference."""
        return abs(self.backend_ll - self.reference_ll)

    @property
    def bit_identical(self) -> bool:
        """Exact equality — the bar for same-dtype NumPy variants."""
        return self.backend_ll == self.reference_ll


@dataclass(frozen=True)
class ParityReport:
    """Verdict of the parity battery for one backend."""

    info: BackendInfo
    checks: Tuple[ParityCheck, ...]

    @property
    def max_delta(self) -> float:
        """Largest absolute deviation across the battery."""
        return max(check.delta for check in self.checks)

    @property
    def bit_identical(self) -> bool:
        """True when every configuration matched exactly."""
        return all(check.bit_identical for check in self.checks)

    @property
    def measured_class(self) -> str:
        """The parity class the measurements support."""
        return PARITY_BIT_IDENTICAL if self.bit_identical else PARITY_TOLERANCE

    @property
    def ok(self) -> bool:
        """Does the backend honour its declared parity class?"""
        if self.info.parity == PARITY_BIT_IDENTICAL:
            return self.bit_identical
        return self.max_delta <= self.info.tolerance

    def format(self) -> str:
        """Multi-line human summary (used by the example and benches)."""
        lines = [
            f"parity of {self.info.name!r} vs reference "
            f"(claims {self.info.parity}): "
            f"{'OK' if self.ok else 'VIOLATED'}"
        ]
        for check in self.checks:
            mark = "=" if check.bit_identical else f"delta {check.delta:.3e}"
            lines.append(f"  {check.label:<16} {check.backend_ll:.10f}  {mark}")
        return "\n".join(lines)


def _battery_case(seed: int, n_taxa: int, n_patterns: int):
    """Deterministic (tree, model, patterns) triple for the battery."""
    from ..bench.harness import build_tree
    from ..data import random_patterns
    from ..models import random_gtr

    rng = np.random.default_rng(seed)
    tree = build_tree("random", n_taxa, seed)
    for edge in tree.edges():
        edge.length = float(rng.exponential(0.1))
    model = random_gtr(rng)
    patterns = random_patterns(tree.tip_names(), n_patterns, rng=rng)
    return tree, model, patterns


def _plan_ll(tree, model, patterns, backend, dtype, mode: str) -> float:
    """Full-traversal log-likelihood through one backend."""
    from ..core import create_instance, execute_plan, make_plan

    instance = create_instance(
        tree, model, patterns, dtype=dtype, backend=backend
    )
    return execute_plan(instance, make_plan(tree, mode))


def _incremental_ll(tree, model, patterns, backend) -> float:
    """Propose/accept a branch move incrementally; final log-likelihood."""
    from ..inference import TreeLikelihood
    from ..inference.proposals import branch_length_move

    # The accepted move mutates the tree in place; evaluate on a copy so
    # the two runs (and later battery checks) see identical inputs.
    lik = TreeLikelihood(tree.copy(), model, patterns, backend=backend)
    lik.log_likelihood()
    move = branch_length_move(lik.tree, np.random.default_rng(7))
    value = lik.propose(move)
    lik.accept()
    return value


def _sharded_ll(tree, model, patterns, backend) -> float:
    """Two-shard data-parallel log-likelihood through one backend."""
    from ..exec.sharding import ShardedLikelihood

    return ShardedLikelihood(
        tree, model, patterns, n_shards=2, backend=backend
    ).log_likelihood()


def parity_report(
    backend: Union[str, KernelBackend],
    *,
    seed: int = 20180521,
    n_taxa: int = 16,
    n_patterns: int = 64,
) -> ParityReport:
    """Run the fixed parity battery for ``backend`` vs the reference.

    The battery covers the acceptance axes: both precisions, as-given
    and concurrency-rerooted trees, serial and batched launches, the
    incremental propose/accept path and the sharded reduction — each
    evaluated by the candidate and by a fresh reference backend on
    identical inputs.
    """
    from ..core import optimal_reroot_fast

    candidate = resolve_backend(backend)
    reference = resolve_backend("reference")
    tree, model, patterns = _battery_case(seed, n_taxa, n_patterns)
    rerooted = optimal_reroot_fast(tree).tree

    checks: List[ParityCheck] = []
    for dtype, tag in ((np.float64, "f64"), (np.float32, "f32")):
        checks.append(
            ParityCheck(
                f"{tag}/as-given",
                _plan_ll(tree, model, patterns, reference, dtype, "concurrent"),
                _plan_ll(tree, model, patterns, candidate, dtype, "concurrent"),
            )
        )
        checks.append(
            ParityCheck(
                f"{tag}/rerooted",
                _plan_ll(
                    rerooted, model, patterns, reference, dtype, "concurrent"
                ),
                _plan_ll(
                    rerooted, model, patterns, candidate, dtype, "concurrent"
                ),
            )
        )
    checks.append(
        ParityCheck(
            "f64/serial",
            _plan_ll(tree, model, patterns, reference, np.float64, "serial"),
            _plan_ll(tree, model, patterns, candidate, np.float64, "serial"),
        )
    )
    checks.append(
        ParityCheck(
            "f64/incremental",
            _incremental_ll(tree, model, patterns, reference),
            _incremental_ll(tree, model, patterns, candidate),
        )
    )
    checks.append(
        ParityCheck(
            "f64/sharded",
            _sharded_ll(tree, model, patterns, reference),
            _sharded_ll(tree, model, patterns, candidate),
        )
    )
    return ParityReport(info=candidate.info, checks=tuple(checks))
