"""Resource discovery for kernel backends (the BEAGLE resource API).

BEAGLE programs never name an implementation — they enumerate
*resources* (``beagleGetResourceList``) and acquire whatever matches
their requirements; pytbeaglehon wraps the same flow for Python. This
module is that surface for the NumPy work-alike:

* :func:`list_resources` — descriptors of every registered backend.
* :func:`acquire` — a backend by name or by
  :class:`ResourceRequirements`; unknown requests raise the typed
  :class:`UnknownResourceError` carrying the available names.
* :func:`resolve_backend` — the engine's entry point: maps ``None`` (the
  ``REPRO_BACKEND`` environment variable, then the reference default), a
  name, or an already-constructed backend onto a
  :class:`~repro.beagle.backend.KernelBackend`.

``python -m repro.beagle.resources`` prints the listing, mirroring
BEAGLE's resource dump; ``synthetictest --rsrc <name>`` selects one for
a benchmark run. The environment variable exists so *unmodified* test
suites can be replayed against every registered backend — the CI
backend-matrix job sets ``REPRO_BACKEND=blocked`` and reruns the beagle
and property suites verbatim.
"""

from __future__ import annotations

import os
import sys
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from .backend import BackendInfo, KernelBackend
from .backends import (
    NUMBA_AVAILABLE,
    BlockedNumpyBackend,
    PatternBlockedBackend,
    ReferenceBackend,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_RESOURCE",
    "ResourceRequirements",
    "UnknownResourceError",
    "register_resource",
    "available_resources",
    "list_resources",
    "acquire",
    "resolve_backend",
    "main",
]

#: Environment variable naming the default backend when none is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: The backend used when neither caller nor environment chooses one.
DEFAULT_RESOURCE = "reference"


class UnknownResourceError(LookupError):
    """A resource request matched no registered backend.

    Carries the offending request and the available resource names so
    CLIs can print an actionable message (and tests can assert on it).
    """

    def __init__(self, requested: object, available: List[str]) -> None:
        self.requested = requested
        self.available = list(available)
        super().__init__(
            f"unknown kernel-backend resource {requested!r}; "
            f"available: {', '.join(self.available)}"
        )


@dataclass(frozen=True)
class ResourceRequirements:
    """Constraints for :func:`acquire`; ``None`` fields match anything.

    Attributes
    ----------
    name:
        Exact registry name.
    kind:
        Hardware class (``"cpu"``, ``"gpu"``).
    parity:
        Required parity class (``"bit-identical"`` / ``"tolerance"``).
    """

    name: Optional[str] = None
    kind: Optional[str] = None
    parity: Optional[str] = None

    def matches(self, info: BackendInfo) -> bool:
        """Does a backend descriptor satisfy these requirements?"""
        return (
            (self.name is None or info.name == self.name)
            and (self.kind is None or info.kind == self.kind)
            and (self.parity is None or info.parity == self.parity)
        )


# Registration order is acquisition-preference order: the reference
# backend first, so requirement-based acquisition defaults to ground
# truth unless the requirements exclude it.
_REGISTRY: "OrderedDict[str, Callable[[], KernelBackend]]" = OrderedDict()


def register_resource(
    name: str, factory: Callable[[], KernelBackend], replace: bool = False
) -> None:
    """Register a backend factory under a resource name.

    The factory is invoked per :func:`acquire` call; backends are
    stateless, so construction is cheap. Re-registering an existing name
    requires ``replace=True`` — silent shadowing would let a typo'd
    plugin hijack the reference resource.
    """
    if not replace and name in _REGISTRY:
        raise ValueError(f"resource {name!r} is already registered")
    _REGISTRY[name] = factory


def available_resources() -> List[str]:
    """Registered resource names, in registration (preference) order."""
    return list(_REGISTRY)


def list_resources() -> List[BackendInfo]:
    """Descriptors of every registered backend, in preference order."""
    return [factory().info for factory in _REGISTRY.values()]


def acquire(
    requirements: Union[None, str, ResourceRequirements] = None,
) -> KernelBackend:
    """A backend matching ``requirements`` (first registered wins).

    ``None`` acquires the default resource, a string the exact name, a
    :class:`ResourceRequirements` the first descriptor it matches.

    Raises
    ------
    UnknownResourceError
        If nothing matches; the error lists the available resources.
    """
    if requirements is None:
        requirements = DEFAULT_RESOURCE
    if isinstance(requirements, str):
        factory = _REGISTRY.get(requirements)
        if factory is None:
            raise UnknownResourceError(requirements, available_resources())
        return factory()
    for factory in _REGISTRY.values():
        backend = factory()
        if requirements.matches(backend.info):
            return backend
    raise UnknownResourceError(requirements, available_resources())


def resolve_backend(
    spec: Union[None, str, KernelBackend] = None,
) -> KernelBackend:
    """The engine's backend-selection funnel.

    * ``None`` — the :data:`BACKEND_ENV_VAR` environment variable if
      set, else the :data:`DEFAULT_RESOURCE`. Consulted per call, so a
      test process can switch backends between instances.
    * a string — :func:`acquire` by name.
    * an object implementing the protocol — returned as-is, letting
      callers thread one configured backend through every layer.
    """
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_RESOURCE
    if isinstance(spec, str):
        return acquire(spec)
    if isinstance(spec, KernelBackend):
        return spec
    raise TypeError(
        f"backend must be None, a resource name or a KernelBackend; "
        f"got {type(spec).__name__}"
    )


register_resource("reference", ReferenceBackend)
register_resource("blocked", BlockedNumpyBackend)
register_resource("pattern-blocked", PatternBlockedBackend)
if NUMBA_AVAILABLE:  # pragma: no cover - numba absent in this container
    from .backends import NumbaBackend

    register_resource("numba", NumbaBackend)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Print the resource listing (``python -m repro.beagle.resources``)."""
    out = out or sys.stdout
    infos = list_resources()
    print(f"{len(infos)} kernel backend resource(s):", file=out)
    width = max(len(info.name) for info in infos)
    for info in infos:
        bound = "" if info.tolerance == 0.0 else f" (|dlogL| <= {info.tolerance:g})"
        print(
            f"  {info.name:<{width}}  {info.kind}  {info.parity}{bound}"
            f"  {info.description}",
            file=out,
        )
    env = os.environ.get(BACKEND_ENV_VAR)
    default = env or DEFAULT_RESOURCE
    source = f"${BACKEND_ENV_VAR}" if env else "built-in default"
    print(
        f"default resource: {default} ({source}; override with "
        f"{BACKEND_ENV_VAR} or synthetictest --rsrc)",
        file=out,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - console entry point
    raise SystemExit(main())
