"""Partial-likelihood operation descriptors.

An :class:`Operation` mirrors BEAGLE's ``BeagleOperation`` struct: it names
the destination partials buffer, the two child buffers (tip or internal)
with their transition-matrix indices, and an optional rescaling buffer.
Operations are pure data — dependency analysis over them
(:func:`operations_independent`, and the greedy set builder in
:mod:`repro.core.opsets`) is what turns a tree traversal into concurrent
kernel launches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Set

from ..obs import get_recorder

__all__ = ["Operation", "operations_independent", "validate_operation_order"]

#: Sentinel for "no rescaling" (BEAGLE's BEAGLE_OP_NONE).
NONE = -1


@dataclass(frozen=True)
class Operation:
    """One partial-likelihood computation (Eq. 1 of the paper, Fig. 1).

    Attributes
    ----------
    destination:
        Partials buffer written by the operation (the parent node ``z``).
    child1, child2:
        Buffers read (nodes ``x`` and ``y``); tip buffers hold states or
        tip partials, internal buffers hold previously computed partials.
    child1_matrix, child2_matrix:
        Transition-matrix buffers for the connecting branches ``t_l`` and
        ``t_m``.
    destination_scale:
        Scale buffer to write per-pattern rescaling factors into, or −1
        for no rescaling (BEAGLE's ``destinationScaleWrite``).
    """

    destination: int
    child1: int
    child1_matrix: int
    child2: int
    child2_matrix: int
    destination_scale: int = NONE

    def reads(self) -> tuple[int, int]:
        """Buffers this operation reads."""
        return (self.child1, self.child2)

    def depends_on(self, other: "Operation") -> bool:
        """True when this operation reads the other's destination."""
        return other.destination in self.reads()


def operations_independent(operations: Sequence[Operation]) -> bool:
    """True when no operation reads (or overwrites) another's destination.

    This is the condition under which the whole sequence can run as a
    single concurrent kernel launch (one *operation set*).
    """
    destinations: Set[int] = set()
    for op in operations:
        if op.destination in destinations:
            return False  # write-write collision
        destinations.add(op.destination)
    for op in operations:
        for r in op.reads():
            if r in destinations:
                return False  # read-after-write within the set
    return True


def validate_operation_order(operations: Iterable[Operation]) -> None:
    """Check that every read refers to a tip or an earlier destination.

    Raises
    ------
    repro.analysis.PlanVerificationError
        (a ``ValueError`` subclass) if an operation reads a buffer that
        no earlier operation wrote and that is not implicitly a
        tip/precomputed buffer — a schedule that cannot execute. The
        error carries one :class:`repro.analysis.Diagnostic` per
        violation, naming the offending operation's position, its
        destination, and the buffer it reads too early.
    """
    ops = list(operations)
    written: Set[int] = set()
    all_destinations = {op.destination for op in ops}
    writer_position = {op.destination: i for i, op in enumerate(ops)}
    violations = []
    for i, op in enumerate(ops):
        for r in op.reads():
            if r in all_destinations and r not in written:
                violations.append((i, op, r))
        written.add(op.destination)
    obs = get_recorder()
    if obs.enabled:
        obs.count("repro_schedule_validations_total")
        if violations:
            obs.count("repro_schedule_violations_total", len(violations))
    if violations:
        # Imported lazily: repro.analysis sits above this module.
        from ..analysis.diagnostics import (
            Diagnostic,
            PlanVerificationError,
            Severity,
        )

        raise PlanVerificationError(
            Diagnostic(
                code="cross-set-dependency",
                severity=Severity.ERROR,
                message=(
                    f"operation {i} (writes buffer {op.destination}) reads "
                    f"buffer {r} before operation "
                    f"{writer_position[r]} writes it"
                ),
                op_index=i,
                buffers=(r, op.destination),
                hint=(
                    f"submit the writer of buffer {r} before operation {i}"
                ),
            )
            for i, op, r in violations
        )
